"""The HTTP API end-to-end: routes, streaming, dedup over the wire."""

import json
import urllib.request

import pytest

from repro.serve import ServeClient, ServeError, start_service


@pytest.fixture
def service(tmp_path):
    handle = start_service(job_dir=str(tmp_path / "jobs"), workers=1)
    yield handle
    handle.stop(drain=True)


@pytest.fixture
def client(service):
    return ServeClient(service.url, timeout=30)


def submit_port(client, mp_source, **kwargs):
    return client.submit(
        "port", [{"name": "mp.c", "source": mp_source}],
        level="atomig", **kwargs,
    )


def test_healthz(client):
    payload = client.healthz()
    assert payload["ok"] is True
    assert payload["draining"] is False


def test_submit_poll_result_roundtrip(client, mp_source):
    record = submit_port(client, mp_source)
    assert record["state"] in ("queued", "running", "done")
    assert record["has_result"] in (False, True)

    final = client.result(record["id"], wait=True, timeout=60)
    assert final["state"] == "done"
    report = final["result"]["modules"][0]["report"]
    assert report["level"] == "atomig"
    assert report["ported_implicit_barriers"] >= 1

    status = client.status(record["id"])
    assert status["state"] == "done"
    assert status["has_result"] is True
    assert "result" not in status  # the result only ships via /result


def test_result_before_done_is_202(service, client, mp_source):
    # workers=0 keeps the job queued forever: /result must answer 202.
    idle = start_service(job_dir=service.daemon.store.directory + "-idle",
                         workers=0)
    try:
        idle_client = ServeClient(idle.url, timeout=10)
        record = submit_port(idle_client, mp_source)
        status, payload = idle_client.request(
            "GET", f"/jobs/{record['id']}/result"
        )
        assert status == 202
        assert payload["state"] == "queued"
        assert "result" not in payload
    finally:
        idle.stop(drain=True)


def test_events_stream_carries_pipeline_stages(client, mp_source):
    record = submit_port(client, mp_source)
    client.result(record["id"], wait=True, timeout=60)
    events = list(client.events(record["id"], follow=False))
    types = [event["type"] for event in events]
    assert "stage_start" in types and "stage_end" in types
    assert "port_done" in types
    assert types[-1] == "state"  # terminal transition closes the stream
    stages = {event["stage"] for event in events
              if event["type"] == "stage_end"}
    assert "atomize" in stages


def test_events_follow_streams_ndjson(service, client, mp_source):
    record = submit_port(client, mp_source)
    with urllib.request.urlopen(
        f"{service.url}/jobs/{record['id']}/events", timeout=30
    ) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in response if line.strip()]
    assert lines, "follow stream produced no events"
    assert lines[-1]["type"] == "state"
    assert lines[-1]["state"] in ("done", "failed")


def test_dedup_over_http(client, mp_source):
    first = submit_port(client, mp_source)
    client.result(first["id"], wait=True, timeout=60)
    second = submit_port(client, mp_source)
    assert second["state"] == "done"
    assert second["cache_hit"] is True
    assert second["seconds"] == 0.0
    stats = client.stats()
    assert stats["counters"]["cache_hits"] == 1


def test_inline_single_module_submission(client, mp_source):
    status, payload = client.request("POST", "/jobs", body={
        "kind": "port", "name": "inline.c", "source": mp_source,
    })
    assert status == 201
    final = client.result(payload["id"], wait=True, timeout=60)
    assert final["result"]["modules"][0]["name"] == "inline.c"


def test_bad_requests_are_400(client):
    status, payload = client.request("POST", "/jobs", body={
        "kind": "frobnicate", "modules": [{"source": "x"}],
    })
    assert status == 400 and "unknown job kind" in payload["error"]
    status, payload = client.request("POST", "/jobs", body={
        "kind": "port", "modules": [],
    })
    assert status == 400
    status, payload = client.request("POST", "/jobs", body={
        "kind": "port", "modules": [{"name": "m", "source": "int x;"}],
        "config": {"warp_drive": 1},
    })
    assert status == 400 and "warp_drive" in payload["error"]


def test_unknown_routes_and_jobs_are_404(client):
    status, _payload = client.request("GET", "/jobs/nope")
    assert status == 404
    status, _payload = client.request("GET", "/frobnicate")
    assert status == 404
    status, _payload = client.request("POST", "/frobnicate", body={})
    assert status == 404
    with pytest.raises(ServeError) as excinfo:
        client.delete("nope")
    assert excinfo.value.status == 404


def test_delete_cancels_queued_and_drops_terminal(tmp_path, mp_source):
    idle = start_service(job_dir=str(tmp_path / "idle-jobs"), workers=0)
    try:
        idle_client = ServeClient(idle.url, timeout=10)
        record = submit_port(idle_client, mp_source)
        cancelled = idle_client.delete(record["id"])
        assert cancelled["state"] == "cancelled"
        dropped = idle_client.delete(record["id"])
        assert dropped == {"id": record["id"], "deleted": True}
        status, _payload = idle_client.request(
            "GET", f"/jobs/{record['id']}"
        )
        assert status == 404
    finally:
        idle.stop(drain=True)


def test_jobs_listing(client, mp_source):
    record = submit_port(client, mp_source)
    client.result(record["id"], wait=True, timeout=60)
    jobs = client.jobs()
    assert [job["id"] for job in jobs] == [record["id"]]
    assert jobs[0]["state"] == "done"


def test_stats_exposes_queue_and_workers(client, mp_source):
    record = submit_port(client, mp_source)
    client.result(record["id"], wait=True, timeout=60)
    stats = client.stats()
    assert stats["workers"] == 1
    assert stats["queue_depth"] == 0
    assert stats["uptime_seconds"] >= 0.0
    assert stats["counters"]["completed"] == 1
