"""Shared fixtures for the porting-as-a-service tests."""

import pytest

from repro.serve import JobDaemon, JobStore

#: Message-passing idiom: one spinloop, two implicit barriers at the
#: atomig level — small enough that a port job finishes in well under a
#: second, rich enough that every job kind has something to do.
MP_SOURCE = """
int flag = 0;
int msg = 0;
void writer() { msg = 42; flag = 1; }
int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    assert(msg == 42);
    thread_join(t);
    return 0;
}
"""


def _port_payload(source=MP_SOURCE, name="mp.c", level="atomig", **extra):
    payload = {"modules": [{"name": name, "source": source}],
               "level": level}
    payload.update(extra)
    return payload


@pytest.fixture
def mp_source():
    return MP_SOURCE


@pytest.fixture
def port_payload():
    """Factory for a port-job payload over the shared MP source."""
    return _port_payload


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "jobs"))


@pytest.fixture
def daemon(store):
    """A started single-worker daemon, shut down after the test."""
    daemon = JobDaemon(store, workers=1)
    daemon.start()
    yield daemon
    daemon.shutdown(drain=True)


@pytest.fixture
def idle_daemon(store):
    """Accept-only daemon (workers=0): jobs queue but never execute."""
    daemon = JobDaemon(store, workers=0)
    daemon.start()
    yield daemon
    daemon.shutdown(drain=True)
