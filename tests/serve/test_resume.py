"""Crash-resume: jobs survive daemon death and finish after restart."""

import json
import os
import signal
import subprocess
import sys
import time

import repro
from repro.serve import JobDaemon, JobStore, ServeClient


def test_queued_jobs_resume_in_process(store, port_payload):
    # Accept-only daemon takes the job, then dies without running it.
    accept = JobDaemon(store, workers=0)
    accept.start()
    record = accept.submit("port", port_payload())
    accept.shutdown(drain=True)
    assert store.load(record["id"])["state"] == "queued"

    # A fresh daemon over the same directory picks the job up.
    worker = JobDaemon(store, workers=1)
    worker.start()
    try:
        final = worker.wait(record["id"], timeout=60)
        assert final["state"] == "done"
        assert final["result"]["modules"][0]["report"]["level"] == "atomig"
    finally:
        worker.shutdown(drain=True)


def test_running_jobs_are_requeued_and_rerun(store, port_payload):
    # Simulate a daemon killed mid-job: the record says ``running`` but
    # no worker holds it (exactly what SIGKILL leaves behind).
    record = store.create("port", port_payload())
    record["state"] = "running"
    record["started"] = time.time()
    store.save(record)

    daemon = JobDaemon(store, workers=1)
    requeued = daemon.start()
    assert requeued == [record["id"]]
    try:
        final = daemon.wait(record["id"], timeout=60)
        assert final["state"] == "done"
        types = [event["type"] for event in final["events"]]
        assert "requeued" in types
    finally:
        daemon.shutdown(drain=True)
    assert daemon.counters["requeued"] == 1


def _spawn_serve(job_dir, workers, env):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(workers), "--dir", job_dir, "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
    )
    line = process.stdout.readline()
    if not line:
        process.kill()
        raise AssertionError(
            f"serve printed nothing: {process.stderr.read().decode()}"
        )
    return process, json.loads(line)["url"]


def test_daemon_killed_mid_queue_resumes_after_restart(
    tmp_path, mp_source,
):
    """The ISSUE's crash-resume scenario, with real processes.

    An accept-only daemon (workers=0) takes a job and is SIGKILLed —
    no drain, no atexit.  A second daemon over the same job directory
    must recover the record and complete it.
    """
    job_dir = str(tmp_path / "jobs")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))

    process, url = _spawn_serve(job_dir, workers=0, env=env)
    try:
        client = ServeClient(url, timeout=20)
        record = client.submit(
            "port", [{"name": "mp.c", "source": mp_source}],
            level="atomig",
        )
        assert record["state"] == "queued"
    finally:
        process.kill()
        process.wait(timeout=10)
    assert JobStore(job_dir).load(record["id"])["state"] == "queued"

    process, url = _spawn_serve(job_dir, workers=2, env=env)
    try:
        client = ServeClient(url, timeout=20)
        final = client.result(record["id"], wait=True, timeout=60)
        assert final["state"] == "done"
        assert final["result"]["modules"][0]["report"]["level"] == "atomig"
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
    assert process.returncode == 0  # graceful SIGTERM drain


def test_sigterm_drains_and_preserves_queue(tmp_path, mp_source):
    job_dir = str(tmp_path / "jobs")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))

    process, url = _spawn_serve(job_dir, workers=0, env=env)
    try:
        client = ServeClient(url, timeout=20)
        record = client.submit(
            "port", [{"name": "mp.c", "source": mp_source}],
            level="atomig",
        )
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
    assert process.returncode == 0
    # The queued job was persisted, not lost, by the graceful path.
    assert JobStore(job_dir).load(record["id"])["state"] == "queued"
