"""JobDaemon: execution, dedup, priority, cancel, drain, failures."""

import pytest

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.serve.queue import JobDaemon, execute_payload, job_dedup_key

BROKEN_SOURCE = "int main( {"

#: Keys that legitimately differ between two runs over identical input:
#: wall-clock timings.  Everything else in a report must be bit-for-bit.
TIMING_KEYS = ("porting_seconds", "stats", "build_seconds", "port_seconds")


def normalized(report_dict):
    return {k: v for k, v in report_dict.items() if k not in TIMING_KEYS}


# -- dedup key ---------------------------------------------------------------


def test_dedup_key_is_stable(port_payload):
    assert job_dedup_key("port", port_payload()) == \
        job_dedup_key("port", port_payload())


def test_dedup_key_covers_kind_level_config_and_source(port_payload):
    base = job_dedup_key("port", port_payload())
    assert job_dedup_key("check", port_payload()) != base
    assert job_dedup_key("port", port_payload(level="naive")) != base
    assert job_dedup_key(
        "port", port_payload(config={"detect_polling_loops": True})
    ) != base
    changed = port_payload()
    changed["modules"][0]["source"] += "\n// touched\n"
    assert job_dedup_key("port", changed) != base


# -- execute_payload ---------------------------------------------------------


def test_execute_port_matches_one_shot_report(mp_source, port_payload):
    result = execute_payload("port", port_payload())
    assert result["kind"] == "port"
    row = result["modules"][0]

    module = compile_source(mp_source, "mp.c")
    _ported, report = port_module(module, PortingLevel.ATOMIG)
    assert normalized(row["report"]) == normalized(report.to_dict())
    assert row["barriers"] == [report.ported_explicit_barriers,
                               report.ported_implicit_barriers]


def test_execute_port_rejects_ir_modules():
    payload = {"modules": [{"name": "m", "source": "module m {}",
                            "is_ir": True}]}
    with pytest.raises(ValueError, match="Mini-C"):
        execute_payload("port", payload)


def test_execute_unknown_kind_and_empty_modules():
    with pytest.raises(ValueError, match="unknown job kind"):
        execute_payload("frobnicate", {"modules": [{"source": "x"}]})
    with pytest.raises(ValueError, match="no modules"):
        execute_payload("port", {"modules": []})


def test_execute_check_runs_models(port_payload):
    result = execute_payload(
        "check", port_payload(models=["sc", "wmm"],
                              options={"max_steps": 400})
    )
    outcomes = {(row["model"], row["outcome"])
                for row in result["checks"]}
    assert outcomes == {("sc", "ok"), ("wmm", "ok")}


def test_execute_rejects_unknown_options(port_payload):
    with pytest.raises(ValueError, match="unknown options"):
        execute_payload("port", port_payload(options={"bogus": 1}))


def test_execute_emits_stage_events(port_payload):
    events = []
    execute_payload(
        "port", port_payload(),
        emit=lambda type_, **f: events.append((type_, f)),
    )
    types = [t for t, _f in events]
    assert types[0] == "job_start"
    assert "stage_start" in types and "stage_end" in types
    assert "port_done" in types
    assert types[-1] == "module_done"


# -- daemon ------------------------------------------------------------------


def test_daemon_runs_job_to_done(daemon, port_payload):
    record = daemon.submit("port", port_payload())
    final = daemon.wait(record["id"], timeout=60)
    assert final["state"] == "done"
    assert final["result"]["modules"][0]["report"]["level"] == "atomig"
    assert final["seconds"] > 0
    types = [event["type"] for event in final["events"]]
    assert "stage_start" in types and "port_done" in types


def test_daemon_dedup_is_an_instant_cache_hit(daemon, port_payload):
    first = daemon.submit("port", port_payload())
    done = daemon.wait(first["id"], timeout=60)
    assert done["state"] == "done"

    second = daemon.submit("port", port_payload())
    assert second["state"] == "done"
    assert second["cache_hit"] is True
    assert second["seconds"] == 0.0
    assert second["cached_from"] == first["id"]
    assert normalized(second["result"]["modules"][0]["report"]) == \
        normalized(done["result"]["modules"][0]["report"])
    assert daemon.counters["cache_hits"] == 1


def test_daemon_different_config_misses_the_cache(daemon, port_payload):
    first = daemon.submit("port", port_payload())
    daemon.wait(first["id"], timeout=60)
    other = daemon.submit("port", port_payload(level="naive"))
    assert other["cache_hit"] is False


def test_daemon_marks_broken_source_failed(daemon, port_payload):
    record = daemon.submit("port", port_payload(source=BROKEN_SOURCE))
    final = daemon.wait(record["id"], timeout=60)
    assert final["state"] == "failed"
    assert final["error"]
    assert any(event["type"] == "traceback" for event in final["events"])
    # A failed job must never satisfy a later identical submission.
    again = daemon.submit("port", port_payload(source=BROKEN_SOURCE))
    assert again["cache_hit"] is False


def test_daemon_rejects_bad_submissions(daemon, port_payload):
    with pytest.raises(ValueError, match="unknown job kind"):
        daemon.submit("frobnicate", port_payload())
    with pytest.raises(ValueError, match="no modules"):
        daemon.submit("port", {"modules": []})
    with pytest.raises(ValueError, match="unknown config knobs"):
        daemon.submit("port", port_payload(config={"warp_drive": 1}))


def test_priority_orders_the_queue(idle_daemon, port_payload):
    low = idle_daemon.submit("port", port_payload(), priority=0)
    high = idle_daemon.submit("port", port_payload(level="naive"),
                              priority=10)
    mid = idle_daemon.submit("port", port_payload(level="spin"),
                             priority=5)
    with idle_daemon._cond:
        order = [idle_daemon._next_job()["id"] for _ in range(3)]
    assert order == [high["id"], mid["id"], low["id"]]


def test_cancel_only_touches_queued_jobs(idle_daemon, port_payload):
    record = idle_daemon.submit("port", port_payload())
    cancelled = idle_daemon.cancel(record["id"])
    assert cancelled["state"] == "cancelled"
    assert idle_daemon.store.load(record["id"])["state"] == "cancelled"
    assert idle_daemon.cancel("no-such-job") is None
    # Terminal jobs are returned as-is, not re-cancelled.
    assert idle_daemon.cancel(record["id"])["state"] == "cancelled"


def test_delete_refuses_non_terminal(idle_daemon, port_payload):
    record = idle_daemon.submit("port", port_payload())
    assert idle_daemon.delete(record["id"]) is False  # still queued
    idle_daemon.cancel(record["id"])
    assert idle_daemon.delete(record["id"]) is True
    assert idle_daemon.get(record["id"]) is None


def test_drain_persists_queued_jobs(store, port_payload):
    daemon = JobDaemon(store, workers=0)
    daemon.start()
    record = daemon.submit("port", port_payload())
    daemon.shutdown(drain=True)
    assert store.load(record["id"])["state"] == "queued"
    with pytest.raises(RuntimeError, match="shutting down"):
        daemon.submit("port", port_payload())


def test_stats_shape(daemon, port_payload):
    record = daemon.submit("port", port_payload())
    daemon.wait(record["id"], timeout=60)
    stats = daemon.stats()
    assert stats["queue_depth"] == 0
    assert stats["states"].get("done") == 1
    assert stats["counters"]["submitted"] == 1
    assert 0.0 <= stats["cache_hit_rate"] <= 1.0
    assert stats["workers"] == 1
    assert not stats["draining"]
