"""JobStore: durability, atomicity, recovery, dedup indexing."""

import json
import os

from repro.serve.store import (
    STORE_SCHEMA_VERSION,
    JobStore,
    new_job_id,
)


def payload(**extra):
    base = {"modules": [{"name": "m", "source": "int main(){return 0;}"}],
            "level": "atomig"}
    base.update(extra)
    return base


def test_create_persists_a_queued_record(store):
    record = store.create("port", payload(), priority=3, dedup_key="k1")
    assert record["state"] == "queued"
    assert record["schema_version"] == STORE_SCHEMA_VERSION
    assert record["priority"] == 3
    assert record["dedup_key"] == "k1"
    assert record["result"] is None and record["error"] is None
    on_disk = store.load(record["id"])
    assert on_disk == json.loads(json.dumps(record))


def test_save_leaves_no_temp_files(store):
    record = store.create("port", payload())
    record["state"] = "running"
    store.save(record)
    names = os.listdir(store.directory)
    assert names == [f"{record['id']}.json"]


def test_load_miss_and_corruption_return_none(store):
    assert store.load("no-such-job") is None
    path = os.path.join(store.directory, "broken.json")
    with open(path, "w") as handle:
        handle.write("{not json")
    assert store.load("broken") is None


def test_list_jobs_skips_corrupt_and_sorts_oldest_first(store):
    first = store.create("port", payload())
    second = store.create("check", payload())
    with open(os.path.join(store.directory, "zzz.json"), "w") as handle:
        handle.write("torn write")
    listed = store.list_jobs()
    assert [r["id"] for r in listed] == [first["id"], second["id"]]


def test_delete(store):
    record = store.create("port", payload())
    assert store.delete(record["id"]) is True
    assert store.load(record["id"]) is None
    assert store.delete(record["id"]) is False


def test_recover_requeues_running_jobs(store):
    orphan = store.create("port", payload())
    orphan["state"] = "running"
    orphan["started"] = 123.0
    store.save(orphan)
    waiting = store.create("port", payload())
    done = store.create("port", payload())
    done["state"] = "done"
    store.save(done)

    requeued, queued = store.recover()
    assert requeued == [orphan["id"]]
    assert {r["id"] for r in queued} == {orphan["id"], waiting["id"]}
    reloaded = store.load(orphan["id"])
    assert reloaded["state"] == "queued"
    assert reloaded["started"] is None
    assert reloaded["events"][-1]["type"] == "requeued"


def test_dedup_index_only_done_with_result_newest_wins(store):
    failed = store.create("port", payload(), dedup_key="k")
    failed["state"] = "failed"
    store.save(failed)
    older = store.create("port", payload(), dedup_key="k")
    older["state"] = "done"
    older["result"] = {"kind": "port"}
    store.save(older)
    newer = store.create("port", payload(), dedup_key="k")
    newer["state"] = "done"
    newer["result"] = {"kind": "port"}
    store.save(newer)

    assert store.dedup_index() == {"k": newer["id"]}


def test_counts_histogram(store):
    store.create("port", payload())
    record = store.create("port", payload())
    record["state"] = "cancelled"
    store.save(record)
    counts = store.counts()
    assert counts["queued"] == 1
    assert counts["cancelled"] == 1
    assert counts["done"] == 0


def test_job_ids_are_unique_and_time_sortable():
    ids = [new_job_id() for _ in range(64)]
    assert len(set(ids)) == len(ids)
    # The millisecond prefix sorts by creation time (the random suffix
    # only breaks ties within one millisecond).
    stamps = [job_id.split("-")[0] for job_id in ids]
    assert stamps == sorted(stamps)


def test_save_handles_tuples_in_payload(store):
    record = store.create("port", payload(config={"knobs": (1, 2)}))
    reloaded = store.load(record["id"])
    assert reloaded["payload"]["config"]["knobs"] == [1, 2]


def test_stores_are_independent(tmp_path):
    one = JobStore(str(tmp_path / "a"))
    two = JobStore(str(tmp_path / "b"))
    record = one.create("port", payload())
    assert two.load(record["id"]) is None
