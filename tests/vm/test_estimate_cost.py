"""Tests for module-level cost estimation and dynamic count recording."""

from repro.api import compile_source, port_module, run_module
from repro.core.config import PortingLevel
from repro.core.report import count_barriers
from repro.ir.instructions import MemoryOrder
from repro.vm.costs import CostModel, estimate_cost, is_barrier

COUNTER = """
_Atomic int x = 0;

int main() {
    int i = 0;
    while (i < 5) {
        atomic_fetch_add(&x, 1);
        i = i + 1;
    }
    return atomic_load(&x);
}
"""


def test_static_estimate_counts_every_site_once():
    module = compile_source(COUNTER, "counter")
    estimate = estimate_cost(module)
    assert not estimate.dynamic
    _explicit, implicit = count_barriers(module)
    assert estimate.barrier_sites == implicit
    assert estimate.barrier_weight == estimate.barrier_sites
    assert 0 < estimate.barriers <= estimate.total


def test_barrier_sites_match_count_barriers_definition():
    module = compile_source(COUNTER, "counter")
    barriers = sum(
        1 for instr in module.instructions() if is_barrier(instr)
    )
    explicit, implicit = count_barriers(module)
    assert barriers == explicit + implicit


def test_weakening_reduces_the_estimate():
    module = compile_source("""
_Atomic int x = 0;
int main() {
    atomic_store(&x, 1);
    return 0;
}
""", "m")
    costs = CostModel()
    before = estimate_cost(module, costs).barriers
    store = next(
        instr for instr in module.functions["main"].instructions()
        if getattr(instr, "order", None) is MemoryOrder.SEQ_CST
    )
    store.order = MemoryOrder.RELAXED
    after = estimate_cost(module, costs).barriers
    assert after == before - (costs.release_store - costs.relaxed_store)


def test_dynamic_counts_weight_loop_bodies():
    module = compile_source(COUNTER, "counter")
    result = run_module(module, record_counts=True)
    counts = result.stats.instr_counts
    assert counts  # recorded at all
    dynamic = estimate_cost(module, counts=counts)
    assert dynamic.dynamic
    # The RMW executed 5 times, so its weight dominates the static one.
    assert dynamic.barrier_weight >= 5
    static = estimate_cost(module)
    assert dynamic.barrier_weight > static.barrier_weight - 1


def test_counts_keyed_by_stable_position():
    module = compile_source(COUNTER, "counter")
    counts = run_module(module, record_counts=True).stats.instr_counts
    for (function, block, index), executed in counts.items():
        assert function in module.functions
        blocks = {b.label: b for b in module.functions[function].blocks}
        assert block in blocks
        assert 0 <= index < len(blocks[block].instructions)
        assert executed >= 1


def test_counts_not_recorded_by_default():
    module = compile_source(COUNTER, "counter")
    result = run_module(module)
    assert result.stats.instr_counts == {}


def test_estimate_shared_by_optimizer_and_tables():
    """Table 9's columns equal estimate_cost on the ported module."""
    from repro.opt import optimize_module

    source = """
int lock = 0;
int data = 0;
void worker() {
    while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
    data = data + 1;
    lock = 0;
}
int main() {
    worker();
    return data;
}
"""
    module = compile_source(source, "m")
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    optimized, report = optimize_module(ported)
    assert report.cost_before == estimate_cost(ported).to_dict()
    assert report.cost_after == estimate_cost(optimized).to_dict()
