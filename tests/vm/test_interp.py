"""Tests for the performance VM's execution semantics."""

import pytest

from repro.api import compile_source
from repro.errors import AssertionFailure, VMError
from repro.vm.interp import run_module


def run(source, **kwargs):
    return run_module(compile_source(source), **kwargs)


class TestArithmetic:
    def test_basic_ops(self):
        assert run("int main() { return 2 + 3 * 4; }").exit_value == 14
        assert run("int main() { return (2 + 3) * 4; }").exit_value == 20
        assert run("int main() { return 17 % 5; }").exit_value == 2
        assert run("int main() { return 17 / 5; }").exit_value == 3

    def test_c_style_truncating_division(self):
        assert run("int main() { return (0 - 7) / 2; }").exit_value == -3
        assert run("int main() { return (0 - 7) % 2; }").exit_value == -1

    def test_bitwise_ops(self):
        assert run("int main() { return (12 & 10) | (1 << 4); }").exit_value == 24
        assert run("int main() { return 255 ^ 15; }").exit_value == 240
        assert run("int main() { return 32 >> 2; }").exit_value == 8

    def test_comparisons_produce_zero_one(self):
        assert run("int main() { return (3 < 4) + (4 <= 4) + (5 > 9); }").exit_value == 2

    def test_division_by_zero_raises(self):
        with pytest.raises(VMError, match="division"):
            run("int z = 0;\nint main() { return 1 / z; }")


class TestControlFlow:
    def test_if_else(self):
        assert run("""
int main() {
    int x = 5;
    if (x > 3) { return 1; } else { return 2; }
}
""").exit_value == 1

    def test_loops_accumulate(self):
        assert run("""
int main() {
    int sum = 0;
    for (int i = 1; i <= 100; i++) { sum = sum + i; }
    return sum;
}
""").exit_value == 5050

    def test_break_and_continue(self):
        assert run("""
int main() {
    int sum = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 6) { break; }
        sum = sum + i;
    }
    return sum;
}
""").exit_value == 9  # 1 + 3 + 5

    def test_goto(self):
        assert run("""
int main() {
    int x = 1;
    goto skip;
    x = 99;
skip:
    return x;
}
""").exit_value == 1

    def test_short_circuit_evaluation(self):
        assert run("""
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
    int r = 0 && bump();
    int s = 1 || bump();
    return calls * 10 + r + s;
}
""").exit_value == 1  # bump never called

    def test_ternary(self):
        assert run("int main() { int x = 7; return x > 5 ? 10 : 20; }").exit_value == 10


class TestFunctionsAndMemory:
    def test_recursion(self):
        assert run("""
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { return fib(10); }
""").exit_value == 55

    def test_pointer_arguments(self):
        assert run("""
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int main() {
    int x = 3;
    int y = 4;
    swap(&x, &y);
    return x * 10 + y;
}
""").exit_value == 43

    def test_struct_fields(self):
        assert run("""
struct point { int x; int y; };
int main() {
    struct point p;
    p.x = 3;
    p.y = 4;
    struct point *q = &p;
    return q->x * q->y;
}
""").exit_value == 12

    def test_arrays_and_pointer_walk(self):
        assert run("""
int data[5] = {1, 2, 3, 4, 5};
int main() {
    int *p = data;
    int sum = 0;
    for (int i = 0; i < 5; i++) { sum = sum + *(p + i); }
    return sum;
}
""").exit_value == 15

    def test_malloc_heap(self):
        assert run("""
struct node { int v; struct node *next; };
int main() {
    struct node *head = NULL;
    for (int i = 1; i <= 3; i++) {
        struct node *n = (struct node *)malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
    }
    int sum = 0;
    while (head != NULL) {
        sum = sum + head->v;
        head = head->next;
    }
    return sum;
}
""").exit_value == 6

    def test_stack_frames_reclaimed(self):
        result = run("""
int leafy(int n) { int local[16]; local[0] = n; return local[0]; }
int main() {
    int total = 0;
    for (int i = 0; i < 50; i++) { total = total + leafy(1); }
    return total;
}
""")
        assert result.exit_value == 50

    def test_stack_overflow_detected(self):
        with pytest.raises(VMError, match="stack overflow"):
            run("""
int down(int n) { return down(n + 1); }
int main() { return down(0); }
""")


class TestThreads:
    def test_two_threads_join(self):
        result = run("""
int a = 0;
void worker(int v) { a = v; }
int main() {
    int t = thread_create(worker, 9);
    thread_join(t);
    return a;
}
""")
        assert result.exit_value == 9
        assert result.stats.threads_spawned == 1

    def test_spinlock_protects_counter(self):
        result = run("""
int lock = 0;
int counter = 0;
void work() {
    for (int i = 0; i < 50; i++) {
        while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
        counter = counter + 1;
        lock = 0;
    }
}
int main() {
    int t = thread_create(work);
    work();
    thread_join(t);
    return counter;
}
""")
        assert result.exit_value == 100

    def test_schedule_seed_changes_interleaving_not_result(self):
        source = """
int flag = 0;
int main() {
    int t = thread_create(setter);
    while (flag == 0) { }
    thread_join(t);
    return flag;
}
void setter() { flag = 3; }
"""
        for seed in range(4):
            assert run(source, schedule_seed=seed).exit_value == 3

    def test_self_join_deadlock_detected(self):
        with pytest.raises(VMError, match="deadlock"):
            run("""
int main() {
    thread_join(0);
    return 0;
}
""")

    def test_unknown_join_target_rejected(self):
        with pytest.raises(VMError, match="unknown thread"):
            run("""
int main() {
    thread_join(99);
    return 0;
}
""")


class TestObservability:
    def test_assert_failure_raises(self):
        with pytest.raises(AssertionFailure):
            run("int main() { assert(1 == 2); return 0; }")

    def test_print_output_collected(self):
        result = run("""
int main() {
    for (int i = 0; i < 3; i++) { print(i * i); }
    return 0;
}
""")
        assert result.output == [0, 1, 4]

    def test_stats_counters(self):
        result = run("""
int g;
int main() {
    atomic_store(&g, 5);
    int x = atomic_load(&g);
    atomic_fetch_add(&g, 1);
    atomic_thread_fence(memory_order_seq_cst);
    return x;
}
""")
        stats = result.stats
        assert stats.atomic_loads == 1
        assert stats.atomic_stores == 1
        assert stats.rmw_ops == 1
        assert stats.fences == 1
        assert stats.cycles > 0

    def test_instruction_budget_enforced(self):
        with pytest.raises(VMError, match="budget"):
            run("""
int stop = 0;
int main() { while (stop == 0) { } return 0; }
""", max_instructions=5_000)
