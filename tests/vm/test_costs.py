"""Tests for the Arm-calibrated cost model."""

from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Constant, GlobalVar
from repro.lang.ctypes import INT
from repro.vm.costs import CostModel


def test_barrier_cost_hierarchy():
    """The paper's design rationale [48]: plain <= implicit << explicit."""
    costs = CostModel()
    assert costs.plain_load <= costs.acquire_load
    assert costs.plain_store < costs.release_store
    assert costs.release_store < costs.fence
    assert costs.rmw <= costs.rmw_sc < costs.fence


def test_relaxed_atomics_cost_like_plain():
    """Relaxed atomics compile to plain LDR/STR on Armv8."""
    costs = CostModel()
    assert costs.load_cost(MemoryOrder.RELAXED) == costs.plain_load
    assert costs.store_cost(MemoryOrder.RELAXED) == costs.plain_store


def test_order_sensitive_costs():
    costs = CostModel()
    assert costs.load_cost(MemoryOrder.SEQ_CST) == costs.acquire_load
    assert costs.load_cost(MemoryOrder.ACQUIRE) == costs.acquire_load
    assert costs.store_cost(MemoryOrder.SEQ_CST) == costs.release_store
    assert costs.store_cost(MemoryOrder.RELEASE) == costs.release_store
    assert costs.rmw_cost(MemoryOrder.SEQ_CST) == costs.rmw_sc
    assert costs.rmw_cost(MemoryOrder.RELAXED) == costs.rmw


def test_instruction_cost_dispatch():
    costs = CostModel()
    gvar = GlobalVar("g", INT)
    assert costs.instruction_cost(ins.Load(gvar)) == costs.plain_load
    assert costs.instruction_cost(
        ins.Store(gvar, Constant(1), MemoryOrder.SEQ_CST)
    ) == costs.release_store
    assert costs.instruction_cost(ins.Fence()) == costs.fence
    assert costs.instruction_cost(
        ins.AtomicRMW("add", gvar, Constant(1))
    ) == costs.rmw_sc
    assert costs.instruction_cost(
        ins.BinOp("+", Constant(1), Constant(2))
    ) == costs.alu
    assert costs.instruction_cost(ins.Sleep(Constant(1))) == costs.sleep_op
    assert costs.instruction_cost(ins.CompilerBarrier()) == 0


def test_contention_hierarchy():
    costs = CostModel()
    assert costs.contention < costs.contention_atomic


def test_custom_cost_model_flows_into_runs():
    from repro.api import compile_source
    from repro.vm.interp import run_module

    module = compile_source("""
int g;
int main() {
    atomic_thread_fence(memory_order_seq_cst);
    return g;
}
""")
    cheap = run_module(module, cost_model=CostModel(fence=1))
    dear = run_module(module, cost_model=CostModel(fence=500))
    assert dear.cycles - cheap.cycles == 499
