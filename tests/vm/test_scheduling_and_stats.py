"""Tests for VM scheduling behaviour and statistics accounting."""

import pytest

from repro.api import compile_source
from repro.vm.costs import CostModel
from repro.vm.interp import Interpreter, run_module

PINGPONG = """
int flag = 0;
int rounds_done = 0;

void partner() {
    for (int r = 0; r < 10; r++) {
        while (flag != 1) { }
        flag = 0;
    }
}

int main() {
    int t = thread_create(partner);
    for (int r = 0; r < 10; r++) {
        flag = 1;
        while (flag != 0) { }
        rounds_done = rounds_done + 1;
    }
    thread_join(t);
    assert(rounds_done == 10);
    return rounds_done;
}
"""


def test_pingpong_requires_preemption():
    """Neither thread can finish without the scheduler interleaving."""
    result = run_module(compile_source(PINGPONG))
    assert result.exit_value == 10


@pytest.mark.parametrize("seed", [0, 1, 5, 13])
def test_seeds_vary_cycles_not_semantics(seed):
    result = run_module(compile_source(PINGPONG), schedule_seed=seed)
    assert result.exit_value == 10


def test_per_thread_cycles_sum_to_total():
    result = run_module(compile_source(PINGPONG))
    assert sum(result.stats.per_thread_cycles.values()) == result.stats.cycles
    assert set(result.stats.per_thread_cycles) == {0, 1}


def test_quantum_configurable():
    module = compile_source(PINGPONG)
    small = Interpreter(module, quantum=4).run()
    module2 = compile_source(PINGPONG)
    large = Interpreter(module2, quantum=512).run()
    assert small.exit_value == large.exit_value == 10


def test_instruction_count_excludes_blocked_join_polls():
    """A blocked join retries without inflating the instruction count
    unboundedly relative to real work."""
    result = run_module(compile_source("""
void sleeper() {
    int acc = 0;
    for (int i = 0; i < 200; i++) { acc = acc + i; }
}
int main() {
    int t = thread_create(sleeper);
    thread_join(t);
    return 0;
}
"""))
    # Joins are re-executed while waiting but not charged as executed
    # instructions; total stays close to the real work.
    assert result.stats.instructions < 3000


def test_contention_counted_only_across_threads():
    solo = run_module(compile_source("""
int shared[32];
int main() {
    for (int r = 0; r < 4; r++) {
        for (int i = 0; i < 32; i++) { shared[i] = shared[i] + 1; }
    }
    return shared[0];
}
"""))
    assert solo.stats.contended_accesses == 0


def test_barrier_table_shape():
    result = run_module(compile_source("""
_Atomic int a;
int g;
int main() {
    atomic_store(&a, 1);
    g = atomic_load(&a);
    return g;
}
"""))
    table = result.stats.barrier_table()
    assert set(table) == {
        "non-atomic loads", "non-atomic stores",
        "atomic loads", "atomic stores",
    }
    assert table["atomic loads"] == 1
    assert table["atomic stores"] == 1


def test_summary_mentions_key_counters():
    result = run_module(compile_source("int main() { return 0; }"))
    text = result.stats.summary()
    assert "instrs" in text and "cycles" in text


def test_cost_model_injection_scales_cycles():
    module = compile_source("""
int g;
int main() {
    for (int i = 0; i < 50; i++) { g = g + 1; }
    return g;
}
""")
    base = run_module(module, cost_model=CostModel())
    doubled = run_module(
        module,
        cost_model=CostModel(plain_load=4, plain_store=4),
    )
    assert doubled.cycles > base.cycles
