"""Tests for module cloning (the porting pipeline's isolation guarantee)."""

from repro.api import compile_source
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module

SOURCE = """
struct node { int key; struct node *next; };
int flag = 3;
volatile int v;
struct node pool[2];

int helper(int x) { return x + flag; }

void worker(int arg) {
    pool[0].key = arg;
}

int main() {
    int t = thread_create(worker, 7);
    int r = helper(2);
    struct node *p = &pool[1];
    p->next = &pool[0];
    while (flag != 0) { flag = flag - 1; }
    thread_join(t);
    assert(r == 5);
    return r;
}
"""


def test_clone_verifies_and_prints_identically():
    module = compile_source(SOURCE, "orig")
    clone = module.clone()
    verify_module(clone)
    original_text = print_module(module).replace("orig", "X")
    clone_text = print_module(clone).replace("orig", "X")
    assert original_text == clone_text


def test_clone_is_fully_disjoint():
    module = compile_source(SOURCE, "orig")
    clone = module.clone()
    original_instrs = {id(i) for i in module.instructions()}
    clone_instrs = {id(i) for i in clone.instructions()}
    assert not original_instrs & clone_instrs
    for name, gvar in clone.globals.items():
        assert gvar is not module.globals[name]


def test_clone_remaps_call_targets():
    module = compile_source(SOURCE, "orig")
    clone = module.clone()
    for instr in clone.instructions():
        if isinstance(instr, (ins.Call, ins.ThreadCreate)):
            assert instr.callee is clone.functions[instr.callee.name]
            assert instr.callee is not module.functions[instr.callee.name]


def test_mutating_clone_leaves_original_untouched():
    module = compile_source(SOURCE, "orig")
    clone = module.clone()
    for instr in clone.instructions():
        if isinstance(instr, (ins.Load, ins.Store)):
            instr.order = MemoryOrder.SEQ_CST
            instr.marks.add("mutated")
    for instr in module.instructions():
        if isinstance(instr, (ins.Load, ins.Store)):
            has_annotation = instr.volatile or "annotation" in instr.marks
            if not has_annotation:
                assert instr.order is MemoryOrder.NOT_ATOMIC
            assert "mutated" not in instr.marks


def test_clone_preserves_marks_and_lines():
    module = compile_source(SOURCE, "orig")
    for instr in module.instructions():
        instr.marks.add("tag")
    clone = module.clone()
    for instr in clone.instructions():
        assert "tag" in instr.marks


def test_clone_preserves_global_initializers():
    module = compile_source(SOURCE, "orig")
    clone = module.clone()
    assert clone.globals["flag"].initializer == [3]
    clone.globals["flag"].initializer[0] = 99
    assert module.globals["flag"].initializer == [3]
