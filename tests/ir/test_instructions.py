"""Unit tests for IR value and instruction classes."""

import pytest

from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Argument, Constant, GlobalVar
from repro.lang.ctypes import INT, ArrayType, PointerType, StructType


def make_struct():
    struct = StructType("s")
    struct.define([("a", INT), ("b", ArrayType(INT, 3)), ("c", INT)])
    return struct


def test_memory_order_properties():
    assert not MemoryOrder.NOT_ATOMIC.is_atomic
    assert MemoryOrder.RELAXED.is_atomic
    assert MemoryOrder.ACQUIRE.has_acquire
    assert not MemoryOrder.ACQUIRE.has_release
    assert MemoryOrder.RELEASE.has_release
    assert not MemoryOrder.RELEASE.has_acquire
    assert MemoryOrder.SEQ_CST.has_acquire and MemoryOrder.SEQ_CST.has_release
    assert MemoryOrder.ACQ_REL.has_acquire and MemoryOrder.ACQ_REL.has_release


def test_constant_equality_and_hash():
    assert Constant(3) == Constant(3)
    assert Constant(3) != Constant(4)
    assert len({Constant(3), Constant(3), Constant(4)}) == 2


def test_global_var_initializer_padding():
    gvar = GlobalVar("g", ArrayType(INT, 4), [1, 2])
    assert gvar.initializer == [1, 2, 0, 0]
    assert gvar.ctype == PointerType(ArrayType(INT, 4))


def test_load_type_follows_pointee():
    gvar = GlobalVar("g", INT)
    load = ins.Load(gvar)
    assert load.ctype == INT
    assert load.is_memory_access()
    assert load.accessed_pointer() is gvar


def test_store_has_no_result():
    gvar = GlobalVar("g", INT)
    store = ins.Store(gvar, Constant(1))
    assert store.ctype.is_void()
    assert store.pointer is gvar
    assert store.value == Constant(1)


def test_gep_signature_field_offsets():
    struct = make_struct()
    base = GlobalVar("obj", struct)
    gep_a = ins.Gep(base, [("field", struct, 0)], INT)
    gep_c = ins.Gep(base, [("field", struct, 2)], INT)
    assert gep_a.signature() == (("field", "s", 0),)
    assert gep_c.signature() == (("field", "s", 4),)  # a(1) + b(3)


def test_gep_index_operand_tracked():
    index = Constant(2)
    base = GlobalVar("arr", ArrayType(INT, 8))
    gep = ins.Gep(base, [("index", INT, index)], INT)
    assert index in gep.operands


def test_replace_operand_updates_gep_path():
    old_index = Constant(2)
    new_index = Constant(5)
    base = GlobalVar("arr", ArrayType(INT, 8))
    gep = ins.Gep(base, [("index", INT, old_index)], INT)
    gep.replace_operand(old_index, new_index)
    assert gep.path[0][2] is new_index
    assert new_index in gep.operands


def test_rmw_requires_known_op():
    gvar = GlobalVar("g", INT)
    with pytest.raises(AssertionError):
        ins.AtomicRMW("mul", gvar, Constant(2))


def test_terminators_report_successors():
    from repro.ir.module import BasicBlock

    b1, b2 = BasicBlock("a"), BasicBlock("b")
    br = ins.Br(b1)
    assert br.successors() == [b1]
    cond = ins.CondBr(Constant(1), b1, b2)
    assert cond.successors() == [b1, b2]
    assert ins.Ret().successors() == []
    assert br.is_terminator and cond.is_terminator


def test_ret_with_and_without_value():
    ret_void = ins.Ret()
    assert not ret_void.has_value and ret_void.value is None
    ret_val = ins.Ret(Constant(3))
    assert ret_val.has_value and ret_val.value == Constant(3)


def test_marks_are_per_instruction():
    gvar = GlobalVar("g", INT)
    a, b = ins.Load(gvar), ins.Load(gvar)
    a.marks.add("spin_control")
    assert "spin_control" not in b.marks
