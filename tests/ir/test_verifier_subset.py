"""Subset verification: ``verify_module(module, functions=...)``.

The incremental-verify fast path of the porting pipeline re-verifies
only the functions a port actually touched; the verifier must restrict
itself to exactly the named subset.
"""

import pytest

from repro.api import compile_source
from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.values import Constant
from repro.ir.verifier import verify_module

SOURCE = """
int g = 0;
int bump() { g = g + 1; return g; }
int twice() { return bump() + bump(); }
int main() { return twice(); }
"""


def _break_function(module, name):
    """Make ``name`` structurally invalid (terminator not last)."""
    function = module.functions[name]
    block = next(iter(function.blocks))
    block.append(ins.BinOp("+", Constant(1), Constant(2)))
    return module


def test_full_verify_is_the_default():
    module = compile_source(SOURCE)
    assert verify_module(module)
    _break_function(module, "bump")
    with pytest.raises(IRError):
        verify_module(module)


def test_subset_skips_unnamed_functions():
    module = _break_function(compile_source(SOURCE), "bump")
    # The broken function is outside the subset: passes.
    assert verify_module(module, functions=["main", "twice"])
    # Inside the subset: caught.
    with pytest.raises(IRError):
        verify_module(module, functions=["bump"])


def test_empty_subset_verifies_nothing():
    module = _break_function(compile_source(SOURCE), "bump")
    assert verify_module(module, functions=[])


def test_unknown_names_are_ignored():
    module = compile_source(SOURCE)
    assert verify_module(module, functions=["main", "no_such_function"])
