"""Tests for the textual IR printer."""

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.ir.printer import print_function, print_module


SOURCE = """
struct node { int key; struct node *next; };
volatile int v = 4;
struct node pool[2];

int get(struct node *p) { return p->key; }

int main() {
    while (v == 0) { }
    return get(&pool[0]);
}
"""


def test_module_header_lists_structs_and_globals():
    text = print_module(compile_source(SOURCE, "m"))
    assert "; module m" in text
    assert "struct node { key: int, next: struct node* }" in text
    assert "global @v: volatile int = 4" in text
    assert "global @pool: struct node[2]" in text


def test_function_signature_rendered():
    module = compile_source(SOURCE, "m")
    text = print_function(module.functions["get"])
    assert text.startswith("func @get(%p: struct node*) -> int {")
    assert text.rstrip().endswith("}")


def test_block_labels_and_instructions_present():
    module = compile_source(SOURCE, "m")
    text = print_function(module.functions["main"])
    assert "while.cond" in text
    assert "load" in text and "ret" in text


def test_marks_shown_as_comments():
    module = compile_source(SOURCE, "m")
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    text = print_module(ported)
    assert "; marks:" in text
    assert "spin_control" in text


def test_atomic_orders_rendered():
    module = compile_source("""
int x;
int main() { atomic_store(&x, 1); return atomic_load(&x); }
""")
    text = print_module(module)
    assert "store atomic(seq_cst)" in text
    assert "load atomic(seq_cst)" in text


def test_gep_paths_rendered():
    module = compile_source(SOURCE, "m")
    text = print_module(module)
    assert ".key" in text      # field step
    assert "@pool[" in text    # index step
