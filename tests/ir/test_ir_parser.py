"""Round-trip tests for the textual IR parser."""

import pytest

from repro.api import compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.core.config import PortingLevel
from repro.errors import IRError
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.vm.interp import run_module

SOURCES = {
    "arith": """
int main() {
    int x = 3;
    int y = x * 7 % 5;
    return x + y;
}
""",
    "structs": """
struct node { int key; struct node *next; };
struct node pool[3];
int main() {
    pool[0].key = 5;
    pool[0].next = &pool[1];
    struct node *p = pool[0].next;
    p->key = 9;
    return pool[0].key + pool[1].key;
}
""",
    "atomics": """
volatile int v;
_Atomic int a;
int main() {
    atomic_store_explicit(&a, 2, memory_order_release);
    int old = atomic_fetch_add(&a, 3);
    int c = atomic_cmpxchg(&a, 5, 7);
    atomic_thread_fence(memory_order_seq_cst);
    v = old + c;
    return v;
}
""",
    "threads": """
int flag = 0;
void writer(int x) { flag = x; }
int helper() { return flag; }
int main() {
    int t = thread_create(writer, 4);
    thread_join(t);
    print(helper());
    assert(flag == 4);
    return helper();
}
""",
    "heap": """
int main() {
    int *p = (int *)malloc(3);
    p[1] = 8;
    int v = p[1];
    free(p);
    usleep(1);
    __asm__("" ::: "memory");
    return v;
}
""",
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_print_parse_roundtrip_is_stable(name):
    module = compile_source(SOURCES[name], name)
    text = print_module(module)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_reparsed_module_runs_identically(name):
    module = compile_source(SOURCES[name], name)
    expected = run_module(module)
    reparsed = parse_module(print_module(module))
    actual = run_module(reparsed)
    assert actual.exit_value == expected.exit_value
    assert actual.output == expected.output


def test_ported_module_roundtrips_with_marks():
    module = compile_source(BENCHMARKS["ck_sequence"].mc_source(), "seq")
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    text = print_module(ported)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text
    # Marks survive, so the diff/report machinery keeps working.
    marked = [
        i for i in reparsed.instructions() if "optimistic_control" in i.marks
    ]
    assert marked


def test_reparsed_port_still_verifies_under_wmm():
    from repro.api import check_module

    module = compile_source(BENCHMARKS["message_passing"].mc_source(), "mp")
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    reparsed = parse_module(print_module(ported))
    assert check_module(reparsed, model="wmm", max_steps=400).ok


def test_unknown_global_rejected():
    with pytest.raises(IRError, match="unknown global"):
        parse_module("""
func @main() -> int {
entry0:
  %1 = load @nothing
  ret %1
}
""")


def test_undefined_value_rejected():
    with pytest.raises(IRError, match="undefined value"):
        parse_module("""
func @main() -> int {
entry0:
  ret %ghost
}
""")


def test_garbage_instruction_rejected():
    with pytest.raises(IRError):
        parse_module("""
func @main() -> void {
entry0:
  frobnicate %1
  ret void
}
""")


def test_handwritten_ir_is_accepted():
    module = parse_module("""
; module hand
global @g: int = 5

func @main() -> int {
entry0:
  %1 = load @g
  %2 = %1 * 2
  ret %2
}
""")
    assert run_module(module).exit_value == 10
