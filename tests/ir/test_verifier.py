"""Tests for the structural IR verifier."""

import pytest

from repro.api import compile_source
from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, GlobalVar
from repro.ir.verifier import verify_module
from repro.lang.ctypes import INT, VOID, ArrayType


def make_trivial_module():
    module = Module("m")
    fn = Function("f", VOID, [], [])
    module.add_function(fn)
    block = fn.new_block("entry")
    block.append(ins.Ret())
    return module, fn, block


def test_valid_module_passes():
    module, _, _ = make_trivial_module()
    assert verify_module(module)


def test_compiled_modules_pass():
    module = compile_source("""
int g;
int main() { for (int i = 0; i < 3; i++) { g = g + i; } return g; }
""")
    assert verify_module(module)


def test_missing_terminator_rejected():
    module, fn, block = make_trivial_module()
    block.instructions.pop()
    block.append(ins.BinOp("+", Constant(1), Constant(2)))
    with pytest.raises(IRError, match="terminator"):
        verify_module(module)


def test_empty_block_rejected():
    module, fn, _ = make_trivial_module()
    fn.new_block("dangling")
    with pytest.raises(IRError, match="empty block"):
        verify_module(module)


def test_mid_block_terminator_rejected():
    module, fn, block = make_trivial_module()
    block.insert(0, ins.Ret())
    with pytest.raises(IRError, match="middle of a block"):
        verify_module(module)


def test_branch_to_foreign_block_rejected():
    module, fn, block = make_trivial_module()
    foreign = BasicBlock("foreign")
    foreign.append(ins.Ret())
    block.instructions.pop()
    block.append(ins.Br(foreign))
    with pytest.raises(IRError, match="foreign"):
        verify_module(module)


def test_cross_function_operand_rejected():
    module, fn, block = make_trivial_module()
    other = Function("g", INT, [], [])
    module.add_function(other)
    other_block = other.new_block("entry")
    value = other_block.append(ins.BinOp("+", Constant(1), Constant(2)))
    other_block.append(ins.Ret(value))
    block.instructions.pop()
    block.append(ins.Store(value, Constant(0)))  # bogus, cross-function
    block.append(ins.Ret())
    with pytest.raises(IRError, match="another function"):
        verify_module(module)


def test_call_to_out_of_module_function_rejected():
    module, fn, block = make_trivial_module()
    stranger = Function("stranger", VOID, [], [])
    stranger_block = stranger.new_block("entry")
    stranger_block.append(ins.Ret())
    block.insert(0, ins.Call(stranger, []))
    with pytest.raises(IRError, match="out-of-module"):
        verify_module(module)


def test_function_without_blocks_rejected():
    module = Module("m")
    module.add_function(Function("empty", VOID, [], []))
    with pytest.raises(IRError, match="no blocks"):
        verify_module(module)


# ---------------------------------------------------------------------------
# Memory-order well-formedness
# ---------------------------------------------------------------------------


def make_module_with_global(ctype=INT):
    module, fn, block = make_trivial_module()
    var = GlobalVar("g", ctype)
    module.add_global(var)
    return module, block, var


@pytest.mark.parametrize("order", [
    MemoryOrder.NOT_ATOMIC, MemoryOrder.RELAXED, MemoryOrder.CONSUME,
])
def test_fence_with_non_fencing_order_rejected(order):
    module, block, _var = make_module_with_global()
    block.insert(0, ins.Fence(order))
    with pytest.raises(IRError, match="fence with invalid order"):
        verify_module(module)


@pytest.mark.parametrize("order", [
    MemoryOrder.ACQUIRE, MemoryOrder.RELEASE,
    MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST,
])
def test_fence_with_fencing_order_accepted(order):
    module, block, _var = make_module_with_global()
    block.insert(0, ins.Fence(order))
    assert verify_module(module)


@pytest.mark.parametrize("order", [
    MemoryOrder.RELEASE, MemoryOrder.ACQ_REL,
])
def test_load_with_release_semantics_rejected(order):
    module, block, var = make_module_with_global()
    block.insert(0, ins.Load(var, order=order))
    with pytest.raises(IRError, match="load cannot have release"):
        verify_module(module)


@pytest.mark.parametrize("order", [
    MemoryOrder.CONSUME, MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL,
])
def test_store_with_acquire_semantics_rejected(order):
    module, block, var = make_module_with_global()
    block.insert(0, ins.Store(var, Constant(1), order=order))
    with pytest.raises(IRError, match="store cannot have acquire"):
        verify_module(module)


def test_valid_atomic_orders_accepted():
    module, block, var = make_module_with_global()
    block.insert(0, ins.Load(var, order=MemoryOrder.ACQUIRE))
    block.insert(1, ins.Store(var, Constant(1), order=MemoryOrder.RELEASE))
    block.insert(2, ins.Store(var, Constant(2), order=MemoryOrder.SEQ_CST))
    assert verify_module(module)


def test_atomic_access_to_whole_array_rejected():
    module, block, var = make_module_with_global(ArrayType(INT, 8))
    block.insert(0, ins.Load(var, order=MemoryOrder.SEQ_CST))
    with pytest.raises(IRError, match="multi-slot"):
        verify_module(module)


def test_atomic_rmw_on_whole_array_rejected():
    module, block, var = make_module_with_global(ArrayType(INT, 8))
    block.insert(0, ins.AtomicRMW("add", var, Constant(1)))
    with pytest.raises(IRError, match="multi-slot"):
        verify_module(module)


def test_plain_access_to_array_base_accepted():
    module, block, var = make_module_with_global(ArrayType(INT, 8))
    block.insert(0, ins.Load(var))
    assert verify_module(module)


def test_atomic_access_to_array_element_accepted():
    module, block, var = make_module_with_global(ArrayType(INT, 8))
    gep = ins.Gep(var, [("index", INT, Constant(2))], INT)
    block.insert(0, gep)
    block.insert(1, ins.Store(gep, Constant(1), order=MemoryOrder.SEQ_CST))
    assert verify_module(module)
