"""Tests for the structural IR verifier."""

import pytest

from repro.api import compile_source
from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant
from repro.ir.verifier import verify_module
from repro.lang.ctypes import INT, VOID


def make_trivial_module():
    module = Module("m")
    fn = Function("f", VOID, [], [])
    module.add_function(fn)
    block = fn.new_block("entry")
    block.append(ins.Ret())
    return module, fn, block


def test_valid_module_passes():
    module, _, _ = make_trivial_module()
    assert verify_module(module)


def test_compiled_modules_pass():
    module = compile_source("""
int g;
int main() { for (int i = 0; i < 3; i++) { g = g + i; } return g; }
""")
    assert verify_module(module)


def test_missing_terminator_rejected():
    module, fn, block = make_trivial_module()
    block.instructions.pop()
    block.append(ins.BinOp("+", Constant(1), Constant(2)))
    with pytest.raises(IRError, match="terminator"):
        verify_module(module)


def test_empty_block_rejected():
    module, fn, _ = make_trivial_module()
    fn.new_block("dangling")
    with pytest.raises(IRError, match="empty block"):
        verify_module(module)


def test_mid_block_terminator_rejected():
    module, fn, block = make_trivial_module()
    block.insert(0, ins.Ret())
    with pytest.raises(IRError, match="middle of a block"):
        verify_module(module)


def test_branch_to_foreign_block_rejected():
    module, fn, block = make_trivial_module()
    foreign = BasicBlock("foreign")
    foreign.append(ins.Ret())
    block.instructions.pop()
    block.append(ins.Br(foreign))
    with pytest.raises(IRError, match="foreign"):
        verify_module(module)


def test_cross_function_operand_rejected():
    module, fn, block = make_trivial_module()
    other = Function("g", INT, [], [])
    module.add_function(other)
    other_block = other.new_block("entry")
    value = other_block.append(ins.BinOp("+", Constant(1), Constant(2)))
    other_block.append(ins.Ret(value))
    block.instructions.pop()
    block.append(ins.Store(value, Constant(0)))  # bogus, cross-function
    block.append(ins.Ret())
    with pytest.raises(IRError, match="another function"):
        verify_module(module)


def test_call_to_out_of_module_function_rejected():
    module, fn, block = make_trivial_module()
    stranger = Function("stranger", VOID, [], [])
    stranger_block = stranger.new_block("entry")
    stranger_block.append(ins.Ret())
    block.insert(0, ins.Call(stranger, []))
    with pytest.raises(IRError, match="out-of-module"):
        verify_module(module)


def test_function_without_blocks_rejected():
    module = Module("m")
    module.add_function(Function("empty", VOID, [], []))
    with pytest.raises(IRError, match="no blocks"):
        verify_module(module)
