"""Golden-IR tests: the printed port of Figure 5 is pinned exactly.

If a change to the lowering, the detectors or the transformation alters
what AtoMig produces for the paper's canonical example, this test shows
the precise diff.  Update the golden text only after confirming the new
output is intended.
"""

from repro.api import compile_source, port_module
from repro.core.config import AtoMigConfig, PortingLevel
from repro.ir.printer import print_function

SOURCE = """
int flag = 0;
int msg = 0;

void writer() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    int data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
"""

GOLDEN_WRITER = """\
func @writer() -> void {
entry0:
  store 42 -> @msg
  store atomic(seq_cst) 1 -> @flag   ; marks: sticky
  ret void
}"""

GOLDEN_MAIN = """\
func @main() -> int {
entry0:
  %t = alloca int
  %1 = thread_create @writer()
  store %1 -> %t
  br while.cond1
while.cond1:
  %2 = load atomic(seq_cst) @flag   ; marks: spin_control, sticky
  %3 = %2 != 1
  br %3 ? while.body2 : while.end3
while.end3:
  %data = alloca int
  %4 = load @msg
  store %4 -> %data
  %5 = load %data
  %6 = %5 == 42
  assert %6
  %7 = load %t
  thread_join %7
  ret 0
while.body2:
  br while.cond1
}"""


def _port():
    module = compile_source(SOURCE, "golden")
    ported, _ = port_module(
        module,
        PortingLevel.ATOMIG,
        config=AtoMigConfig(inline_before_analysis=False),
    )
    return ported


def test_golden_writer():
    assert print_function(_port().functions["writer"]) == GOLDEN_WRITER


def test_golden_main():
    assert print_function(_port().functions["main"]) == GOLDEN_MAIN
