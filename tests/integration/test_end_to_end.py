"""End-to-end integration tests: compile -> port -> check -> run."""

import pytest

from repro.api import check_module, compile_source, port_module, run_module
from repro.bench.corpus import BENCHMARKS
from repro.core.config import PortingLevel

#: Benchmarks small enough to model-check, with the paper's Table 2
#: verdict per porting level (original, expl, spin, atomig).
TABLE2_EXPECTATIONS = {
    "ck_ring": (False, True, True, True),
    "ck_spinlock_cas": (False, True, True, True),
    "ck_spinlock_mcs": (False, False, True, True),
    "ck_sequence": (False, False, False, True),
    "lf_hash": (False, False, False, True),
}

LEVELS = (PortingLevel.ORIGINAL, PortingLevel.EXPL,
          PortingLevel.SPIN, PortingLevel.ATOMIG)


@pytest.mark.parametrize("name", sorted(TABLE2_EXPECTATIONS))
def test_table2_row(name):
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    expected = TABLE2_EXPECTATIONS[name]
    for level, want_ok in zip(LEVELS, expected):
        ported, _report = port_module(module, level)
        result = check_module(ported, model="wmm", max_steps=600)
        assert result.ok == want_ok, (
            f"{name}/{level.value}: got {'ok' if result.ok else 'violation'}"
        )


@pytest.mark.parametrize("name", sorted(TABLE2_EXPECTATIONS))
def test_originals_correct_on_tso(name):
    """All these benchmarks were written for x86: their TSO runs pass."""
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    result = check_module(module, model="tso", max_steps=600)
    assert result.ok


@pytest.mark.parametrize("name", sorted(TABLE2_EXPECTATIONS))
def test_naive_port_also_correct(name):
    """The Naive strategy is safe (Table 1), just slow."""
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    ported, _ = port_module(module, PortingLevel.NAIVE)
    result = check_module(ported, model="wmm", max_steps=600)
    assert result.ok


def test_ported_programs_still_run_correctly():
    """The AtoMig port preserves architectural behaviour on the VM."""
    for name in ("message_passing", "ck_spinlock_cas", "clht_lb"):
        benchmark = BENCHMARKS[name]
        module = compile_source(benchmark.perf_source(), name)
        expected = run_module(module).exit_value
        ported, _ = port_module(module, PortingLevel.ATOMIG)
        assert run_module(ported).exit_value == expected


def test_full_pipeline_on_synthetic_codebase():
    from repro.bench.synth import generate_codebase

    source = generate_codebase("memcached", scale=200)
    module = compile_source(source, "synthetic")
    ported, report = port_module(module, PortingLevel.ATOMIG)
    assert report.num_spinloops >= 1
    assert run_module(ported).stats.instructions > 0


def test_idempotence_of_atomig():
    """Porting an already-ported module changes nothing material."""
    module = compile_source(BENCHMARKS["message_passing"].mc_source(), "mp")
    once, report_once = port_module(module, PortingLevel.ATOMIG)
    twice, report_twice = port_module(once, PortingLevel.ATOMIG)
    assert (
        report_twice.ported_implicit_barriers
        == report_once.ported_implicit_barriers
    )
    assert (
        report_twice.ported_explicit_barriers
        == report_once.ported_explicit_barriers
    )
