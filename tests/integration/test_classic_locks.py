"""Extended verification matrix: classic locks and lock-free structures.

Goes beyond the paper's Table 2 with textbook algorithms whose memory-
model sensitivities are well known, including the case where the bug
exists *even on TSO* (fence-less Peterson) and the paper's motivating
DPDK scenario (§1).
"""

import pytest

from repro.api import check_module, compile_source, port_module
from repro.bench.programs import classic_locks
from repro.core.config import AtoMigConfig, PortingLevel


def check(module, model="wmm", max_steps=900):
    return check_module(module, model=model, max_steps=max_steps)


class TestPeterson:
    def test_fenced_peterson_correct_on_tso(self):
        module = compile_source(classic_locks.peterson_tso_source(), "pt")
        assert check(module, "tso").ok

    def test_fenceless_peterson_broken_even_on_tso(self):
        """The classic store-load reorder: x86 needs the mfence too."""
        module = compile_source(classic_locks.peterson_broken_source(), "pb")
        assert not check(module, "tso").ok
        assert not check(module, "wmm").ok
        assert check(module, "sc").ok

    def test_fenced_peterson_broken_on_wmm(self):
        """The mfence alone is not enough on WMM: the plain interested/
        turn stores still reorder around the waiting loop's reads."""
        module = compile_source(classic_locks.peterson_tso_source(), "pt")
        assert not check(module, "wmm").ok

    def test_atomig_ports_peterson_to_wmm(self):
        module = compile_source(classic_locks.peterson_tso_source(), "pt")
        ported, report = port_module(module, PortingLevel.ATOMIG)
        assert check(ported, "wmm").ok
        # The asm fence was mapped and the spin controls detected.
        assert report.num_spinloops >= 2


class TestDekker:
    def test_dekker_core_correct_on_tso(self):
        module = compile_source(classic_locks.dekker_core_source(), "dk")
        assert check(module, "tso").ok

    def test_dekker_core_ported_to_wmm(self):
        module = compile_source(classic_locks.dekker_core_source(), "dk")
        ported, _ = port_module(module, PortingLevel.ATOMIG)
        assert check(ported, "wmm").ok


class TestTreiberStack:
    def test_original_correct_on_tso(self):
        module = compile_source(classic_locks.treiber_stack_mc_source(), "ts")
        assert check(module, "tso", max_steps=1500).ok

    def test_original_broken_on_wmm(self):
        """The push's cell->value / cell->below stores can pass the
        publishing CAS (Figure 7's overtake, on a stack)."""
        module = compile_source(classic_locks.treiber_stack_mc_source(), "ts")
        assert not check(module, "wmm", max_steps=1500).ok

    def test_atomig_port_verifies(self):
        module = compile_source(classic_locks.treiber_stack_mc_source(), "ts")
        ported, report = port_module(module, PortingLevel.ATOMIG)
        assert check(ported, "wmm", max_steps=1500).ok
        # Sticky buddies must reach the node-field accesses.
        assert ("global", "top") in {
            eval(key) for key in report.spin_controls
        }

    def test_perf_variant_runs(self):
        from repro.vm.interp import run_module

        module = compile_source(
            classic_locks.treiber_stack_perf_source(), "ts_perf"
        )
        result = run_module(module)
        assert result.exit_value == 150


class TestDpdkRing:
    def test_original_correct_on_tso(self):
        """The compiler barrier suffices on x86 — the §1 anecdote."""
        module = compile_source(classic_locks.dpdk_ring_mc_source(), "dpdk")
        assert check(module, "tso").ok

    def test_original_broken_on_wmm(self):
        """Recompiled for Arm, the same code corrupts dequeued data."""
        module = compile_source(classic_locks.dpdk_ring_mc_source(), "dpdk")
        assert not check(module, "wmm").ok

    def test_atomig_port_fixes_it(self):
        module = compile_source(classic_locks.dpdk_ring_mc_source(), "dpdk")
        ported, _ = port_module(module, PortingLevel.ATOMIG)
        assert check(ported, "wmm").ok

    def test_barrier_seeding_also_fixes_it(self):
        """§6 extension: the compiler barrier marks the slot accesses,
        so even without spinloop detection the ring ports correctly."""
        module = compile_source(classic_locks.dpdk_ring_mc_source(), "dpdk")
        ported, _ = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(
                detect_spinloops=False,
                detect_optimistic=False,
                compiler_barrier_seeds=True,
            ),
        )
        assert check(ported, "wmm").ok
