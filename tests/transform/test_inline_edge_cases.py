"""Edge-case tests for the inliner: the constructs that break naive
splice-based inlining implementations."""

from repro.api import compile_source
from repro.ir import instructions as ins
from repro.ir.verifier import verify_module
from repro.transform.inline import inline_module
from repro.vm.interp import run_module


def run_after_inline(source, **kwargs):
    module = compile_source(source)
    inline_module(module, **kwargs)
    verify_module(module)
    return run_module(module)


def test_callee_with_multiple_returns():
    result = run_after_inline("""
int pick(int x) {
    if (x > 10) { return 100; }
    if (x > 5) { return 50; }
    return x;
}
int main() { return pick(20) + pick(7) + pick(2); }
""")
    assert result.exit_value == 152


def test_callee_with_loop():
    result = run_after_inline("""
int sum_to(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) { s = s + i; }
    return s;
}
int main() { return sum_to(4) + sum_to(3); }
""")
    assert result.exit_value == 16


def test_call_inside_loop_body():
    result = run_after_inline("""
int inc(int x) { return x + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) { acc = inc(acc); }
    return acc;
}
""")
    assert result.exit_value == 5


def test_call_result_feeding_branch_condition():
    result = run_after_inline("""
int is_even(int x) { return x % 2 == 0; }
int main() {
    int hits = 0;
    for (int i = 0; i < 6; i++) {
        if (is_even(i)) { hits = hits + 1; }
    }
    return hits;
}
""")
    assert result.exit_value == 3


def test_two_calls_same_callee_same_block():
    result = run_after_inline("""
int sq(int x) { return x * x; }
int main() { return sq(3) + sq(4); }
""")
    assert result.exit_value == 25


def test_nested_call_chain_arguments():
    result = run_after_inline("""
int add1(int x) { return x + 1; }
int add2(int x) { return add1(add1(x)); }
int main() { return add2(add2(0)); }
""")
    assert result.exit_value == 4


def test_callee_allocates_locals():
    """Inlined allocas must not corrupt caller stack reuse in loops."""
    result = run_after_inline("""
int work(int seed) {
    int tmp[4];
    for (int i = 0; i < 4; i++) { tmp[i] = seed + i; }
    return tmp[0] + tmp[3];
}
int main() {
    int acc = 0;
    for (int r = 0; r < 3; r++) { acc = acc + work(r); }
    return acc;
}
""")
    # work(r) = r + (r + 3) = 2r + 3; sum over r in 0..2 is 3 + 5 + 7.
    assert result.exit_value == 15


def test_inline_marks_are_preserved():
    module = compile_source("""
int x;
int get() { return atomic_load(&x); }
int main() { return get(); }
""")
    inline_module(module)
    atomic_loads = [
        i for i in module.functions["main"].instructions()
        if isinstance(i, ins.Load) and i.order.is_atomic
    ]
    assert atomic_loads
    assert "annotation" in atomic_loads[0].marks


def test_size_one_helper_chain_fully_flattened():
    module = compile_source("""
int a() { return 1; }
int b() { return a(); }
int c() { return b(); }
int main() { return c(); }
""")
    count = inline_module(module)
    assert count >= 3
    assert not [
        i for i in module.functions["main"].instructions()
        if isinstance(i, ins.Call)
    ]
