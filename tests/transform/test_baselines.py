"""Tests for the Naive and Lasagne baseline porters."""

from repro.api import compile_source, run_module
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.verifier import verify_module
from repro.transform.lasagne import eliminate_redundant_fences, lasagne_port
from repro.transform.naive import naive_port

SOURCE = """
int g;
int arr[4];
int main() {
    int local = 5;
    g = local;
    arr[2] = g + local;
    return arr[2];
}
"""


def test_naive_converts_only_nonlocal():
    module = compile_source(SOURCE)
    converted = naive_port(module)
    assert converted > 0
    for instr in module.instructions():
        if not isinstance(instr, (ins.Load, ins.Store)):
            continue
        name = getattr(instr.pointer, "name", None)
        from repro.analysis.nonlocal_ import pointer_root

        root = pointer_root(instr.pointer)
        if isinstance(root, ins.Alloca):
            assert instr.order is MemoryOrder.NOT_ATOMIC
        else:
            assert instr.order is MemoryOrder.SEQ_CST


def test_naive_preserves_behaviour():
    module = compile_source(SOURCE)
    expected = run_module(module).exit_value
    ported = module.clone()
    naive_port(ported)
    verify_module(ported)
    assert run_module(ported).exit_value == expected


def test_naive_marks_accesses():
    module = compile_source("int g;\nint main() { return g; }")
    naive_port(module)
    load = next(
        i for i in module.instructions() if isinstance(i, ins.Load)
    )
    assert "naive" in load.marks


def test_lasagne_inserts_then_eliminates():
    module = compile_source(SOURCE)
    inserted, removed = lasagne_port(module)
    assert inserted > 0
    assert removed >= 0
    fences = [
        i for i in module.instructions() if isinstance(i, ins.Fence)
    ]
    assert len(fences) == inserted - removed
    verify_module(module)


def test_lasagne_accesses_stay_plain():
    module = compile_source(SOURCE)
    lasagne_port(module)
    for instr in module.instructions():
        if isinstance(instr, (ins.Load, ins.Store)):
            assert not instr.order.is_atomic


def test_lasagne_store_load_fence_removed():
    module = compile_source("""
int a; int b; int c;
int main() { a = 1; b = 2; c = 3; return a + b + c; }
""")
    inserted, removed = lasagne_port(module)
    # Six shared accesses -> six fences; exactly one guards a load whose
    # predecessor is a store (TSO never orders store->load), so exactly
    # one is provably redundant.
    assert inserted == 6
    assert removed == 1


def test_lasagne_preserves_behaviour():
    module = compile_source(SOURCE)
    expected = run_module(module).exit_value
    ported = module.clone()
    lasagne_port(ported)
    assert run_module(ported).exit_value == expected


def test_eliminate_only_touches_lasagne_fences():
    module = compile_source("""
int g;
int main() {
    atomic_thread_fence(memory_order_seq_cst);
    atomic_thread_fence(memory_order_seq_cst);
    g = 1;
    return g;
}
""")
    removed = eliminate_redundant_fences(module)
    assert removed == 0  # user fences are untouchable
    fences = [i for i in module.instructions() if isinstance(i, ins.Fence)]
    assert len(fences) == 2


def test_lasagne_fixes_message_passing():
    from repro.api import check_module

    module = compile_source("""
int flag = 0;
int msg = 0;
void writer() { msg = 42; flag = 1; }
int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    int data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
""")
    ported = module.clone()
    lasagne_port(ported)
    result = check_module(ported, model="wmm", max_steps=400)
    assert result.ok  # explicit fences restore the ordering
