"""Tests for the pre-analysis inliner."""

from repro.api import compile_source, run_module
from repro.ir import instructions as ins
from repro.ir.verifier import verify_module
from repro.transform.inline import inline_module


def calls_in(module, fn="main"):
    return [
        i for i in module.functions[fn].instructions()
        if isinstance(i, ins.Call)
    ]


def test_small_callee_inlined():
    module = compile_source("""
int add(int a, int b) { return a + b; }
int main() { return add(2, 3); }
""")
    inlined = inline_module(module)
    assert inlined == 1
    assert calls_in(module) == []
    verify_module(module)
    assert run_module(module).exit_value == 5


def test_inlined_result_flows_to_uses():
    module = compile_source("""
int twice(int x) { return x * 2; }
int main() { int a = twice(10); return a + twice(1); }
""")
    inline_module(module)
    verify_module(module)
    assert run_module(module).exit_value == 22


def test_recursive_function_not_inlined():
    module = compile_source("""
int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
int main() { return fact(5); }
""")
    inline_module(module)
    assert calls_in(module, "fact")  # self-call survives
    verify_module(module)
    assert run_module(module).exit_value == 120


def test_size_limit_respected():
    source = """
int big(int x) {
    int acc = x;
""" + "\n".join(f"    acc = acc + {i};" for i in range(60)) + """
    return acc;
}
int main() { return big(0); }
"""
    module = compile_source(source)
    inlined = inline_module(module, size_limit=10)
    assert inlined == 0
    assert calls_in(module)


def test_multilevel_inlining_bottom_up():
    module = compile_source("""
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int main() { return mid(3); }
""")
    inlined = inline_module(module)
    assert inlined >= 2
    assert calls_in(module) == []
    verify_module(module)
    assert run_module(module).exit_value == 8


def test_void_callee_inlined():
    module = compile_source("""
int g;
void bump() { g = g + 1; }
int main() { bump(); bump(); return g; }
""")
    inline_module(module)
    assert calls_in(module) == []
    verify_module(module)
    assert run_module(module).exit_value == 2


def test_inline_with_control_flow_in_callee():
    module = compile_source("""
int absval(int x) { if (x < 0) { return 0 - x; } return x; }
int main() { return absval(0 - 9) + absval(4); }
""")
    inline_module(module)
    verify_module(module)
    assert run_module(module).exit_value == 13


def test_inline_preserves_memory_semantics():
    module = compile_source("""
int buf[4];
void put(int i, int v) { buf[i] = v; }
int get(int i) { return buf[i]; }
int main() {
    put(1, 11);
    put(2, 22);
    return get(1) + get(2);
}
""")
    inline_module(module)
    verify_module(module)
    assert run_module(module).exit_value == 33


def test_inline_exposes_cross_function_spinloop():
    from repro.core.spinloops import detect_spinloops

    module = compile_source("""
int flag;
int read_flag() { return flag; }
int main() { while (read_flag() == 0) { } return 0; }
""")
    before = detect_spinloops(module)
    assert before.control_keys == set()  # hidden behind the call
    inline_module(module)
    after = detect_spinloops(module)
    assert ("global", "flag") in after.control_keys


def test_thread_entry_functions_survive():
    module = compile_source("""
int g;
void worker() { g = 1; }
int main() {
    int t = thread_create(worker);
    thread_join(t);
    return g;
}
""")
    inline_module(module)
    assert "worker" in module.functions
    verify_module(module)
    assert run_module(module).exit_value == 1
