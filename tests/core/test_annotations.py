"""Tests for the explicit-annotation analysis (§3.2)."""

from repro.api import compile_source
from repro.core.annotations import analyze_annotations
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


def test_volatile_accesses_become_sc_atomic():
    module = compile_source("""
volatile int v;
int main() { v = 1; return v; }
""")
    result = analyze_annotations(module)
    assert result.conversions == 2
    assert ("global", "v") in result.location_keys
    for instr in module.instructions():
        if isinstance(instr, (ins.Load, ins.Store)) and instr.volatile:
            assert instr.order is MemoryOrder.SEQ_CST


def test_weak_atomic_orders_raised_to_sc():
    module = compile_source("""
int x;
int main() {
    atomic_store_explicit(&x, 1, memory_order_relaxed);
    return atomic_load_explicit(&x, memory_order_acquire);
}
""")
    result = analyze_annotations(module)
    assert result.conversions == 2
    atomics = [
        i for i in module.instructions()
        if isinstance(i, (ins.Load, ins.Store)) and i.order.is_atomic
    ]
    assert all(i.order is MemoryOrder.SEQ_CST for i in atomics)


def test_already_sc_counts_as_marked_not_converted():
    module = compile_source("""
int x;
int main() { atomic_store(&x, 1); return atomic_load(&x); }
""")
    result = analyze_annotations(module)
    assert result.conversions == 0  # already seq_cst
    assert len(result.marked_instructions) == 2


def test_rmw_operations_raised():
    module = compile_source("""
int x;
int main() {
    return atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
}
""")
    result = analyze_annotations(module)
    rmw = next(
        i for i in module.instructions() if isinstance(i, ins.AtomicRMW)
    )
    assert rmw.order is MemoryOrder.SEQ_CST
    assert result.conversions == 1


def test_plain_accesses_untouched():
    module = compile_source("int g;\nint main() { g = 2; return g; }")
    result = analyze_annotations(module)
    assert result.conversions == 0
    assert result.marked_instructions == set()


def test_volatile_blacklist_exempts_device_globals():
    module = compile_source("""
volatile int mmio_reg;
volatile int shared_flag;
int main() { mmio_reg = 1; shared_flag = 1; return 0; }
""")
    result = analyze_annotations(module, blacklist=("mmio_reg",))
    keys = result.location_keys
    assert ("global", "shared_flag") in keys
    assert ("global", "mmio_reg") not in keys
    for instr in module.instructions():
        if isinstance(instr, ins.Store):
            name = getattr(instr.pointer, "name", "")
            if name == "mmio_reg":
                assert instr.order is MemoryOrder.NOT_ATOMIC
            elif name == "shared_flag":
                assert instr.order is MemoryOrder.SEQ_CST
