"""The persistent worker-pool layer: caching, seeding, accounting."""

import os

from repro.core import workers
from repro.core.workers import (
    WorkerPool,
    cached_module,
    get_pool,
    pool_stats,
    seed_worker,
    shutdown_pools,
    timed_call,
)

SOURCE = """
int x = 0;
int main() { x = 1; return x; }
"""
OTHER = """
int y = 7;
int main() { return y; }
"""


class TestModuleCache:
    def test_cached_module_compiles_and_memoizes(self):
        workers._MEMO.clear()
        first = cached_module(SOURCE, "m")
        assert len(workers._MEMO) == 1
        second = cached_module(SOURCE, "m")
        assert len(workers._MEMO) == 1  # hit, not a recompile
        # Distinct clones: mutating one must not leak into the next.
        assert first is not second
        del first.functions["main"]
        assert "main" in cached_module(SOURCE, "m").functions

    def test_ir_and_c_sources_never_alias(self):
        workers._MEMO.clear()
        cached_module(SOURCE, "m", is_ir=False)
        keys = set(workers._MEMO)
        # Same text tagged as IR must get its own cache slot (it would
        # not even parse, so reaching the compiler proves the miss).
        try:
            cached_module(SOURCE, "m", is_ir=True)
        except Exception:
            pass
        assert workers._source_key(SOURCE, True) not in keys

    def test_seeded_entries_survive_memo_pressure(self):
        workers._MEMO.clear()
        seed_worker([("m", SOURCE, False)])
        try:
            assert workers._source_key(SOURCE, False) in workers._SEEDED
            workers._MEMO.clear()
            module = cached_module(SOURCE, "m")
            assert "main" in module.functions
            assert not workers._MEMO  # served from the seed, not memoized
        finally:
            workers._SEEDED.clear()

    def test_memo_is_bounded(self):
        workers._MEMO.clear()
        for index in range(workers._MEMO_LIMIT + 5):
            cached_module(
                f"int g{index} = {index}; int main() {{ return g{index}; }}",
                f"m{index}",
            )
        assert len(workers._MEMO) <= workers._MEMO_LIMIT
        workers._MEMO.clear()


def _double(value):
    return value * 2


class TestTimedCall:
    def test_tags_pid_and_wall(self):
        pid, wall, result = timed_call(_double, 21)
        assert pid == os.getpid()
        assert wall >= 0.0
        assert result == 42


class TestPool:
    def test_map_preserves_order_and_accounts_per_worker(self):
        pool = WorkerPool(2)
        try:
            values = list(range(20))
            assert pool.map(_double, values) == [v * 2 for v in values]
            assert pool.batches == 1
            assert sum(s["tasks"] for s in pool.worker_stats.values()) == 20
            assert all(
                s["busy_seconds"] >= 0.0
                for s in pool.worker_stats.values()
            )
        finally:
            pool.close()

    def test_empty_batch_short_circuits(self):
        pool = WorkerPool(2)
        try:
            assert pool.map(_double, []) == []
            assert pool.batches == 0
        finally:
            pool.close()

    def test_get_pool_is_persistent_per_jobs_count(self):
        shutdown_pools()
        try:
            first = get_pool(2)
            assert get_pool(2) is first  # reused, not re-forked
            assert get_pool(3) is not first  # keyed by worker count
            first.map(_double, [1, 2, 3])
            stats = pool_stats()
            assert stats[2]["batches"] == 1
            assert stats[3]["batches"] == 0
        finally:
            shutdown_pools()
        assert pool_stats() == {}
