"""Tests for AtoMigConfig and PortingLevel."""

from repro.core.config import AtoMigConfig, PortingLevel


def test_levels_cover_the_papers_variants():
    values = {level.value for level in PortingLevel}
    assert values == {
        "original", "expl", "spin", "atomig", "naive", "lasagne",
    }


def test_default_config_is_the_paper_configuration():
    config = AtoMigConfig()
    assert config.analyze_annotations
    assert config.detect_spinloops
    assert config.detect_optimistic
    assert config.alias_exploration
    assert config.inline_before_analysis
    assert not config.strict_spinloop_definition
    assert not config.force_explicit_barriers
    # §6 extensions are off by default (not part of the evaluation).
    assert not config.detect_polling_loops
    assert not config.compiler_barrier_seeds


def test_for_level_expl_disables_pattern_detection():
    config = AtoMigConfig.for_level(PortingLevel.EXPL)
    assert not config.detect_spinloops
    assert not config.detect_optimistic
    assert config.alias_exploration  # atomics still seed buddies


def test_for_level_spin_disables_only_optimistic():
    config = AtoMigConfig.for_level(PortingLevel.SPIN)
    assert config.detect_spinloops
    assert not config.detect_optimistic


def test_for_level_atomig_is_default():
    assert AtoMigConfig.for_level(PortingLevel.ATOMIG) == AtoMigConfig()
