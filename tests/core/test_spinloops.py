"""Tests for spinloop detection against the paper's Figure 3 taxonomy."""

from repro.api import compile_source
from repro.core.spinloops import detect_spinloops
from repro.ir import instructions as ins


def detect(source, strict=False):
    module = compile_source(source)
    return module, detect_spinloops(module, strict=strict)


def spinloop_functions(result):
    return sorted({info.function_name for info in result.spinloops})


def test_figure3_spinloop1_plain_global_wait():
    _m, result = detect("""
int flag;
int main() { while (flag != 1) { } return 0; }
""")
    assert spinloop_functions(result) == ["main"]
    assert result.control_keys == {("global", "flag")}


def test_figure3_spinloop2_constant_store():
    _m, result = detect("""
int flag;
int main() {
    int l_flag;
    do { l_flag = 1; } while (l_flag != flag);
    return 0;
}
""")
    assert spinloop_functions(result) == ["main"]


def test_figure3_spinloop3_indirect_dependency():
    _m, result = detect("""
int flag;
int main() {
    int l_flag;
    do { l_flag = flag & 255; } while (l_flag != 1);
    return 0;
}
""")
    assert spinloop_functions(result) == ["main"]
    assert result.control_keys == {("global", "flag")}


def test_figure3_non_spinloop_local_exit():
    _m, result = detect("""
int flag;
int main() {
    for (int i = 0; i < 100; i++) {
        if (flag == 1) { break; }
    }
    return 0;
}
""")
    assert result.spinloops == []


def test_figure3_non_spinloop_local_store_influences_exit():
    _m, result = detect("""
int turns = 7;
int main() {
    for (int i = 0; i < turns; i++) { }
    return 0;
}
""")
    assert result.spinloops == []


def test_cas_loop_is_spinloop():
    _m, result = detect("""
int lock_word;
int main() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) { }
    return 0;
}
""")
    assert spinloop_functions(result) == ["main"]
    assert any(
        isinstance(ctrl, ins.Cmpxchg) for ctrl in result.control_instructions
    )


def test_spin_on_struct_field_yields_field_key():
    _m, result = detect("""
struct qnode { int locked; struct qnode *next; };
struct qnode nodes[2];
int main() {
    struct qnode *me = &nodes[0];
    while (me->locked != 0) { }
    return 0;
}
""")
    assert ("field", "qnode", 0) in result.control_keys


def test_constant_store_to_nonlocal_still_spinloop():
    """`while (flag) flag = 0;` — constant store exemption (paper)."""
    _m, result = detect("""
int flag;
int main() { while (flag) { flag = 0; } return 0; }
""")
    assert spinloop_functions(result) == ["main"]


def test_nonconstant_local_store_to_condition_location_rejected():
    _m, result = detect("""
int flag;
int main() {
    int i = 0;
    while (flag != i) {
        i = i + 1;
        flag = i + 1;
    }
    return 0;
}
""")
    assert result.spinloops == []


def test_infinite_loop_not_a_spinloop():
    _m, result = detect("""
int g;
int main() { while (1) { g = g + 1; } return 0; }
""")
    assert result.spinloops == []


def test_strict_definition_rejects_loops_with_stores():
    source = """
int flag;
int main() {
    int l;
    do { l = 1; } while (l != flag);
    return 0;
}
"""
    _m, relaxed = detect(source)
    _m2, strict = detect(source, strict=True)
    assert relaxed.spinloops and not strict.spinloops


def test_strict_definition_keeps_pure_waits():
    source = "int flag;\nint main() { while (flag == 0) { } return 0; }"
    _m, strict = detect(source, strict=True)
    assert strict.spinloops


def test_spin_controls_marked_on_instructions():
    module, result = detect("""
int flag;
int main() { while (flag == 0) { } return 0; }
""")
    marked = [
        i for i in module.instructions() if "spin_control" in i.marks
    ]
    assert marked
    assert marked[0] in result.control_instructions


def test_multiple_spinloops_in_one_function():
    _m, result = detect("""
int a; int b;
int main() {
    while (a == 0) { }
    while (b == 0) { }
    return 0;
}
""")
    assert len(result.spinloops) == 2
    assert result.control_keys == {("global", "a"), ("global", "b")}


def test_spin_through_pointer_argument():
    _m, result = detect("""
int g;
void wait_on(int *p) {
    while (*p == 0) { }
}
int main() { wait_on(&g); return 0; }
""")
    # The loop in wait_on spins on a pointer argument: detected, but the
    # location cannot be named (no key) without inlining.
    assert "wait_on" in spinloop_functions(result)
