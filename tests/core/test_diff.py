"""Tests for the porting-diff inspection tool."""

from repro.api import compile_source, port_module
from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.diff import diff_modules

MP = """
int flag = 0;
int msg = 0;
void writer() { msg = 42; flag = 1; }
int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    assert(msg == 42);
    thread_join(t);
    return 0;
}
"""

NO_INLINE = AtoMigConfig(inline_before_analysis=False)


def test_diff_reports_strengthened_accesses():
    module = compile_source(MP, "mp")
    ported, _ = port_module(module, PortingLevel.ATOMIG, config=NO_INLINE)
    diff = diff_modules(module, ported)
    assert len(diff.changes) == 2  # flag store + flag load
    texts = [change.render() for change in diff.changes]
    assert any("@writer" in text and "sticky" in text for text in texts)
    assert any("spin_control" in text for text in texts)


def test_diff_reports_old_and_new_orders():
    module = compile_source(MP, "mp")
    ported, _ = port_module(module, PortingLevel.ATOMIG, config=NO_INLINE)
    diff = diff_modules(module, ported)
    for change in diff.changes:
        assert change.old_order == "not_atomic"
        assert change.new_order == "seq_cst"


def test_diff_reports_inserted_fences():
    source = """
volatile int seq;
int msg;
void writer() { seq = seq + 1; msg = 1; seq = seq + 1; }
int main() {
    int t = thread_create(writer);
    int s;
    int d;
    do { s = seq; d = msg; } while (s % 2 != 0 || s != seq);
    thread_join(t);
    return d;
}
"""
    module = compile_source(source, "seq")
    ported, report = port_module(
        module, PortingLevel.ATOMIG, config=NO_INLINE
    )
    diff = diff_modules(module, ported)
    assert report.fences_inserted > 0
    assert len(diff.fences) == report.fences_inserted
    assert all("optimistic" in fence.reasons for fence in diff.fences)


def test_diff_notes_inlined_functions():
    source = """
int flag = 0;
int read_flag() { return flag; }
void writer() { flag = 1; }
int main() {
    int t = thread_create(writer);
    while (read_flag() != 1) { }
    thread_join(t);
    return 0;
}
"""
    module = compile_source(source, "crossfn")
    ported, _ = port_module(module, PortingLevel.ATOMIG)  # inlining on
    diff = diff_modules(module, ported)
    # main was restructured by inlining read_flag; marked accesses are
    # still reported from the port's marks.
    assert any("restructured" in note for note in diff.structural_notes)
    assert diff.changes


def test_diff_original_vs_original_is_empty():
    module = compile_source(MP, "mp")
    same, _ = port_module(module, PortingLevel.ORIGINAL)
    diff = diff_modules(module, same)
    assert diff.changes == []
    assert diff.fences == []


def test_render_is_stable_text():
    module = compile_source(MP, "mp")
    ported, _ = port_module(module, PortingLevel.ATOMIG, config=NO_INLINE)
    text = diff_modules(module, ported).render()
    assert text.splitlines()[0] == "2 accesses strengthened, 0 fences inserted"
