"""Tests for the two alias modes: the pointer-argument gap fix and
thread-local pruning of over-atomized sticky buddies."""

import pytest

from repro.analysis.cache import AnalysisCache
from repro.api import compile_source, port_module
from repro.bench.corpus import get_benchmark
from repro.core.alias import AccessIndex, explore_aliases
from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.prune import prune_thread_local_accesses
from repro.core.report import count_barriers
from repro.ir.instructions import MemoryOrder
from repro.ir import instructions as ins
from repro.ir.verifier import verify_module


def port(source_fn, mode):
    module = compile_source(source_fn(), "m")
    config = AtoMigConfig(alias_mode=mode)
    return port_module(module, PortingLevel.ATOMIG, config=config)


@pytest.fixture(scope="module")
def indirect_ports():
    bench = get_benchmark("message_passing_indirect")
    return {
        mode: port(bench.mc_source, mode)
        for mode in ("type_based", "points_to")
    }


def test_report_records_alias_mode(indirect_ports):
    assert indirect_ports["type_based"][1].alias_mode == "type_based"
    assert indirect_ports["points_to"][1].alias_mode == "points_to"


def test_points_to_closes_pointer_argument_gap(indirect_ports):
    # The flag is published through an int* parameter inside a
    # recursive (uninlinable) helper: type-based keys cannot connect
    # the store to the spinloop's control, points-to keys can.
    tb_barriers = indirect_ports["type_based"][1].ported_implicit_barriers
    pt_barriers = indirect_ports["points_to"][1].ported_implicit_barriers
    assert pt_barriers > tb_barriers


def test_points_to_port_is_valid_ir(indirect_ports):
    assert verify_module(indirect_ports["points_to"][0])


def test_provenance_names_the_bridged_store(indirect_ports):
    prov = indirect_ports["points_to"][1].alias_provenance
    atomized = [e for e in prov if e["action"] == "atomized"]
    assert any(e["origin"] == "pts_global" for e in atomized)
    for entry in atomized:
        assert entry["function"]
        assert "('global', 'flag')" in entry["key"] or "pts" in entry["key"]


@pytest.fixture(scope="module")
def snapshot_ports():
    bench = get_benchmark("lf_hash_copy")
    return {
        mode: port(bench.mc_source, mode)
        for mode in ("type_based", "points_to")
    }


def test_points_to_prunes_thread_local_buddies(snapshot_ports):
    # The reader's stack snapshot shares (struct, offset) keys with the
    # shared node, so type-based mode atomizes it; points-to proves the
    # snapshot never escapes main's thread and prunes it.
    tb_report = snapshot_ports["type_based"][1]
    pt_report = snapshot_ports["points_to"][1]
    assert pt_report.pruned_thread_local > 0
    assert (
        pt_report.ported_implicit_barriers < tb_report.ported_implicit_barriers
    )


def test_pruned_accesses_carry_mark(snapshot_ports):
    ported, report = snapshot_ports["points_to"]
    marked = [
        i for i in ported.functions["main"].instructions()
        if "pruned_thread_local" in getattr(i, "marks", ())
    ]
    assert len(marked) == report.pruned_thread_local
    for instr in marked:
        assert instr.order is MemoryOrder.NOT_ATOMIC


def test_provenance_lists_pruned_accesses(snapshot_ports):
    prov = snapshot_ports["points_to"][1].alias_provenance
    pruned = [e for e in prov if e["action"] == "pruned_thread_local"]
    assert pruned
    assert all(e["function"] == "main" for e in pruned)


def test_type_based_report_has_no_points_to_fields(snapshot_ports):
    report = snapshot_ports["type_based"][1]
    assert report.pruned_thread_local == 0
    assert report.alias_provenance == []


def test_prune_respects_veto_marks():
    module = compile_source("""
int main() {
    int x = 0;
    x = 1;
    return x;
}
""")
    cache = AnalysisCache(module)
    stores = [
        i for i in module.functions["main"].instructions()
        if isinstance(i, ins.Store)
    ]
    for store in stores:
        store.order = MemoryOrder.SEQ_CST
        store.marks.add("spin_control")
    pruned = prune_thread_local_accesses(module, set(stores), cache)
    assert pruned == set()
    assert all(s.order is MemoryOrder.SEQ_CST for s in stores)


def test_prune_skips_rmw_instructions():
    module = compile_source("""
int main() {
    int x = 0;
    atomic_fetch_add(&x, 1);
    return x;
}
""")
    cache = AnalysisCache(module)
    rmws = [
        i for i in module.functions["main"].instructions()
        if isinstance(i, ins.AtomicRMW)
    ]
    assert rmws
    pruned = prune_thread_local_accesses(module, set(rmws), cache)
    assert pruned == set()


def test_table2_programs_identical_in_both_modes():
    # The invariance guarantee: pts keys only fill keyless accesses, so
    # fully type-keyed programs port bit-identically in both modes.
    bench = get_benchmark("ck_spinlock_cas")
    tb_ported, tb_report = port(bench.mc_source, "type_based")
    pt_ported, pt_report = port(bench.mc_source, "points_to")
    assert (
        tb_report.ported_implicit_barriers == pt_report.ported_implicit_barriers
    )
    assert count_barriers(tb_ported) == count_barriers(pt_ported)
    assert pt_report.pruned_thread_local == 0


def test_access_index_shares_pipeline_cache():
    module = compile_source("""
int flag = 0;
int main() { flag = 1; return flag; }
""")
    cache = AnalysisCache(module)
    index = AccessIndex(module, cache=cache, mode="points_to")
    assert index.cache is cache
    # The shared cache memoizes across consumers: the index's provider
    # is the same object a second consumer would get.
    assert index.provider is cache.key_provider("points_to")


def test_explore_aliases_backward_compatible():
    module = compile_source("""
struct node { int state; int key; };
struct node n;
int main() {
    n.state = 1;
    n.key = 2;
    return 0;
}
""")
    marked, index = explore_aliases(module, {("field", "node", 0)})
    assert marked
    assert index.cache is not None
    assert all("sticky" in i.marks or i.marks for i in marked)
