"""Tests for the §6 extension detectors (polling loops, barrier seeds)."""

from repro.api import check_module, compile_source, port_module
from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.extensions import (
    detect_compiler_barrier_seeds,
    detect_polling_loops,
)

#: A timeout-bounded polling loop: has a local counter influencing the
#: exit (so the paper's spinloop definition rejects it, per Figure 3's
#: non-spinloop examples) but sleeps while polling shared state.
POLLING = """
int flag = 0;
int msg = 0;

void writer() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(writer);
    int tries = 0;
    while (flag != 1 && tries < 1000) {
        usleep(10);
        tries = tries + 1;
    }
    if (flag == 1) {
        assert(msg == 42);
    }
    thread_join(t);
    return 0;
}
"""

BARRIER_SEEDED = """
int data = 0;
int ready = 0;

void producer() {
    data = 7;
    __asm__("" ::: "memory");
    ready = 1;
}

int main() {
    int t = thread_create(producer);
    int r = ready;
    int d = data;
    assert(r == 0 || d == 7);
    thread_join(t);
    return 0;
}
"""


class TestPollingLoops:
    def test_spinloop_detector_misses_polling_loop(self):
        module = compile_source(POLLING, "poll")
        _ported, report = port_module(module, PortingLevel.ATOMIG)
        # The timeout counter disqualifies the loop under the paper's
        # definition (condition 2: local i++ influences the exit).
        assert report.num_spinloops == 0

    def test_polling_detector_finds_it(self):
        module = compile_source(POLLING, "poll")
        result = detect_polling_loops(module)
        assert result.polling_loops
        assert ("global", "flag") in result.control_keys

    def test_polling_port_fixes_the_bug(self):
        module = compile_source(POLLING, "poll")
        baseline = check_module(module, model="wmm", max_steps=800)
        assert not baseline.ok  # MP bug reachable within the timeout

        plain, _ = port_module(module, PortingLevel.ATOMIG)
        assert not check_module(plain, model="wmm", max_steps=800).ok

        extended, report = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(detect_polling_loops=True),
        )
        assert check_module(extended, model="wmm", max_steps=800).ok
        assert any("polling" in note for note in report.notes)

    def test_sleepless_loops_not_marked(self):
        module = compile_source("""
int g;
int main() {
    for (int i = 0; i < 10 && g == 0; i++) { }
    return 0;
}
""")
        result = detect_polling_loops(module)
        assert result.polling_loops == []


class TestCompilerBarrierSeeds:
    def test_adjacent_shared_accesses_marked(self):
        module = compile_source(BARRIER_SEEDED, "cb")
        result = detect_compiler_barrier_seeds(module)
        assert ("global", "data") in result.control_keys
        assert ("global", "ready") in result.control_keys

    def test_barrier_seeded_port_fixes_mp(self):
        module = compile_source(BARRIER_SEEDED, "cb")
        assert not check_module(module, model="wmm", max_steps=400).ok
        extended, _report = port_module(
            module,
            PortingLevel.ATOMIG,
            config=AtoMigConfig(compiler_barrier_seeds=True),
        )
        assert check_module(extended, model="wmm", max_steps=400).ok

    def test_private_neighbours_not_marked(self):
        module = compile_source("""
int main() {
    int x = 1;
    __asm__("" ::: "memory");
    int y = x;
    return y;
}
""")
        result = detect_compiler_barrier_seeds(module)
        assert result.control_instructions == set()

    def test_window_bounds_the_scan(self):
        module = compile_source("""
int far = 0;
int near = 0;
int main() {
    far = 1;
    int a = 0;
    int b = 0;
    int c = 0;
    int d = 0;
    near = 1;
    __asm__("" ::: "memory");
    return near;
}
""")
        result = detect_compiler_barrier_seeds(module, window=2)
        assert ("global", "near") in result.control_keys
        assert ("global", "far") not in result.control_keys
