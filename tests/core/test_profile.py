"""PipelineStats: timing, counters, merging, (de)serialization."""

from repro.core.profile import (
    STAGE_ORDER,
    PipelineStats,
    format_pipeline_stats,
)


def test_stage_contextmanager_accumulates():
    stats = PipelineStats()
    with stats.stage("alias"):
        pass
    first = stats.stage_seconds["alias"]
    assert first >= 0.0
    with stats.stage("alias"):
        pass
    assert stats.stage_seconds["alias"] >= first  # additive, not replaced
    assert set(stats.stage_seconds) == {"alias"}


def test_stage_records_even_when_body_raises():
    stats = PipelineStats()
    try:
        with stats.stage("atomize"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert "atomize" in stats.stage_seconds


def test_counters_accumulate():
    stats = PipelineStats()
    stats.count("verified_functions", 3)
    stats.count("verified_functions", 2)
    stats.count("inlined_sites")
    assert stats.counters == {"verified_functions": 5, "inlined_sites": 1}


def test_transform_seconds_excludes_verify_and_recount():
    stats = PipelineStats(total_seconds=10.0)
    stats.add("alias", 6.0)
    stats.add("verify", 3.0)
    stats.add("count_barriers", 1.0)
    assert stats.transform_seconds == 6.0
    # Never negative even with inconsistent inputs.
    stats.total_seconds = 2.0
    assert stats.transform_seconds == 0.0


def test_merge_folds_everything():
    left = PipelineStats(total_seconds=1.0)
    left.add("clone", 0.25)
    left.count("verified_functions", 4)
    right = PipelineStats(total_seconds=2.0)
    right.add("clone", 0.5)
    right.add("naive", 0.75)
    right.count("verified_functions", 6)
    merged = left.merge(right)
    assert merged is left
    assert left.stage_seconds == {"clone": 0.75, "naive": 0.75}
    assert left.counters == {"verified_functions": 10}
    assert left.total_seconds == 3.0
    assert left.ports == 2


def test_ordered_stages_follow_canonical_order():
    stats = PipelineStats()
    stats.add("verify", 1.0)
    stats.add("clone", 1.0)
    stats.add("alias", 1.0)
    stats.add("custom_extra", 1.0)
    names = [name for name, _ in stats.ordered_stages()]
    assert names == ["clone", "alias", "verify", "custom_extra"]
    assert all(
        name in STAGE_ORDER for name in names if name != "custom_extra"
    )


def test_round_trip_through_dict():
    stats = PipelineStats(total_seconds=4.0, ports=3)
    stats.add("alias", 1.5)
    stats.add("verify", 1.0)
    stats.count("verify_skipped_functions", 9)
    payload = stats.to_dict()
    assert payload["transform_seconds"] == 3.0
    clone = PipelineStats.from_dict(payload)
    assert clone.stage_seconds == stats.stage_seconds
    assert clone.counters == stats.counters
    assert clone.total_seconds == stats.total_seconds
    assert clone.ports == stats.ports
    assert clone.to_dict() == payload


def test_format_lists_stages_counters_and_total():
    stats = PipelineStats(total_seconds=2.0, ports=2)
    stats.add("clone", 0.5)
    stats.add("atomize", 1.5)
    stats.count("verified_functions", 8)
    text = format_pipeline_stats(stats)
    assert "clone" in text
    assert "atomize" in text
    assert "total" in text
    assert "ports merged" in text
    assert "verified_functions" in text
    assert "75.0%" in text
