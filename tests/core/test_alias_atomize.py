"""Tests for alias exploration (sticky buddies) and the atomize stage."""

from repro.api import compile_source
from repro.core.alias import AccessIndex, explore_aliases
from repro.core.atomize import atomize_accesses
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


def test_access_index_groups_by_global():
    module = compile_source("""
int g; int h;
void f() { g = 1; }
int main() { f(); return g + h; }
""")
    index = AccessIndex(module)
    g_accesses = index.accesses_for(("global", "g"))
    assert len(g_accesses) == 2  # the store in f and the load in main
    assert len(index.accesses_for(("global", "h"))) == 1


def test_access_index_groups_by_field_signature():
    module = compile_source("""
struct node { int a; int b; };
struct node pool[4];
int f(struct node *p) { return p->b; }
int main() { pool[0].b = 7; return f(&pool[0]); }
""")
    index = AccessIndex(module)
    buddies = index.accesses_for(("field", "node", 1))
    kinds = sorted(type(i).__name__ for i in buddies)
    assert kinds == ["Load", "Store"]


def test_explore_aliases_marks_all_buddies():
    module = compile_source("""
int flag;
void set_it() { flag = 1; }
int get_it() { return flag; }
int main() { set_it(); return get_it(); }
""")
    marked, _index = explore_aliases(module, {("global", "flag")})
    assert len(marked) == 2
    assert all("sticky" in instr.marks for instr in marked)


def test_explore_aliases_is_idempotent():
    module = compile_source("""
int flag;
int main() { flag = 1; return flag; }
""")
    marked_first, index = explore_aliases(module, {("global", "flag")})
    marked_again, _ = explore_aliases(module, {("global", "flag")}, index)
    assert marked_first and not marked_again  # once sticky, always sticky


def test_explore_aliases_unknown_key_is_noop():
    module = compile_source("int main() { return 0; }")
    marked, _ = explore_aliases(module, {("global", "nothing")})
    assert marked == set()


def test_atomize_upgrades_orders():
    module = compile_source("""
int flag;
int main() { flag = 1; return flag; }
""")
    accesses = [
        i for i in module.instructions()
        if isinstance(i, (ins.Load, ins.Store))
        and getattr(i.accessed_pointer(), "name", "") == "flag"
    ]
    converted = atomize_accesses(set(accesses))
    assert converted == len(accesses)
    assert all(i.order is MemoryOrder.SEQ_CST for i in accesses)
    # Re-atomizing converts nothing new.
    assert atomize_accesses(set(accesses)) == 0


def test_atomize_force_explicit_wraps_with_fences():
    module = compile_source("""
int flag;
int main() { flag = 1; return flag; }
""")
    store = next(
        i for i in module.instructions()
        if isinstance(i, ins.Store)
        and getattr(i.accessed_pointer(), "name", "") == "flag"
    )
    block = store.block
    before = len([i for i in block.instructions if isinstance(i, ins.Fence)])
    atomize_accesses({store}, force_explicit=True)
    fences = [i for i in block.instructions if isinstance(i, ins.Fence)]
    assert len(fences) == before + 2
    index = block.instructions.index(store)
    assert isinstance(block.instructions[index - 1], ins.Fence)
    assert isinstance(block.instructions[index + 1], ins.Fence)
    assert store.order is MemoryOrder.NOT_ATOMIC  # stayed plain
