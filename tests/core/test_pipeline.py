"""Tests for the end-to-end porting pipeline and its report."""

import pytest

from repro.api import compile_source, port_module
from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.report import count_barriers
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.verifier import verify_module

MP = """
int flag = 0;
int msg = 0;

void writer() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    int data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
"""


@pytest.fixture
def mp_module():
    return compile_source(MP, "mp")


def test_port_does_not_mutate_input(mp_module):
    before = count_barriers(mp_module)
    port_module(mp_module, PortingLevel.ATOMIG)
    assert count_barriers(mp_module) == before


def test_original_level_is_identity(mp_module):
    ported, report = port_module(mp_module, PortingLevel.ORIGINAL)
    assert count_barriers(ported) == count_barriers(mp_module)
    assert report.num_spinloops == 0
    assert report.level == "original"


@pytest.mark.parametrize("level", list(PortingLevel))
def test_every_level_produces_valid_ir(mp_module, level):
    ported, _report = port_module(mp_module, level)
    assert verify_module(ported)


def test_atomig_report_contents(mp_module):
    _ported, report = port_module(mp_module, PortingLevel.ATOMIG)
    assert report.level == "atomig"
    assert report.num_spinloops >= 1
    assert "('global', 'flag')" in report.spin_controls
    assert report.ported_implicit_barriers > report.original_implicit_barriers
    assert report.porting_seconds > 0
    assert report.summary().startswith("module mp")


def test_atomig_transforms_both_sides(mp_module):
    ported, _ = port_module(mp_module, PortingLevel.ATOMIG)
    writer_store = next(
        i for i in ported.functions["writer"].instructions()
        if isinstance(i, ins.Store)
        and getattr(i.pointer, "name", "") == "flag"
    )
    assert writer_store.order is MemoryOrder.SEQ_CST
    msg_store = next(
        i for i in ported.functions["writer"].instructions()
        if isinstance(i, ins.Store)
        and getattr(i.pointer, "name", "") == "msg"
    )
    assert msg_store.order is MemoryOrder.NOT_ATOMIC


def test_expl_level_skips_spinloops(mp_module):
    _ported, report = port_module(mp_module, PortingLevel.EXPL)
    assert report.num_spinloops == 0
    assert report.ported_implicit_barriers == 0  # nothing annotated in MP


def test_naive_level_atomizes_shared(mp_module):
    ported, report = port_module(mp_module, PortingLevel.NAIVE)
    _expl, implicit = count_barriers(ported)
    assert implicit >= 4  # both flag and msg accesses, both sides
    assert report.level == "naive"


def test_lasagne_level_inserts_fences(mp_module):
    ported, report = port_module(mp_module, PortingLevel.LASAGNE)
    explicit, implicit = count_barriers(ported)
    assert explicit > 0
    assert implicit == 0  # accesses stay plain
    assert any("lasagne" in note for note in report.notes)


def test_config_overrides_pipeline(mp_module):
    _ported, report = port_module(
        mp_module,
        PortingLevel.ATOMIG,
        config=AtoMigConfig(detect_spinloops=False),
    )
    assert report.num_spinloops == 0


def test_report_stored_in_metadata(mp_module):
    ported, report = port_module(mp_module, PortingLevel.ATOMIG)
    assert ported.metadata["porting_report"] is report


def test_ported_module_renamed(mp_module):
    ported, _ = port_module(mp_module, PortingLevel.ATOMIG)
    assert ported.name == "mp.atomig"
    assert mp_module.name == "mp"
