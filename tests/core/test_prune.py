"""Tests for lock-protection pruning (``AtoMigConfig.prune_protected``)."""

from repro.api import (
    AtoMigConfig,
    PortingLevel,
    check_module,
    compile_source,
    port_module,
)
from repro.bench.programs import ck_spinlock_cas
from repro.core.report import count_barriers
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


def _port(module, prune):
    config = AtoMigConfig(prune_protected=True) if prune else None
    return port_module(module, PortingLevel.ATOMIG, config=config)


def _pruned_instructions(module):
    return [
        instr for instr in module.instructions()
        if "pruned_protected" in instr.marks
    ]


def test_pruning_removes_barriers_on_legacy_tas():
    module = compile_source(ck_spinlock_cas.legacy_mc_source(), "tas_legacy")
    plain, plain_report = _port(module, prune=False)
    pruned, pruned_report = _port(module, prune=True)
    assert pruned_report.pruned_protected > 0
    assert count_barriers(pruned)[1] < count_barriers(plain)[1]
    assert plain_report.pruned_protected == 0


def test_pruned_accesses_are_plain_and_marked():
    module = compile_source(ck_spinlock_cas.legacy_mc_source(), "tas_legacy")
    pruned, report = _port(module, prune=True)
    instructions = _pruned_instructions(pruned)
    assert len(instructions) == report.pruned_protected
    for instr in instructions:
        assert isinstance(instr, (ins.Load, ins.Store))
        assert instr.order is MemoryOrder.NOT_ATOMIC


def test_lock_word_stays_atomic_after_pruning():
    module = compile_source(ck_spinlock_cas.legacy_mc_source(), "tas_legacy")
    pruned, _report = _port(module, prune=True)
    lock_accesses = [
        instr for instr in pruned.instructions()
        if instr.is_memory_access()
        and not isinstance(instr, ins.Alloca)
        and getattr(instr.accessed_pointer(), "name", None) == "lock_word"
    ]
    assert lock_accesses
    for instr in lock_accesses:
        assert isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)) or (
            instr.order.is_atomic
        )


def test_pruned_module_still_verifies_under_wmm():
    module = compile_source(ck_spinlock_cas.legacy_mc_source(), "tas_legacy")
    pruned, _report = _port(module, prune=True)
    result = check_module(pruned, model="wmm", max_steps=4000)
    assert result.ok, result.violation


def test_no_pruning_without_locks():
    module = compile_source("""
int flag = 0;
int msg = 0;

void sender() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(sender);
    while (flag == 0) { cpu_relax(); }
    int m = msg;
    thread_join(t);
    assert(m == 42);
    return m;
}
""", "mp")
    plain, _ = _port(module, prune=False)
    pruned, report = _port(module, prune=True)
    assert report.pruned_protected == 0
    assert count_barriers(pruned) == count_barriers(plain)


def test_source_level_atomics_are_never_pruned():
    module = compile_source("""
int lock_word = 0;
volatile int counter = 0;
int total = 0;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() { lock_word = 0; }

void worker() {
    lock();
    counter = counter + 1;
    atomic_store(&total, counter);
    unlock();
}

void thread_fn() { worker(); }

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    return total;
}
""", "atomics_kept")
    pruned, report = _port(module, prune=True)
    # The volatile counter accesses are demoted...
    assert report.pruned_protected > 0
    # ...but the store the source spelled as a C11 atomic stays atomic,
    # even though the lock protects @total as well.
    total_stores = [
        instr for instr in pruned.instructions()
        if isinstance(instr, ins.Store)
        and getattr(instr.pointer, "name", None) == "total"
    ]
    assert total_stores
    for instr in total_stores:
        assert instr.order.is_atomic
        assert "pruned_protected" not in instr.marks


def test_prune_flag_defaults_off():
    assert AtoMigConfig().prune_protected is False
    assert AtoMigConfig.for_level(PortingLevel.ATOMIG).prune_protected is False
