"""Tests for optimistic-loop detection (§3.3, sequence locks)."""

from repro.api import compile_source
from repro.core.optimistic import detect_optimistic_loops
from repro.core.spinloops import detect_spinloops


def detect(source):
    module = compile_source(source)
    spin = detect_spinloops(module)
    return module, spin, detect_optimistic_loops(module, spin)


SEQLOCK = """
volatile int seq;
int msg;
int main() {
    int s;
    int data;
    do {
        s = seq;
        data = msg;
    } while (s % 2 != 0 || s != seq);
    return data;
}
"""


def test_seqlock_reader_is_optimistic():
    _m, spin, result = detect(SEQLOCK)
    assert len(result.optimistic_loops) == 1
    assert result.control_keys == {("global", "seq")}


def test_optimistic_reads_identified():
    _m, _spin, result = detect(SEQLOCK)
    opt = result.optimistic_loops[0]
    assert len(opt.optimistic_reads) == 1
    read = next(iter(opt.optimistic_reads))
    assert getattr(read.pointer, "name", "") == "msg"


def test_plain_spinloop_not_optimistic():
    _m, spin, result = detect("""
int flag;
int main() {
    while (flag == 0) { }
    return 0;
}
""")
    assert spin.spinloops
    assert result.optimistic_loops == []


def test_value_unused_after_loop_not_optimistic():
    _m, spin, result = detect("""
volatile int seq;
int msg;
int main() {
    int s;
    int data;
    do {
        s = seq;
        data = msg;
        data = 0;    // overwritten: the optimistic read dies in-loop
    } while (s % 2 != 0 || s != seq);
    return data;
}
""")
    # The msg value itself never escapes the loop (data is clobbered),
    # but the *slot* data is read afterwards; the analysis is
    # deliberately conservative through stack slots, so this still
    # counts as optimistic.
    assert spin.spinloops


def test_returned_value_counts_as_outside_use():
    _m, _spin, result = detect("""
volatile int seq;
int msg;
int reader() {
    int s;
    int data;
    do {
        s = seq;
        data = msg;
    } while (s != seq);
    return data;
}
int main() { return reader(); }
""")
    assert any(
        opt.function_name == "reader" for opt in result.optimistic_loops
    )


def test_optimistic_controls_marked():
    module, _spin, result = detect(SEQLOCK)
    marked = [
        i for i in module.instructions() if "optimistic_control" in i.marks
    ]
    assert marked
    assert result.control_instructions


def test_field_based_optimistic_loop():
    """The lf-hash shape: validate a struct field, read another."""
    _m, _spin, result = detect("""
struct node { int state; int key; };
struct node n;
int main() {
    int state;
    int key;
    do {
        state = n.state;
        key = n.key;
    } while (state != n.state);
    return key;
}
""")
    assert len(result.optimistic_loops) == 1
    assert result.control_keys == {("field", "node", 0)}


def test_spin_control_read_not_counted_as_optimistic_read():
    """Reading the control twice must not make the loop optimistic."""
    _m, _spin, result = detect("""
int flag;
int main() {
    int a;
    do {
        a = flag;
    } while (a != flag);
    return 0;
}
""")
    assert result.optimistic_loops == []
