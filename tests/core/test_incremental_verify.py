"""Incremental re-verification of ported modules.

A clone of a verified module is verified by construction, so the
pipeline only needs to re-check functions the port actually modified.
The fast path must never change the ported IR — only how much
verification work runs afterwards.
"""

from repro.api import compile_source, port_module
from repro.core.config import AtoMigConfig, PortingLevel
from repro.ir.printer import print_module

#: One spinloop in ``wait`` plus pure-local helpers the port never has
#: a reason to touch.
SOURCE = """
int flag = 0;
int data = 0;
int pure_math(int x) { return x * x + 1; }
int more_math(int x) { int acc = 0; for (int i = 0; i < x; i++) { acc = acc + i; } return acc; }
void wait() { while (flag == 0) { } }
void producer() { data = pure_math(3); flag = 1; }
int main() {
    thread_create(producer);
    wait();
    return data + more_math(4);
}
"""


def _port(level, incremental):
    module = compile_source(SOURCE, "incr")
    config = AtoMigConfig.for_level(level)
    config.incremental_verify = incremental
    ported, report = port_module(module, level, config=config)
    return print_module(ported), report


def test_incremental_and_full_verify_produce_identical_ir():
    for level in (PortingLevel.ATOMIG, PortingLevel.SPIN, PortingLevel.EXPL):
        fast, _ = _port(level, incremental=True)
        full, _ = _port(level, incremental=False)
        assert fast == full, level


def test_incremental_port_skips_untouched_functions():
    _, report = _port(PortingLevel.ATOMIG, incremental=True)
    counters = report.stats.counters
    assert counters.get("verify_skipped_functions", 0) >= 1
    assert counters["verified_functions"] >= 1


def test_full_verify_covers_every_function():
    _, report = _port(PortingLevel.ATOMIG, incremental=False)
    counters = report.stats.counters
    assert counters["verified_functions"] >= 5
    assert "verify_skipped_functions" not in counters


def test_original_level_verifies_nothing():
    _, report = _port(PortingLevel.ORIGINAL, incremental=True)
    counters = report.stats.counters
    assert counters.get("verified_functions", 0) == 0
    assert counters.get("verify_skipped_functions", 0) >= 5


def test_naive_port_always_fully_verifies():
    _, report = _port(PortingLevel.NAIVE, incremental=True)
    counters = report.stats.counters
    assert counters["verified_functions"] >= 5
    assert "verify_skipped_functions" not in counters
