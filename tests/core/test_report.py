"""Tests for PortingReport and barrier counting."""

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.core.report import PortingReport, count_barriers
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Constant, GlobalVar
from repro.lang.ctypes import INT


def test_empty_report_defaults():
    report = PortingReport(module_name="m")
    assert report.num_spinloops == 0
    assert report.num_optimistic_loops == 0
    assert "m" in report.summary()


def test_count_barriers_classification():
    from repro.ir.module import Function, Module

    module = Module("m")
    gvar = module.add_global(GlobalVar("g", INT))
    fn = Function("f", INT, [], [])
    module.add_function(fn)
    block = fn.new_block("entry")
    block.append(ins.Fence(MemoryOrder.SEQ_CST))
    block.append(ins.Load(gvar, MemoryOrder.SEQ_CST))
    block.append(ins.Load(gvar))  # plain: not counted
    block.append(ins.Store(gvar, Constant(1), MemoryOrder.RELEASE))
    block.append(ins.AtomicRMW("add", gvar, Constant(1),
                               MemoryOrder.RELAXED))
    block.append(ins.Cmpxchg(gvar, Constant(0), Constant(1)))
    block.append(ins.Ret(Constant(0)))

    explicit, implicit = count_barriers(module)
    assert explicit == 1
    # SC load + release store + RMW + CAS (RMWs always count).
    assert implicit == 4


def test_report_barrier_fields_track_module_state():
    module = compile_source("""
volatile int v;
int flag;
int main() {
    while (flag == 0) { }
    v = 1;
    return v;
}
""")
    _ported, report = port_module(module, PortingLevel.ATOMIG)
    assert report.original_implicit_barriers == 0
    assert report.ported_implicit_barriers >= 3  # flag load + v accesses
    assert report.porting_seconds > 0


def test_summary_format_is_single_paragraph():
    module = compile_source("int main() { return 0; }", "tiny")
    _ported, report = port_module(module, PortingLevel.ATOMIG)
    summary = report.summary()
    assert "\n" not in summary
    assert "tiny" in summary and "atomig" in summary
