"""PortTask / run_port_tasks: the parallel porting harness.

Determinism contract: the pool path must return outcomes that are
indistinguishable from the serial path — same reports, same barrier
counts, same printed IR, same modeled cycles — because the tables built
on top of it assert value equality against their serial variants.
"""

import pytest

from repro.api import compile_source, port_module, run_module
from repro.bench.corpus import BENCHMARKS
from repro.core.config import PortingLevel
from repro.core.parallel import PortOutcome, PortTask, run_port_tasks
from repro.core.report import count_barriers
from repro.ir.printer import print_module

PROGRAMS = ("ck_ring", "ck_spinlock_cas")


def _tasks(emit_ir=False, run_seeds=()):
    return [
        PortTask(
            name=name, source=BENCHMARKS[name].mc_source(), level=level,
            emit_ir=emit_ir, run_seeds=run_seeds,
        )
        for name in PROGRAMS
        for level in ("atomig", "naive")
    ]


def _timeless(report):
    """Report dict minus wall-clock noise (everything value-like)."""
    payload = report.to_dict()
    payload.pop("porting_seconds", None)
    payload.pop("stats", None)
    return payload


def test_serial_and_pool_outcomes_match():
    tasks = _tasks(emit_ir=True)
    serial = run_port_tasks(tasks, jobs=None)
    pooled = run_port_tasks(tasks, jobs=2)
    assert len(serial) == len(pooled) == len(tasks)
    for task, left, right in zip(tasks, serial, pooled):
        assert isinstance(left, PortOutcome)
        assert left.name == right.name == task.name
        assert left.level == right.level == task.level
        assert left.barriers == right.barriers
        assert left.ir_text == right.ir_text
        assert _timeless(left.report) == _timeless(right.report)


def test_pool_ports_equal_inline_ports():
    tasks = _tasks(emit_ir=True)
    pooled = run_port_tasks(tasks, jobs=2)
    for task, outcome in zip(tasks, pooled):
        module = compile_source(task.source, task.name)
        ported, report = port_module(module, PortingLevel(task.level))
        assert outcome.ir_text == print_module(ported)
        assert outcome.barriers == count_barriers(ported)
        assert outcome.report.num_spinloops == report.num_spinloops
        assert _timeless(outcome.report) == _timeless(report)


def test_run_seeds_produce_cycles():
    seeds = (0, 1)
    task = _tasks(run_seeds=seeds)[0]
    outcome = run_port_tasks([task], jobs=None)[0]
    assert len(outcome.cycles) == len(seeds)
    module = compile_source(task.source, task.name)
    ported, _report = port_module(module, PortingLevel(task.level))
    expected = tuple(
        run_module(ported, schedule_seed=seed).cycles for seed in seeds
    )
    assert outcome.cycles == expected


def test_compile_only_task():
    source = BENCHMARKS["ck_ring"].mc_source()
    outcome = run_port_tasks(
        [PortTask(name="ck_ring", source=source)], jobs=None
    )[0]
    assert outcome.level is None
    assert outcome.report is None
    assert outcome.port_seconds == 0.0
    assert outcome.build_seconds > 0.0
    assert outcome.barriers == count_barriers(compile_source(source))


def test_synth_spec_task():
    task = PortTask(
        name="memcached", synth=("memcached", 400, 0), level="atomig",
    )
    outcome = run_port_tasks([task], jobs=None)[0]
    assert outcome.report is not None
    assert outcome.report.num_spinloops >= 1
    assert outcome.report.stats.total_seconds > 0


def test_outcomes_carry_profiles():
    for outcome in run_port_tasks(_tasks(), jobs=2):
        stats = outcome.report.stats
        assert stats.total_seconds > 0
        assert "clone" in stats.stage_seconds


def test_missing_cycles_without_seeds():
    outcome = run_port_tasks(_tasks(), jobs=None)[0]
    assert outcome.cycles == ()
    assert outcome.ir_text is None


def test_tasks_are_frozen():
    task = _tasks()[0]
    with pytest.raises(Exception):
        task.level = "naive"
