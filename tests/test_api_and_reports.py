"""Tests for the top-level API surface and the report machinery."""

import pytest

import repro
from repro import (
    AtoMigConfig,
    PortingLevel,
    check_module,
    compile_source,
    lint_module,
    port_module,
    run_module,
)
from repro.core.report import LintReport, PortingReport, count_barriers
from repro.errors import ParseError, SemanticError


def test_package_exports():
    assert repro.__version__
    for name in ("compile_source", "port_module", "check_module",
                 "run_module", "lint_module", "PortingLevel",
                 "AtoMigConfig", "PortingReport", "LintReport"):
        assert hasattr(repro, name)


def test_lint_module_api():
    module = compile_source("""
int flag;
void w() { flag = 1; }
int main() {
    int t = thread_create(w);
    while (flag == 0) { }
    thread_join(t);
    return flag;
}
""", "lintable")
    report = lint_module(module)
    assert isinstance(report, LintReport)
    assert report.module_name == "lintable"
    assert report.counts().get("racy")
    assert "racy" in report.summary()
    rendered = report.render()
    assert "@flag" in rendered
    payload = report.to_dict()
    assert payload["module"] == "lintable"
    assert payload["findings"]


def test_compile_source_rejects_bad_syntax():
    with pytest.raises(ParseError):
        compile_source("int main( {")


def test_compile_source_rejects_bad_semantics():
    with pytest.raises(SemanticError):
        compile_source("int main() { return ghost; }")


def test_full_api_workflow():
    module = compile_source("""
int flag;
void w() { flag = 1; }
int main() {
    int t = thread_create(w);
    while (flag == 0) { }
    thread_join(t);
    return flag;
}
""", "workflow")
    ported, report = port_module(module, PortingLevel.ATOMIG)
    assert isinstance(report, PortingReport)
    result = check_module(ported, model="wmm", max_steps=300)
    assert result.ok
    run = run_module(ported)
    assert run.exit_value == 1


def test_count_barriers_matches_report():
    module = compile_source("""
volatile int v;
int main() {
    atomic_thread_fence(memory_order_seq_cst);
    v = 1;
    return atomic_load(&v);
}
""")
    explicit, implicit = count_barriers(module)
    assert explicit == 1  # the stand-alone fence
    # Before porting, only the atomic_load carries an implicit barrier;
    # the volatile store is still a plain access.
    assert implicit == 1
    ported, report = port_module(module, PortingLevel.ATOMIG)
    p_explicit, p_implicit = count_barriers(ported)
    assert (p_explicit, p_implicit) == (
        report.ported_explicit_barriers, report.ported_implicit_barriers
    )
    assert p_implicit >= 2  # the volatile store was strengthened
