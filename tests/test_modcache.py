"""Frontend module cache: digests, layering, corruption, env gating."""

import os
import pickle

import pytest

from repro import modcache
from repro.api import compile_source
from repro.ir.printer import print_module

SOURCE = """
int flag = 0;
int main() {
    flag = 1;
    return flag;
}
"""


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("ATOMIG_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ATOMIG_FRONTEND_CACHE", raising=False)
    modcache.clear_memory_cache()
    yield tmp_path
    modcache.clear_memory_cache()


def test_digest_stable_and_distinguishing():
    digest = modcache.source_digest(SOURCE, "m")
    assert digest == modcache.source_digest(SOURCE, "m")
    assert digest != modcache.source_digest(SOURCE + " ", "m")
    assert digest != modcache.source_digest(SOURCE, "other-name")


def test_disabled_by_default(isolated_cache):
    assert not modcache.cache_enabled()
    compile_source(SOURCE, "m")
    assert os.listdir(isolated_cache) == []


def test_env_enables_cache(isolated_cache, monkeypatch):
    monkeypatch.setenv("ATOMIG_FRONTEND_CACHE", "1")
    assert modcache.cache_enabled()
    compile_source(SOURCE, "m")
    assert len(os.listdir(isolated_cache)) == 1
    for off in ("", "0", "false"):
        monkeypatch.setenv("ATOMIG_FRONTEND_CACHE", off)
        assert not modcache.cache_enabled()


def test_hit_returns_equivalent_but_fresh_module():
    cold = compile_source(SOURCE, "m", cache=True)
    warm_one = compile_source(SOURCE, "m", cache=True)
    warm_two = compile_source(SOURCE, "m", cache=True)
    assert warm_one is not cold
    assert warm_one is not warm_two  # callers may mutate their copy
    assert print_module(warm_one) == print_module(cold)
    assert print_module(warm_two) == print_module(cold)


def test_disk_hit_without_memory_layer(isolated_cache):
    cold = compile_source(SOURCE, "m", cache=True)
    modcache.clear_memory_cache()  # simulate a new process
    warm = compile_source(SOURCE, "m", cache=True)
    assert print_module(warm) == print_module(cold)


def test_corrupt_entry_is_a_miss(isolated_cache):
    compile_source(SOURCE, "m", cache=True)
    digest = modcache.source_digest(SOURCE, "m")
    path = os.path.join(str(isolated_cache), f"{digest}.pkl")
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    modcache.clear_memory_cache()
    module = compile_source(SOURCE, "m", cache=True)  # recompiles
    assert print_module(module) == print_module(compile_source(SOURCE, "m"))
    assert not os.path.exists(path) or os.path.getsize(path) > 12


def test_truncated_pickle_is_a_miss(isolated_cache):
    cold = compile_source(SOURCE, "m", cache=True)
    digest = modcache.source_digest(SOURCE, "m")
    path = os.path.join(str(isolated_cache), f"{digest}.pkl")
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    modcache.clear_memory_cache()
    warm = compile_source(SOURCE, "m", cache=True)
    assert print_module(warm) == print_module(cold)


def test_load_miss_returns_none():
    assert modcache.load("no-such-digest") is None


def test_store_unpicklable_is_best_effort():
    assert modcache.store("deadbeef", lambda: None) is False
    assert modcache.load("deadbeef") is None


def test_store_survives_unwritable_directory(monkeypatch, tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory")
    monkeypatch.setenv("ATOMIG_CACHE_DIR", str(target))
    module = compile_source(SOURCE, "m", cache=True)
    assert module is not None
    # Memory layer still serves hits even though the disk write failed.
    digest = modcache.source_digest(SOURCE, "m")
    assert modcache.load(digest) is not None


def test_entries_are_plain_pickles(isolated_cache):
    compile_source(SOURCE, "m", cache=True)
    digest = modcache.source_digest(SOURCE, "m")
    path = os.path.join(str(isolated_cache), f"{digest}.pkl")
    with open(path, "rb") as handle:
        module = pickle.load(handle)
    assert "main" in module.functions


# -- size eviction (ATOMIG_CACHE_MAX_MB) ------------------------------------


def _fill(isolated_cache, count):
    """Store ``count`` distinct entries; returns their digests in order."""
    digests = []
    for i in range(count):
        source = SOURCE + f"\n// variant {i}\n"
        compile_source(source, "m", cache=True)
        digests.append(modcache.source_digest(source, "m"))
    return digests


def test_cache_max_bytes_parsing(monkeypatch):
    monkeypatch.delenv("ATOMIG_CACHE_MAX_MB", raising=False)
    assert modcache.cache_max_bytes() is None
    monkeypatch.setenv("ATOMIG_CACHE_MAX_MB", "2")
    assert modcache.cache_max_bytes() == 2 * 1024 * 1024
    monkeypatch.setenv("ATOMIG_CACHE_MAX_MB", "0.5")
    assert modcache.cache_max_bytes() == 512 * 1024
    for bogus in ("", "nan-ish", "-3", "0"):
        monkeypatch.setenv("ATOMIG_CACHE_MAX_MB", bogus)
        assert modcache.cache_max_bytes() is None


def test_evict_noop_when_unbounded(isolated_cache, monkeypatch):
    monkeypatch.delenv("ATOMIG_CACHE_MAX_MB", raising=False)
    _fill(isolated_cache, 3)
    assert modcache.evict() == 0
    assert len(list(isolated_cache.glob("*.pkl"))) == 3


def test_evict_drops_oldest_first(isolated_cache):
    digests = _fill(isolated_cache, 4)
    paths = [os.path.join(str(isolated_cache), f"{d}.pkl")
             for d in digests]
    # Make mtimes deterministic: digests[0] oldest .. digests[3] newest.
    for i, path in enumerate(paths):
        os.utime(path, (1000 + i, 1000 + i))
    keep = os.path.getsize(paths[2]) + os.path.getsize(paths[3])
    removed = modcache.evict(max_bytes=keep)
    assert removed == 2
    assert not os.path.exists(paths[0]) and not os.path.exists(paths[1])
    assert os.path.exists(paths[2]) and os.path.exists(paths[3])


def test_disk_hit_refreshes_mtime_for_lru(isolated_cache):
    digests = _fill(isolated_cache, 2)
    paths = [os.path.join(str(isolated_cache), f"{d}.pkl")
             for d in digests]
    for i, path in enumerate(paths):
        os.utime(path, (1000 + i, 1000 + i))
    modcache.clear_memory_cache()
    assert modcache.load(digests[0]) is not None  # touch the older entry
    removed = modcache.evict(max_bytes=os.path.getsize(paths[0]))
    assert removed == 1
    # The freshly-used entry survived; the untouched one was evicted.
    assert os.path.exists(paths[0])
    assert not os.path.exists(paths[1])


def test_store_evicts_when_env_set(isolated_cache, monkeypatch):
    monkeypatch.setenv("ATOMIG_CACHE_MAX_MB", "0.0001")  # ~105 bytes
    _fill(isolated_cache, 3)
    # Every entry is bigger than the budget, so at most one remains
    # (the one just written is eligible too — budget is a hard cap).
    assert len(list(isolated_cache.glob("*.pkl"))) <= 1
