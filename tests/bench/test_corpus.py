"""Tests for the benchmark corpus: every source compiles and behaves."""

import pytest

from repro.api import compile_source, port_module, run_module
from repro.bench.corpus import BENCHMARKS, get_benchmark
from repro.core.config import PortingLevel
from repro.ir.verifier import verify_module

ALL_NAMES = sorted(BENCHMARKS)
MC_NAMES = [n for n in ALL_NAMES if BENCHMARKS[n].mc_source is not None]
PERF_NAMES = [n for n in ALL_NAMES if BENCHMARKS[n].perf_source is not None]
EXPERT_NAMES = [n for n in ALL_NAMES if BENCHMARKS[n].expert_source is not None]


@pytest.mark.parametrize("name", MC_NAMES)
def test_mc_sources_compile(name):
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    assert verify_module(module)
    assert "main" in module.functions


@pytest.mark.parametrize("name", PERF_NAMES)
def test_perf_sources_compile_and_run(name):
    module = compile_source(BENCHMARKS[name].perf_source(), name)
    assert verify_module(module)
    result = run_module(module)
    assert result.stats.instructions > 0


@pytest.mark.parametrize("name", EXPERT_NAMES)
def test_expert_sources_compile_and_run(name):
    module = compile_source(BENCHMARKS[name].expert_source(), name)
    result = run_module(module)
    assert result.stats.fences > 0  # expert ports use explicit barriers


@pytest.mark.parametrize("name", PERF_NAMES)
def test_perf_sources_survive_every_porter(name):
    module = compile_source(BENCHMARKS[name].perf_source(), name)
    for level in (PortingLevel.ATOMIG, PortingLevel.NAIVE,
                  PortingLevel.LASAGNE):
        ported, _report = port_module(module, level)
        result = run_module(ported)
        # Porting must never change the architectural result.
        baseline = run_module(module)
        assert result.exit_value == baseline.exit_value, (
            f"{name} under {level.value}"
        )


def test_registry_lookup():
    benchmark = get_benchmark("ck_ring")
    assert benchmark.name == "ck_ring"
    assert "ck" in benchmark.tags
    with pytest.raises(KeyError):
        get_benchmark("no_such_benchmark")


def test_table5_paper_numbers_present():
    for name in ALL_NAMES:
        benchmark = BENCHMARKS[name]
        if "table5" in benchmark.tags or "table6" in benchmark.tags:
            assert benchmark.paper_naive is not None
            assert benchmark.paper_atomig is not None


def test_ck_benchmarks_have_expert_ports():
    for name in ALL_NAMES:
        if "ck" in BENCHMARKS[name].tags:
            assert BENCHMARKS[name].expert_source is not None
