"""Tests for the synthetic codebase generator."""

import pytest

from repro.api import compile_source, port_module, run_module
from repro.bench.synth import PAPER_TABLE3, SyntheticCodebase, generate_codebase
from repro.core.config import PortingLevel
from repro.ir.verifier import verify_module


def test_generation_is_deterministic():
    a = generate_codebase("memcached", scale=100, seed=3)
    b = generate_codebase("memcached", scale=100, seed=3)
    assert a == b


def test_different_seeds_differ():
    a = generate_codebase("memcached", scale=100, seed=1)
    b = generate_codebase("memcached", scale=100, seed=2)
    assert a != b


@pytest.mark.parametrize("app", sorted(PAPER_TABLE3))
def test_generated_codebases_compile(app):
    source = generate_codebase(app, scale=400)
    module = compile_source(source, app)
    assert verify_module(module)


def test_generated_main_runs():
    source = generate_codebase("memcached", scale=200)
    module = compile_source(source, "memcached")
    result = run_module(module)
    assert result.stats.instructions > 0


def test_density_targets_scale():
    generator = SyntheticCodebase(PAPER_TABLE3["mariadb"], scale=100)
    assert generator.n_spinloops == 128
    assert generator.n_optiloops == 19
    assert generator.target_sloc >= 30_000


def test_minimums_enforced_for_tiny_profiles():
    generator = SyntheticCodebase(PAPER_TABLE3["memcached"], scale=1000)
    assert generator.n_spinloops >= 1
    assert generator.n_optiloops >= 1
    # Memcached has 2 explicit barriers; the scaled value keeps >= 1.
    assert generator.n_explicit == 1
    # And 0 implicit ones: zero stays zero.
    assert generator.n_implicit == 0


def test_detection_matches_seeded_patterns():
    source = generate_codebase("leveldb", scale=100)
    module = compile_source(source, "leveldb")
    _ported, report = port_module(module, PortingLevel.ATOMIG)
    profile = PAPER_TABLE3["leveldb"]
    assert report.num_spinloops >= max(profile.spinloops // 100, 1)
    assert report.num_optimistic_loops >= max(profile.optiloops // 100, 1)


def test_paper_profile_data_integrity():
    for name, profile in PAPER_TABLE3.items():
        assert profile.sloc > 0
        assert profile.atomig_seconds > profile.build_seconds
        assert profile.naive_implicit > profile.atomig_implicit
        assert profile.atomig_explicit >= profile.orig_explicit
