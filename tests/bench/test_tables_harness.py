"""Smoke tests for the table harnesses (fast, reduced configurations)."""

from repro.bench.tables import (
    LINT_BENCHMARKS,
    PERF_SEEDS,
    TABLE2_PAPER,
    format_table,
    table1,
    table4,
    table5,
    table_lint,
)


def test_table1_static_rows():
    rows = table1()
    assert len(rows) == 8
    assert {row["approach"] for row in rows} >= {"Naive", "AtoMig", "Lasagne"}


def test_table2_paper_reference_shape():
    assert set(TABLE2_PAPER) == {
        "ck_ring", "ck_spinlock_cas", "ck_spinlock_mcs",
        "ck_sequence", "lf_hash",
    }
    for verdicts in TABLE2_PAPER.values():
        assert verdicts[0] is False  # no original verifies
        assert verdicts[3] is True  # AtoMig always does


def test_table4_runs_quickly_at_small_size():
    rows = table4(requests=20)
    by_counter = {row["counter"]: row for row in rows}
    assert by_counter["atomic loads"]["original"] == 0
    assert by_counter["atomic loads"]["atomig"] > 0


def test_table5_single_benchmark_subset():
    rows = table5(benchmarks=("message_passing",), seeds=(0,))
    assert len(rows) == 1
    row = rows[0]
    assert row["benchmark"] == "message_passing"
    assert row["naive"] > 0 and row["atomig"] > 0
    assert row["atomig"] <= row["naive"] + 0.10


def test_table_lint_single_benchmark_subset():
    assert "ck_spinlock_cas_legacy" in LINT_BENCHMARKS
    rows = table_lint(benchmarks=("ck_spinlock_cas_legacy",))
    assert len(rows) == 1
    row = rows[0]
    assert row["pruned"] > 0
    assert row["pruned_impl"] < row["atomig_impl"]
    assert row["wmm_ok"] is True


def test_format_table_alignment_and_values():
    rows = [
        {"name": "a", "ratio": 1.2345, "ok": True},
        {"name": "longer", "ratio": 10.0, "ok": False},
    ]
    text = format_table(rows, ["name", "ratio", "ok"], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.23" in text and "10.00" in text
    assert "yes" in text and "no" in text
    # All rows align to the same width.
    assert len(set(len(line) for line in lines[1:])) <= 2


def test_format_table_skips_paper_columns_by_default():
    rows = [{"benchmark": "x", "naive": 1.0, "paper_naive": 2.0}]
    text = format_table(rows)
    assert "paper_naive" not in text


def test_format_table_empty():
    assert format_table([]) == "(empty)"


def test_perf_seeds_are_plural():
    assert len(PERF_SEEDS) >= 2  # averaging is part of the method
