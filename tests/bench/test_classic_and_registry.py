"""Registry coverage for the extended corpus entries."""

import pytest

from repro.api import compile_source
from repro.bench.corpus import BENCHMARKS
from repro.ir.verifier import verify_module


def test_extended_entries_registered():
    for name in ("treiber_stack", "dpdk_ring", "peterson"):
        assert name in BENCHMARKS
        assert "extended" in BENCHMARKS[name].tags


@pytest.mark.parametrize("name", ("treiber_stack", "dpdk_ring", "peterson"))
def test_extended_mc_sources_compile(name):
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    assert verify_module(module)


def test_descriptions_are_informative():
    for benchmark in BENCHMARKS.values():
        assert benchmark.description
        assert len(benchmark.description) > 10


def test_tags_partition_the_suite():
    table5 = {n for n, b in BENCHMARKS.items() if "table5" in b.tags}
    table6 = {n for n, b in BENCHMARKS.items() if "table6" in b.tags}
    assert len(table5) == 12  # the paper's Table 5 rows
    assert len(table6) == 5  # the Phoenix kernels
    assert not table5 & table6
