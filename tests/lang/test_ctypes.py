"""Unit tests for the Mini-C type system."""

import pytest

from repro.errors import SemanticError
from repro.lang.ctypes import (
    INT,
    VOID,
    ArrayType,
    IntType,
    PointerType,
    StructType,
    is_assignable,
    pointer_to,
)


def test_scalar_sizes():
    assert INT.size == 1
    assert PointerType(INT).size == 1
    assert VOID.size == 0


def test_array_size():
    assert ArrayType(INT, 10).size == 10
    assert ArrayType(ArrayType(INT, 3), 2).size == 6


def test_struct_size_and_offsets():
    struct = StructType("s")
    struct.define([("a", INT), ("b", ArrayType(INT, 4)), ("c", PointerType(INT))])
    assert struct.size == 6
    assert struct.field_offset("a") == 0
    assert struct.field_offset("b") == 1
    assert struct.field_offset("c") == 5
    assert struct.field_index("c") == 2
    assert struct.field_type("b") == ArrayType(INT, 4)


def test_struct_redefinition_rejected():
    struct = StructType("s")
    struct.define([("a", INT)])
    with pytest.raises(SemanticError):
        struct.define([("b", INT)])


def test_struct_unknown_field_rejected():
    struct = StructType("s")
    struct.define([("a", INT)])
    with pytest.raises(SemanticError):
        struct.field_offset("zzz")


def test_type_equality_is_structural():
    assert IntType() == IntType("long")
    assert PointerType(INT) == PointerType(IntType())
    assert ArrayType(INT, 3) == ArrayType(INT, 3)
    assert ArrayType(INT, 3) != ArrayType(INT, 4)


def test_struct_equality_by_name():
    a, b = StructType("n"), StructType("n")
    assert a == b
    assert StructType("n") != StructType("m")


def test_types_are_hashable():
    assert len({INT, PointerType(INT), ArrayType(INT, 2), StructType("x")}) == 4


def test_assignability_int_pointer():
    assert is_assignable(INT, PointerType(INT))
    assert is_assignable(PointerType(INT), INT)
    assert is_assignable(PointerType(INT), PointerType(VOID))


def test_assignability_rejects_aggregates():
    struct = StructType("s")
    struct.define([("a", INT)])
    assert not is_assignable(struct, INT)
    assert not is_assignable(ArrayType(INT, 2), INT)


def test_is_scalar_classification():
    assert INT.is_scalar()
    assert pointer_to(INT).is_scalar()
    assert not ArrayType(INT, 2).is_scalar()
    assert not VOID.is_scalar()
    struct = StructType("s")
    assert not struct.is_scalar()


def test_pointer_classification():
    assert pointer_to(INT).is_pointer()
    assert not INT.is_pointer()
    assert VOID.is_void()
