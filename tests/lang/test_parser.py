"""Unit tests for the Mini-C parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def test_empty_program():
    program = parse("")
    assert program.structs == []
    assert program.globals == []
    assert program.functions == []


def test_global_scalar_with_init():
    program = parse("int x = 5;")
    decl = program.globals[0]
    assert decl.name == "x"
    assert isinstance(decl.init, ast.IntLiteral)
    assert decl.init.value == 5


def test_multiple_globals_one_declaration():
    program = parse("int a, b = 2, *c;")
    names = [g.name for g in program.globals]
    assert names == ["a", "b", "c"]
    assert program.globals[2].type_spec.pointer_depth == 1


def test_global_array_with_dims():
    program = parse("int grid[4][8];")
    assert program.globals[0].type_spec.array_dims == [4, 8]


def test_global_array_initializer():
    program = parse("int a[3] = {1, 2, 3};")
    assert [item.value for item in program.globals[0].init] == [1, 2, 3]


def test_volatile_and_atomic_qualifiers():
    program = parse("volatile int v; _Atomic int a;")
    assert program.globals[0].volatile
    assert program.globals[1].atomic


def test_struct_definition():
    program = parse("struct node { int key; struct node *next; };")
    sdef = program.structs[0]
    assert sdef.name == "node"
    assert [f[0] for f in sdef.fields] == ["key", "next"]
    assert sdef.fields[1][1].pointer_depth == 1


def test_struct_multiple_fields_per_line():
    program = parse("struct pair { int a, b; };")
    assert [f[0] for f in program.structs[0].fields] == ["a", "b"]


def test_enum_definition():
    program = parse("enum { A, B = 10, C };")
    assert program.enums[0].members == [("A", 0), ("B", 10), ("C", 11)]


def test_function_with_params():
    program = parse("int add(int a, int b) { return a + b; }")
    fn = program.functions[0]
    assert fn.name == "add"
    assert [p.name for p in fn.params] == ["a", "b"]


def test_function_void_param_list():
    program = parse("int f(void) { return 0; }")
    assert program.functions[0].params == []


def test_forward_declaration_is_skipped():
    program = parse("int f(int x);\nint f(int x) { return x; }")
    assert len(program.functions) == 1


def test_array_parameter_decays():
    program = parse("int f(int a[]) { return a[0]; }")
    assert program.functions[0].params[0].type_spec.pointer_depth == 1


def test_if_else_chain():
    program = parse("""
int f(int x) {
    if (x > 0) { return 1; } else if (x < 0) { return -1; }
    return 0;
}
""")
    body = program.functions[0].body.statements
    assert isinstance(body[0], ast.If)
    assert isinstance(body[0].else_body, ast.If)


def test_while_and_do_while():
    program = parse("""
void f() {
    while (1) { break; }
    do { continue; } while (0);
}
""")
    statements = program.functions[0].body.statements
    assert isinstance(statements[0], ast.While)
    assert isinstance(statements[1], ast.DoWhile)


def test_for_with_declaration_init():
    program = parse("void f() { for (int i = 0; i < 4; i++) { } }")
    loop = program.functions[0].body.statements[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.LocalDecl)


def test_for_with_empty_clauses():
    program = parse("void f() { for (;;) { break; } }")
    loop = program.functions[0].body.statements[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_goto_and_label():
    program = parse("void f() { goto out; out: return; }")
    statements = program.functions[0].body.statements
    assert isinstance(statements[0], ast.Goto)
    assert isinstance(statements[1], ast.Label)


def test_inline_asm_statement():
    program = parse('void f() { __asm__("mfence"); }')
    asm = program.functions[0].body.statements[0]
    assert isinstance(asm, ast.InlineAsm)
    assert asm.template == "mfence"


def test_inline_asm_with_clobbers():
    program = parse('void f() { __asm__ volatile ("" ::: "memory"); }')
    assert isinstance(program.functions[0].body.statements[0], ast.InlineAsm)


def test_operator_precedence():
    program = parse("int f() { return 1 + 2 * 3; }")
    expr = program.functions[0].body.statements[0].value
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_comparison_binds_tighter_than_logical():
    program = parse("int f(int a, int b) { return a < 1 && b > 2; }")
    expr = program.functions[0].body.statements[0].value
    assert expr.op == "&&"
    assert expr.left.op == "<"


def test_ternary_expression():
    program = parse("int f(int x) { return x ? 1 : 2; }")
    expr = program.functions[0].body.statements[0].value
    assert isinstance(expr, ast.Conditional)


def test_compound_assignment():
    program = parse("void f(int x) { x += 3; }")
    expr = program.functions[0].body.statements[0].expr
    assert isinstance(expr, ast.Assign)
    assert expr.op == "+"


def test_postfix_and_prefix_incdec():
    program = parse("void f(int x) { x++; ++x; }")
    statements = program.functions[0].body.statements
    assert statements[0].expr.postfix is True
    assert statements[1].expr.postfix is False


def test_member_and_arrow_access():
    program = parse("""
struct s { int f; };
void g(struct s *p, struct s v) { p->f = v.f; }
""")
    assign = program.functions[0].body.statements[0].expr
    assert assign.target.arrow is True
    assert assign.value.arrow is False


def test_cast_expression():
    program = parse("struct n { int x; };\nvoid f(int p) { struct n *q = (struct n *)p; }")
    decl = program.functions[0].body.statements[0]
    assert isinstance(decl.init, ast.Cast)


def test_sizeof_type():
    program = parse("struct n { int a; int b; };\nint f() { return sizeof(struct n); }")
    expr = program.functions[0].body.statements[0].value
    assert isinstance(expr, ast.SizeOf)


def test_address_of_and_deref():
    program = parse("void f(int x) { int *p = &x; *p = 1; }")
    statements = program.functions[0].body.statements
    assert statements[0].init.op == "&"
    assert statements[1].expr.target.op == "*"


def test_call_with_arguments():
    program = parse("int g(int a) { return a; }\nint f() { return g(3); }")
    call = program.functions[1].body.statements[0].value
    assert isinstance(call, ast.Call)
    assert call.name == "g"


def test_typedef_alias():
    program = parse("typedef int u32;\nu32 x = 1;")
    assert program.globals[0].name == "x"


def test_typedef_pointer_alias():
    program = parse("struct n { int v; };\ntypedef struct n *nodep;\nnodep head;")
    assert program.globals[0].type_spec.pointer_depth == 1


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("int x = 5")


def test_unbalanced_brace_raises():
    with pytest.raises(ParseError):
        parse("void f() { if (1) {")


def test_garbage_expression_raises():
    with pytest.raises(ParseError):
        parse("void f() { return +; }")


def test_null_literal():
    program = parse("struct n { int v; };\nstruct n *p = NULL;")
    assert isinstance(program.globals[0].init, ast.NullLiteral)


def test_comma_expression():
    program = parse("void f(int a, int b) { a = 1, b = 2; }")
    expr = program.functions[0].body.statements[0].expr
    assert isinstance(expr, ast.Binary) and expr.op == ","
