"""Unit tests for the Mini-C lexer."""

import pytest

from repro.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as T


def kinds(source):
    return [token.kind for token in tokenize(source)][:-1]  # drop EOF


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is T.EOF


def test_identifiers_and_keywords():
    assert kinds("int foo") == [T.KW_INT, T.IDENT]
    assert kinds("while_x while") == [T.IDENT, T.KW_WHILE]
    assert kinds("_Atomic volatile") == [T.KW_ATOMIC, T.KW_VOLATILE]


def test_decimal_literal():
    token = tokenize("12345")[0]
    assert token.kind is T.INT_LIT
    assert token.value == 12345


def test_hex_literal():
    assert tokenize("0xFF")[0].value == 255
    assert tokenize("0x10")[0].value == 16


def test_octal_literal():
    assert tokenize("0755")[0].value == 0o755


def test_zero_is_not_octal_prefix_only():
    assert tokenize("0")[0].value == 0


def test_integer_suffixes_are_swallowed():
    assert tokenize("10UL")[0].value == 10
    assert tokenize("7LL")[0].value == 7


def test_char_literal():
    assert tokenize("'a'")[0].value == ord("a")
    assert tokenize("'\\n'")[0].value == ord("\n")


def test_string_literal_with_escapes():
    token = tokenize('"a\\tb"')[0]
    assert token.kind is T.STRING_LIT
    assert token.value == "a\tb"


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize('"abc')


def test_line_comment_is_skipped():
    assert kinds("1 // comment\n2") == [T.INT_LIT, T.INT_LIT]


def test_block_comment_is_skipped():
    assert kinds("1 /* x\ny */ 2") == [T.INT_LIT, T.INT_LIT]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("/* never closed")


def test_preprocessor_lines_are_skipped():
    assert kinds("#define FOO 1\nint") == [T.KW_INT]


def test_multichar_operators_match_greedily():
    assert kinds("a <<= b") == [T.IDENT, T.SHL_ASSIGN, T.IDENT]
    assert kinds("a << b") == [T.IDENT, T.SHL, T.IDENT]
    assert kinds("a->b") == [T.IDENT, T.ARROW, T.IDENT]
    assert kinds("a - >b") == [T.IDENT, T.MINUS, T.GT, T.IDENT]
    assert kinds("x++ + ++y") == [
        T.IDENT, T.PLUS_PLUS, T.PLUS, T.PLUS_PLUS, T.IDENT,
    ]


def test_positions_are_tracked():
    tokens = tokenize("int\n  foo")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexerError) as excinfo:
        tokenize("int $")
    assert excinfo.value.line == 1


def test_all_comparison_operators():
    assert kinds("== != <= >= < >") == [
        T.EQ, T.NE, T.LE, T.GE, T.LT, T.GT,
    ]


def test_logical_operators():
    assert kinds("&& || ! & |") == [
        T.AND_AND, T.OR_OR, T.BANG, T.AMP, T.PIPE,
    ]
