"""Unit tests for semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.lang.ctypes import IntType, PointerType, StructType
from repro.lang.parser import parse
from repro.lang.sema import analyze


def check(source):
    return analyze(parse(source))


def test_undeclared_identifier_rejected():
    with pytest.raises(SemanticError):
        check("int f() { return y; }")


def test_duplicate_global_rejected():
    with pytest.raises(SemanticError):
        check("int x; int x;")


def test_duplicate_function_rejected():
    with pytest.raises(SemanticError):
        check("void f() { } void f() { }")


def test_duplicate_struct_rejected():
    with pytest.raises(SemanticError):
        check("struct s { int a; };\nstruct s { int b; };")


def test_shadowing_builtin_rejected():
    with pytest.raises(SemanticError):
        check("int malloc(int n) { return n; }")


def test_local_shadowing_in_nested_scope_allowed():
    program = check("int x;\nvoid f() { int x = 1; { int y = x; } }")
    assert program is not None


def test_redeclaration_in_same_scope_rejected():
    with pytest.raises(SemanticError):
        check("void f() { int x; int x; }")


def test_expression_types_annotated():
    program = check("int g;\nint f() { return g + 1; }")
    ret = program.functions[0].body.statements[0]
    assert isinstance(ret.value.ctype, IntType)


def test_pointer_deref_type():
    program = check("void f(int *p) { int x = *p; }")
    decl = program.functions[0].body.statements[0]
    assert isinstance(decl.init.ctype, IntType)


def test_deref_non_pointer_rejected():
    with pytest.raises(SemanticError):
        check("void f(int x) { int y = *x; }")


def test_deref_void_pointer_rejected():
    with pytest.raises(SemanticError):
        check("void f(void *p) { int x = *p; }")


def test_member_access_resolves_struct():
    program = check("""
struct node { int key; struct node *next; };
int f(struct node *n) { return n->next->key; }
""")
    ret = program.functions[0].body.statements[0]
    assert isinstance(ret.value.ctype, IntType)


def test_member_on_non_struct_rejected():
    with pytest.raises(SemanticError):
        check("void f(int x) { int y = x.field; }")


def test_unknown_field_rejected():
    with pytest.raises(SemanticError):
        check("struct s { int a; };\nint f(struct s *p) { return p->b; }")


def test_incomplete_struct_member_rejected():
    with pytest.raises(SemanticError):
        check("struct s *g;\nint f() { return g->a; }")


def test_arrow_requires_pointer():
    with pytest.raises(SemanticError):
        check("struct s { int a; };\nstruct s v;\nint f() { return v->a; }")


def test_enum_constants_resolve():
    program = check("enum { READY = 3 };\nint f() { return READY; }")
    ret = program.functions[0].body.statements[0]
    assert ret.value.binding == "enum"
    assert ret.value.enum_value == 3


def test_memory_order_constants_available():
    program = check("""
_Atomic int x;
int f() { return atomic_load_explicit(&x, memory_order_acquire); }
""")
    assert program is not None


def test_return_value_from_void_rejected():
    with pytest.raises(SemanticError):
        check("void f() { return 1; }")


def test_missing_return_value_rejected():
    with pytest.raises(SemanticError):
        check("int f() { return; }")


def test_break_outside_loop_rejected():
    with pytest.raises(SemanticError):
        check("void f() { break; }")


def test_continue_outside_loop_rejected():
    with pytest.raises(SemanticError):
        check("void f() { continue; }")


def test_call_arity_checked():
    with pytest.raises(SemanticError):
        check("int g(int a) { return a; }\nint f() { return g(); }")


def test_call_to_undefined_function_rejected():
    with pytest.raises(SemanticError):
        check("int f() { return missing(1); }")


def test_builtin_arity_checked():
    with pytest.raises(SemanticError):
        check("int x;\nvoid f() { atomic_store(&x); }")


def test_atomic_builtin_requires_pointer():
    with pytest.raises(SemanticError):
        check("int x;\nvoid f() { atomic_store(x, 1); }")


def test_thread_create_requires_function_name():
    with pytest.raises(SemanticError):
        check("int f() { return thread_create(42); }")


def test_thread_create_accepts_function():
    program = check("void w() { }\nint f() { return thread_create(w); }")
    assert program is not None


def test_assignment_to_rvalue_rejected():
    with pytest.raises(SemanticError):
        check("void f() { 1 = 2; }")


def test_assignment_to_enum_rejected():
    with pytest.raises(SemanticError):
        check("enum { K = 1 };\nvoid f() { K = 2; }")


def test_int_pointer_interchange_allowed():
    program = check("int *p;\nint f() { int x = p; return x; }")
    assert program is not None


def test_void_global_rejected():
    with pytest.raises(SemanticError):
        check("void g;")


def test_struct_field_offsets():
    program = check("struct s { int a; int b[4]; int c; };\nstruct s v;")
    struct = program.struct_types["s"]
    assert struct.field_offset("a") == 0
    assert struct.field_offset("b") == 1
    assert struct.field_offset("c") == 5
    assert struct.size == 6


def test_recursive_struct_size():
    program = check("struct n { int v; struct n *next; };\nstruct n x;")
    assert program.struct_types["n"].size == 2


def test_global_initializer_must_be_constant():
    with pytest.raises(SemanticError):
        check("int a;\nint b = a;")


def test_global_initializer_enum_ok():
    program = check("enum { N = 4 };\nint b = N;")
    assert program is not None


def test_too_many_array_initializers_rejected():
    with pytest.raises(SemanticError):
        check("int a[2] = {1, 2, 3};")
