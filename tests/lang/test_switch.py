"""Tests for switch/case/default across parser, sema, lowering and VM."""

import pytest

from repro.api import compile_source
from repro.errors import SemanticError
from repro.vm.interp import run_module


def run(source):
    return run_module(compile_source(source))


def test_basic_dispatch():
    source = """
int classify(int x) {
    switch (x) {
    case 1:
        return 10;
    case 2:
        return 20;
    default:
        return -1;
    }
}
int main() {
    print(classify(1));
    print(classify(2));
    print(classify(9));
    return 0;
}
"""
    assert run(source).output == [10, 20, -1]


def test_fallthrough_semantics():
    source = """
int main() {
    int hits = 0;
    switch (2) {
    case 1:
        hits = hits + 1;
    case 2:
        hits = hits + 10;
    case 3:
        hits = hits + 100;
        break;
    case 4:
        hits = hits + 1000;
    }
    return hits;
}
"""
    assert run(source).exit_value == 110  # cases 2 and 3 run, 4 skipped


def test_break_exits_switch_only():
    source = """
int main() {
    int total = 0;
    for (int i = 0; i < 4; i++) {
        switch (i) {
        case 0:
            break;
        case 1:
            total = total + 1;
            break;
        default:
            total = total + 10;
        }
    }
    return total;
}
"""
    assert run(source).exit_value == 21  # i=1 -> +1, i=2,3 -> +10 each


def test_continue_inside_switch_targets_loop():
    source = """
int main() {
    int total = 0;
    for (int i = 0; i < 5; i++) {
        switch (i % 2) {
        case 0:
            continue;
        }
        total = total + i;
    }
    return total;
}
"""
    assert run(source).exit_value == 4  # 1 + 3


def test_no_default_falls_to_end():
    source = """
int main() {
    int x = 0;
    switch (42) {
    case 1:
        x = 1;
        break;
    }
    return x;
}
"""
    assert run(source).exit_value == 0


def test_enum_case_labels():
    source = """
enum { RED = 1, GREEN = 2, BLUE = 3 };
int main() {
    switch (GREEN) {
    case RED:
        return 100;
    case GREEN:
        return 200;
    case BLUE:
        return 300;
    }
    return 0;
}
"""
    assert run(source).exit_value == 200


def test_negative_case_labels():
    source = """
int main() {
    switch (0 - 3) {
    case -3:
        return 33;
    }
    return 0;
}
"""
    assert run(source).exit_value == 33


def test_default_in_middle():
    source = """
int main() {
    switch (9) {
    case 1:
        return 1;
    default:
        return 5;
    case 2:
        return 2;
    }
}
"""
    assert run(source).exit_value == 5


def test_duplicate_case_rejected():
    with pytest.raises(SemanticError, match="duplicate case"):
        compile_source("""
int main() {
    switch (1) {
    case 1:
        break;
    case 1:
        break;
    }
    return 0;
}
""")


def test_duplicate_default_rejected():
    with pytest.raises(SemanticError, match="duplicate default"):
        compile_source("""
int main() {
    switch (1) {
    default:
        break;
    default:
        break;
    }
    return 0;
}
""")


def test_break_outside_breakable_rejected():
    with pytest.raises(SemanticError, match="break outside"):
        compile_source("int main() { break; return 0; }")


def test_continue_not_allowed_by_switch_alone():
    with pytest.raises(SemanticError, match="continue outside"):
        compile_source("""
int main() {
    switch (1) {
    case 1:
        continue;
    }
    return 0;
}
""")


def test_switch_in_ported_module_verifies():
    from repro.api import check_module, port_module
    from repro.core.config import PortingLevel

    source = """
int command = 0;
int done = 0;

void controller() {
    command = 2;
    done = 1;
}

int main() {
    int t = thread_create(controller);
    while (done == 0) { }
    int result;
    switch (command) {
    case 1:
        result = 10;
        break;
    case 2:
        result = 20;
        break;
    default:
        result = 0;
    }
    assert(result == 20);
    thread_join(t);
    return result;
}
"""
    module = compile_source(source)
    assert not check_module(module, model="wmm", max_steps=500).ok
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    assert check_module(ported, model="wmm", max_steps=500).ok
