"""Oracle hardening tests: cache keys and the robustness fast path."""

import pytest

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.ir.instructions import MemoryOrder, Store
from repro.ir.printer import print_module
from repro.opt import Oracle, optimize_module

TAS_SPINLOCK = """
int lock = 0;
int shared_data = 0;

void worker() {
    while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
    shared_data = shared_data + 1;
    lock = 0;
}

void thread_fn() {
    worker();
}

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    assert(shared_data == 2);
    return 0;
}
"""


def _ported(source=TAS_SPINLOCK, name="tas"):
    module = compile_source(source, name)
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    return ported


def _release_store_candidate(ported):
    """A genuinely different candidate that stays robust.

    Demoting SC stores to release is exactly the optimizer's first
    ladder step; release stores still publish the lock word, so the
    safe-lock pruning keeps the module robust.
    """
    candidate = ported.clone()
    for instr in candidate.instructions():
        if isinstance(instr, Store) and instr.order is MemoryOrder.SEQ_CST:
            instr.order = MemoryOrder.RELEASE
    return candidate


# -- cache-key hardening ---------------------------------------------------


def test_digest_keys_on_every_configuration_parameter():
    """Two oracles differing in any verdict-relevant knob must never
    share verdicts.  Backend knobs (``reduce``/``por``/``macro``/
    ``engine``) are deliberately NOT keyed: every backend is
    verdict-identical by the gated identity contract, so their
    verdicts are interchangeable cache entries."""
    text = print_module(_ported())
    base = dict(model="wmm", entry="main", max_steps=2500,
                max_states=400_000, reduce=True)
    reference = Oracle(**base)._digest(text)
    variants = [
        {"model": "tso"},
        {"entry": "worker"},
        {"max_steps": 1000},
        {"max_states": 50_000},
    ]
    for override in variants:
        other = Oracle(**{**base, **override})._digest(text)
        assert other != reference, override
    for override in [{"reduce": False}, {"por": "dpor"},
                     {"macro": "off"}]:
        other = Oracle(**{**base, **override})._digest(text)
        assert other == reference, override


def test_digest_is_stable_for_identical_configuration():
    text = print_module(_ported())
    a = Oracle(model="wmm", entry="main")._digest(text)
    b = Oracle(model="wmm", entry="main")._digest(text)
    assert a == b


def test_digest_differs_across_module_texts():
    oracle = Oracle()
    ported = _ported()
    text = print_module(ported)
    assert oracle._digest(text) != oracle._digest(text + "\n")


def test_verdicts_do_not_leak_across_models():
    ported = _ported()
    wmm = Oracle(model="wmm", robustness=False)
    tso = Oracle(model="tso", robustness=False)
    wmm.establish(ported)
    tso.establish(ported)
    key_wmm = wmm._digest(print_module(ported))
    key_tso = tso._digest(print_module(ported))
    assert key_wmm != key_tso


# -- robustness fast path --------------------------------------------------


def test_fast_path_answers_without_exploration():
    ported = _ported()
    oracle = Oracle(model="wmm", robustness=True)
    oracle.establish(ported)
    assert oracle.baseline_robust
    checks_before = oracle.checks_run
    candidate = _release_store_candidate(ported)
    assert oracle.verdict(candidate) == oracle.baseline_outcome
    assert oracle.robustness_hits == 1
    assert oracle.checks_run == checks_before  # no exploration happened
    # The answer is cached: asking again is a cache hit, not a re-proof.
    robustness_checks = oracle.robustness_checks
    oracle.verdict(candidate)
    assert oracle.robustness_checks == robustness_checks
    assert oracle.cache_hits >= 1


def test_fast_path_disabled_when_requested():
    ported = _ported()
    oracle = Oracle(model="wmm", robustness=False)
    oracle.establish(ported)
    assert not oracle.baseline_robust
    assert oracle.robustness_checks == 0


def test_counters_report_states_saved():
    ported = _ported()
    oracle = Oracle(model="wmm", robustness=True)
    oracle.establish(ported)
    oracle.verdict(_release_store_candidate(ported))
    counters = oracle.counters()
    assert counters["robustness_hits"] == 1
    assert counters["robustness_states_saved"] == oracle.baseline_states
    assert counters["baseline_robust"] is True


def test_optimize_results_identical_with_and_without_fast_path():
    fast, fast_report = optimize_module(_ported(), robustness=True)
    slow, slow_report = optimize_module(_ported(), robustness=False)
    assert fast_report.verdict_preserved and slow_report.verdict_preserved
    assert fast_report.accesses_weakened == slow_report.accesses_weakened
    assert fast_report.fences_deleted == slow_report.fences_deleted
    assert fast_report.barrier_cost_after == slow_report.barrier_cost_after
    assert print_module(fast) == print_module(slow)
    assert fast_report.robustness_hits > 0
    assert slow_report.robustness_hits == 0
    assert fast_report.oracle_states < slow_report.oracle_states


def test_optimization_report_serializes_fast_path_counters():
    _optimized, report = optimize_module(_ported(), robustness=True)
    payload = report.to_dict()
    for key in ("robustness_checks", "robustness_hits",
                "robustness_states_saved", "baseline_robust"):
        assert key in payload
    assert payload["baseline_robust"] is True
