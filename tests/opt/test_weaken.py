"""End-to-end tests for oracle-guided barrier weakening."""

import pytest

from repro.api import check_module, compile_source, port_module
from repro.core.config import PortingLevel
from repro.ir.instructions import MemoryOrder
from repro.ir.verifier import verify_module
from repro.opt import Oracle, optimize_module
from repro.opt.candidates import enumerate_candidates
from repro.vm.costs import CostModel

SPINLOCK = """
int lock = 0;
int shared_data = 0;

void worker() {
    while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
    shared_data = shared_data + 1;
    lock = 0;
}

void thread_fn() {
    worker();
}

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    assert(shared_data == 2);
    return 0;
}
"""

MESSAGE_PASSING = """
int data = 0;
int flag = 0;

void producer() {
    data = 1;
    flag = 1;
}

int main() {
    int t = thread_create(producer);
    while (flag == 0) { }
    assert(data == 1);
    thread_join(t);
    return 0;
}
"""


def _ported(source, name="m"):
    module = compile_source(source, name)
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    return ported


def test_spinlock_weakens_and_keeps_verdict():
    ported = _ported(SPINLOCK, "spinlock")
    optimized, report = optimize_module(ported)
    assert report.baseline_outcome == "ok"
    assert report.verdict_preserved
    assert report.cycles_saved > 0
    assert report.accesses_weakened > 0
    verify_module(optimized)
    # The oracle's word, independently re-checked.
    assert check_module(optimized, model="wmm", max_steps=2500).ok


def test_input_module_is_not_mutated():
    ported = _ported(SPINLOCK, "spinlock")
    before = [
        instr.order for instr in ported.instructions()
        if hasattr(instr, "order")
    ]
    optimize_module(ported)
    after = [
        instr.order for instr in ported.instructions()
        if hasattr(instr, "order")
    ]
    assert after == before


def test_weakening_is_actually_necessary_somewhere():
    """The ported MP shape must keep release/acquire on the flag."""
    ported = _ported(MESSAGE_PASSING, "mp")
    optimized, report = optimize_module(ported)
    assert report.verdict_preserved
    # Weakening everything to relaxed would break MP, so at least one
    # site keeps an ordering constraint (or froze at SC).
    keeping = [
        instr for instr in optimized.instructions()
        if getattr(instr, "order", None) in (
            MemoryOrder.ACQUIRE, MemoryOrder.RELEASE,
            MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST,
        )
    ]
    assert keeping or report.frozen


def test_buggy_module_verdict_preserved_as_violation():
    """A violating baseline stays violating — never 'fixed' silently."""
    module = compile_source("""
_Atomic int x = 0;
int main() {
    int t = thread_create(bump);
    bump();
    thread_join(t);
    assert(x == 1);
    return 0;
}

void bump() {
    atomic_fetch_add(&x, 1);
}
""", "buggy")
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    baseline = check_module(ported, model="wmm", max_steps=2500)
    assert not baseline.ok
    optimized, report = optimize_module(ported)
    assert report.baseline_outcome == "violation"
    assert report.final_outcome == "violation"
    assert report.verdict_preserved


def test_missing_entry_is_a_note_not_a_crash():
    module = compile_source("int helper() { return 1; }", "noentry")
    optimized, report = optimize_module(module, entry="main")
    assert report.notes
    assert report.candidates == 0
    assert not report.weakened


def test_report_attached_to_module_metadata():
    ported = _ported(SPINLOCK, "spinlock")
    optimized, report = optimize_module(ported)
    payload = optimized.metadata["optimization_report"]
    assert payload == report.to_dict()
    assert payload["verdict_preserved"]


def test_parallel_jobs_preserve_verdict_and_savings():
    ported = _ported(SPINLOCK, "spinlock")
    _serial, serial_report = optimize_module(ported, jobs=1)
    parallel, parallel_report = optimize_module(ported, jobs=2)
    assert parallel_report.verdict_preserved
    assert parallel_report.cycles_saved >= serial_report.cycles_saved
    assert check_module(parallel, model="wmm", max_steps=2500).ok


def test_oracle_caches_repeat_verdicts():
    ported = _ported(SPINLOCK, "spinlock")
    oracle = Oracle()
    oracle.establish(ported)
    checks = oracle.checks_run
    assert oracle.matches(ported)  # same digest as the baseline
    assert oracle.checks_run == checks
    assert oracle.cache_hits == 1


def test_oracle_budget_derived_from_baseline():
    ported = _ported(SPINLOCK, "spinlock")
    oracle = Oracle(max_states=400_000)
    result = oracle.establish(ported)
    assert oracle.budget >= result.states_explored
    assert oracle.budget <= 400_000


def test_pipeline_integration_attaches_optimization():
    module = compile_source(SPINLOCK, "spinlock")
    ported, report = port_module(
        module, PortingLevel.ATOMIG, optimize=True
    )
    assert report.optimization
    assert report.optimization["verdict_preserved"]
    assert report.to_dict()["optimization"] == report.optimization
    # The returned module is the weakened one.
    assert any(
        getattr(instr, "order", None) is MemoryOrder.RELAXED
        for instr in ported.instructions()
    )


def test_rounds_walk_the_full_ladder():
    """Multi-rung descent: stores reach RELAXED where certified."""
    ported = _ported(SPINLOCK, "spinlock")
    optimized, report = optimize_module(ported)
    relaxed_stores = [
        entry for entry in report.weakened
        if entry["kind"] == "store" and entry["after"] == "relaxed"
    ]
    assert report.rounds >= 2
    assert relaxed_stores or report.frozen
