"""Repair-seeded weakening: the optimizer starts from the minimal-
fence repaired module instead of the raw port.

A non-robust input normally forces the weakener's baseline check to
explore; with ``repair_seed=True`` the static repair runs first, the
baseline becomes robust, and the oracle answers its queries through
the robustness fast path — the repair evidence must land in
``report.repair`` and the saved exploration must be visible in the
counters.
"""

from repro.analysis.robustness import analyze_robustness
from repro.api import compile_source
from repro.mc.litmus import WEAKENED_LITMUS, weakened_source
from repro.opt import optimize_module
from repro.opt.parallel import OptimizeTask, run_optimize_tasks


def _relaxed_mp():
    _template, minimal, _too_weak = WEAKENED_LITMUS["MP"]
    overrides = {slot: "memory_order_relaxed" for slot in minimal}
    return compile_source(weakened_source("MP", overrides), "MP")


def test_repair_seed_repairs_then_weakens():
    optimized, report = optimize_module(
        _relaxed_mp(), model="wmm", require_marks=False, repair_seed=True,
    )
    assert report.repair, "repair evidence missing from the report"
    assert report.repair["robust_after"]
    assert report.baseline_robust
    assert report.verdict_preserved
    assert analyze_robustness(optimized, model="wmm").robust


def test_repair_seed_saves_exploration_on_non_robust_input():
    """A non-robust input with one over-strong access: the repair makes
    the baseline robust, then the oracle certifies the SC->acquire
    weakening through the fast path without exploring."""
    module = compile_source(weakened_source("MP", {
        "w_flag": "memory_order_relaxed",
        "r_flag": "memory_order_seq_cst",
    }), "MP")
    _optimized, seeded = optimize_module(
        module, model="wmm", require_marks=False, repair_seed=True,
    )
    assert seeded.baseline_robust
    assert seeded.weakened, "the over-strong load was not weakened"
    assert seeded.robustness_hits > 0
    assert seeded.robustness_states_saved > 0
    assert seeded.verdict_preserved


def test_repair_seed_noop_on_robust_input():
    module = compile_source(weakened_source("MP"), "MP")
    _optimized, report = optimize_module(
        module, model="wmm", require_marks=False, repair_seed=True,
    )
    assert report.repair["robust_after"]
    assert report.repair["rounds"] == []
    assert report.verdict_preserved


def test_optimize_task_carries_repair_seed_and_arch():
    _template, minimal, _too_weak = WEAKENED_LITMUS["MP"]
    overrides = {slot: "memory_order_relaxed" for slot in minimal}
    task = OptimizeTask(
        name="MP", source=weakened_source("MP", overrides), model="wmm",
        level=None, require_marks=False, repair_seed=True, arch="power",
    )
    (report,) = run_optimize_tasks([task], jobs=1)
    assert report["repair"]["robust_after"]
    assert report["repair"]["arch"] == "power"
    assert report["verdict_preserved"]
