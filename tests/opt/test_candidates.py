"""Unit tests for weakening-candidate enumeration and mutation."""

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.verifier import verify_module
from repro.opt.candidates import (
    DELETE,
    Candidate,
    RMW_LADDER,
    STORE_LADDER,
    apply_proposal,
    enumerate_candidates,
)
from repro.vm.costs import CostModel

SPINLOCK = """
int lock = 0;
int shared_data = 0;

void lock_acquire() {
    while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
}

void lock_release() {
    lock = 0;
}

int main() {
    lock_acquire();
    shared_data = shared_data + 1;
    lock_release();
    return shared_data;
}
"""


def _ported(source=SPINLOCK, name="m"):
    module = compile_source(source, name)
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    return ported


def test_only_marked_sc_accesses_are_candidates():
    ported = _ported()
    candidates = enumerate_candidates(ported, CostModel())
    assert candidates
    for candidate in candidates:
        if candidate.kind != "fence":
            assert candidate.original_order is MemoryOrder.SEQ_CST


def test_unmarked_sc_access_skipped_unless_requested():
    module = compile_source("""
_Atomic int x = 0;
int main() {
    atomic_store(&x, 1);
    return atomic_load(&x);
}
""", "hand")
    # "annotation" marks come from the _Atomic lowering, so strip them
    # to model a hand-written SC access with no porter provenance.
    for instr in module.functions["main"].instructions():
        instr.marks.clear()
    assert enumerate_candidates(module, CostModel()) == []
    relaxed = enumerate_candidates(
        module, CostModel(), require_marks=False
    )
    assert len(relaxed) == 2


def test_candidates_sorted_by_savings_desc():
    ported = _ported()
    costs = CostModel()
    candidates = enumerate_candidates(ported, costs)
    savings = [candidate.savings(costs) for candidate in candidates]
    assert savings == sorted(savings, reverse=True)
    # Store SC -> RELEASE saves 0 first-rung cycles, RMW SC -> ACQ_REL
    # saves 1, so RMWs come first under the static model.
    assert candidates[0].kind == "rmw"


def test_dynamic_counts_weight_the_order():
    ported = _ported()
    costs = CostModel()
    static = enumerate_candidates(ported, costs)
    # Weight the RMW that ranked *last* among RMWs; a store's first
    # rung (SC -> RELEASE) saves 0 cycles at any weight, so use an RMW.
    hot = [c for c in static if c.kind == "rmw"][-1].position
    counts = {hot: 1000}
    dynamic = enumerate_candidates(ported, costs, counts=counts)
    by_position = {c.position: c for c in dynamic}
    assert by_position[hot].weight == 1000
    # Every never-executed site weighs 0, so the hot one leads.
    assert dynamic[0].position == hot


def test_ladder_walk_accept_reject_freeze():
    candidate = Candidate(
        instr=None, position=("f", "b", 0), kind="rmw",
        ladder=RMW_LADDER,
    )
    assert candidate.proposal() is MemoryOrder.ACQ_REL
    candidate.accept()
    assert candidate.committed is MemoryOrder.ACQ_REL
    assert candidate.proposal() is MemoryOrder.ACQUIRE
    candidate.reject()
    assert candidate.proposal() is MemoryOrder.RELEASE  # alternative
    candidate.reject()
    assert candidate.frozen
    assert candidate.proposal() is None
    assert candidate.last_rejected is MemoryOrder.RELEASE
    assert candidate.history == [MemoryOrder.ACQ_REL]


def test_store_ladder_never_proposes_acquire():
    flat = [order for level in STORE_LADDER for order in level]
    assert MemoryOrder.ACQUIRE not in flat
    assert MemoryOrder.ACQ_REL not in flat
    assert MemoryOrder.CONSUME not in flat


def test_apply_proposal_and_undo_restore_exactly():
    ported = _ported()
    costs = CostModel()
    candidates = enumerate_candidates(ported, costs)
    before = [candidate.instr.order for candidate in candidates]
    undos = [apply_proposal(candidate) for candidate in candidates]
    after = [candidate.instr.order for candidate in candidates]
    assert after != before
    verify_module(ported)  # ladders only emit verifier-legal orders
    for undo in reversed(undos):
        undo()
    assert [c.instr.order for c in candidates] == before


def test_fence_deletion_undo_restores_position():
    module = compile_source("""
int x = 0;
int main() {
    x = 1;
    atomic_thread_fence(memory_order_seq_cst);
    return x;
}
""", "f")
    fence = next(
        instr for instr in module.functions["main"].instructions()
        if isinstance(instr, ins.Fence)
    )
    # Source-level fences carry the "annotation" mark and are never
    # candidates; re-mark as a porter-inserted one.
    fence.marks.clear()
    fence.marks.add("optimistic")
    candidates = enumerate_candidates(module, CostModel())
    assert [c.kind for c in candidates] == ["fence"]
    candidate = candidates[0]
    assert candidate.proposal() is DELETE

    block = fence.block
    index = block.instructions.index(fence)
    undo = apply_proposal(candidate)
    assert fence not in block.instructions
    undo()
    assert block.instructions[index] is fence


def test_programmer_fences_are_not_deletion_candidates():
    module = compile_source("""
int x = 0;
int main() {
    x = 1;
    atomic_thread_fence(memory_order_seq_cst);
    return x;
}
""", "f")
    assert all(
        candidate.kind != "fence"
        for candidate in enumerate_candidates(module, CostModel())
    )
