"""Tests for the batch optimize harness (Table 9's engine)."""

from repro.bench.corpus import BENCHMARKS
from repro.opt.parallel import OptimizeTask, run_optimize_tasks

NAMES = ("ck_spinlock_cas", "message_passing")


def _tasks():
    return [
        OptimizeTask(
            name=name, source=BENCHMARKS[name].mc_source(),
            level="atomig",
        )
        for name in NAMES
    ]


def test_sequential_batch_preserves_order_and_verdicts():
    reports = run_optimize_tasks(_tasks())
    assert [r["module"] for r in reports] == [
        f"{name}.atomig" for name in NAMES
    ]
    for report in reports:
        assert report["verdict_preserved"]
        assert report["barrier_cost_after"] <= report["barrier_cost_before"]


def test_parallel_batch_matches_sequential():
    sequential = run_optimize_tasks(_tasks())
    parallel = run_optimize_tasks(_tasks(), jobs=2)
    for seq, par in zip(sequential, parallel):
        assert par["module"] == seq["module"]
        assert par["verdict_preserved"]
        assert par["barrier_cost_after"] == seq["barrier_cost_after"]
        assert par["weakened"] == seq["weakened"]
