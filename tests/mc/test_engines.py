"""Engine equivalence: clone and in-place explorers are interchangeable.

The in-place engine (undo-log DFS + incremental digests) must be a pure
substrate swap: on every program, under every model, it must report the
same outcome AND the same exploration counts as the reference clone
engine — ``states_explored``, ``states_visited`` and ``transitions``,
not just the verdict.  This is the contract that lets the Oracle's
verdict cache ignore the engine entirely.
"""

import pytest

from repro.api import compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.core.config import PortingLevel
from repro.mc.explorer import ENGINES, check_module
from repro.mc.litmus import LITMUS_TESTS

BOUNDS = dict(max_steps=600, max_states=400_000)
CORPUS = ("message_passing", "ck_ring", "ck_spinlock_cas", "ck_sequence",
          "lf_hash")


def _results(module, model):
    results = {}
    for engine in ENGINES:
        results[engine] = check_module(
            module, model=model, engine=engine, **BOUNDS
        )
    return results


def _assert_identical(results, label):
    clone = results["clone"]
    inplace = results["inplace"]
    assert inplace.outcome == clone.outcome, label
    assert inplace.states_explored == clone.states_explored, label
    assert inplace.truncated == clone.truncated, label
    assert inplace.stats.states_visited == clone.stats.states_visited, label
    assert inplace.stats.transitions == clone.stats.transitions, label


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("model", ["tso", "wmm"])
def test_corpus_engines_identical(name, model):
    bench = BENCHMARKS[name]
    source = bench.mc_source()
    module, _report = port_module(
        compile_source(source, name), PortingLevel.ATOMIG
    )
    _assert_identical(_results(module, model), f"{name}/{model}")


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_litmus_engines_identical(name):
    source, expected = LITMUS_TESTS[name]
    module = compile_source(source, f"litmus_{name}")
    for model in expected:
        results = _results(module, model)
        _assert_identical(results, f"{name}/{model}")
        # ... and both agree with the calibrated verdict.
        assert results["inplace"].ok == expected[model], f"{name}/{model}"


def test_unknown_engine_rejected():
    module = compile_source(LITMUS_TESTS["SB"][0], "sb")
    with pytest.raises(ValueError):
        check_module(module, engine="warp")
