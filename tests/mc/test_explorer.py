"""Tests for the exploration driver and its bounding behaviour."""

from repro.api import compile_source
from repro.mc.explorer import check_module, compare_models


def test_single_threaded_program_single_pass():
    module = compile_source("""
int main() {
    int sum = 0;
    for (int i = 0; i < 5; i++) { sum = sum + i; }
    assert(sum == 10);
    return sum;
}
""")
    result = check_module(module, model="wmm")
    assert result.ok
    assert not result.truncated


def test_assert_failure_reported_with_location():
    module = compile_source("""
int main() { assert(0); return 0; }
""")
    result = check_module(module, model="sc")
    assert not result.ok
    assert "main" in result.violation


def test_all_interleavings_of_racy_counter_found():
    """Plain increments can lose updates even under SC (read-modify-
    write splitting), so the strict assertion must fail."""
    module = compile_source("""
int c = 0;
void bump() { int t = c; c = t + 1; }
int main() {
    int t = thread_create(bump);
    bump();
    thread_join(t);
    assert(c == 2);
    return 0;
}
""")
    result = check_module(module, model="sc")
    assert not result.ok  # the lost-update interleaving exists


def test_atomic_counter_is_safe_under_all_models():
    module = compile_source("""
int c = 0;
void bump() { atomic_fetch_add(&c, 1); }
int main() {
    int t = thread_create(bump);
    bump();
    thread_join(t);
    assert(c == 2);
    return 0;
}
""")
    results = compare_models(module, max_steps=400)
    assert all(result.ok for result in results.values())


def test_stable_spin_converges_by_state_dedup():
    """A spinloop over unchanging memory revisits the same canonical
    state, so exploration converges without hitting the step bound."""
    module = compile_source("""
int never = 0;
int main() {
    while (never == 0) { }
    return 0;
}
""")
    result = check_module(module, model="wmm", max_steps=500)
    assert result.ok
    assert not result.truncated
    assert result.states_explored < 10


def test_step_bound_truncates_diverging_loops():
    """A loop whose state keeps changing is cut by the step bound and
    reported as truncated rather than looping forever."""
    module = compile_source("""
int main() {
    int n = 0;
    while (1) { n = n + 1; }
    return n;
}
""")
    result = check_module(module, model="wmm", max_steps=60)
    assert result.ok
    assert result.truncated


def test_state_budget_truncates():
    module = compile_source("""
int a; int b; int c;
void t1() { a = 1; b = 1; c = 1; }
int main() {
    int t = thread_create(t1);
    a = 2; b = 2; c = 2;
    thread_join(t);
    return 0;
}
""")
    result = check_module(module, model="wmm", max_states=5)
    assert result.truncated
    assert "state budget" in " ".join(result.notes)


def test_division_by_zero_is_a_violation():
    module = compile_source("""
int z = 0;
int main() { return 5 / z; }
""")
    result = check_module(module, model="sc")
    assert not result.ok
    assert "division" in result.violation


def test_three_threads_explored():
    module = compile_source("""
int x = 0;
void t1() { atomic_fetch_add(&x, 1); }
void t2() { atomic_fetch_add(&x, 10); }
int main() {
    int a = thread_create(t1);
    int b = thread_create(t2);
    thread_join(a);
    thread_join(b);
    assert(x == 11);
    return 0;
}
""")
    result = check_module(module, model="wmm", max_steps=400)
    assert result.ok


def test_counterexample_is_depth_first_deterministic():
    module = compile_source("""
int flag = 0;
int msg = 0;
void w() { msg = 1; flag = 1; }
int main() {
    int t = thread_create(w);
    while (flag == 0) { }
    assert(msg == 1);
    thread_join(t);
    return 0;
}
""")
    first = check_module(module, model="wmm", max_steps=300)
    second = check_module(module, model="wmm", max_steps=300)
    assert not first.ok and not second.ok
    assert first.trace == second.trace


def test_missing_entry_function_is_reported():
    module = compile_source("int helper() { return 1; }")
    result = check_module(module, model="sc")
    assert not result.ok
    assert "initialization failed" in result.violation
