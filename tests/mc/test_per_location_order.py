"""Per-location (coherence) guarantees under the weak model."""

from repro.api import check_module, compile_source


def check(source, model="wmm", max_steps=600):
    return check_module(compile_source(source), model=model,
                        max_steps=max_steps)


def test_thread_sees_its_own_store():
    """Read-own-write: per-location program order is never violated."""
    result = check("""
int x = 0;
int noise = 0;
void w() { noise = 1; }
int main() {
    int t = thread_create(w);
    x = 7;
    int mine = x;
    assert(mine == 7);
    thread_join(t);
    return 0;
}
""")
    assert result.ok


def test_store_store_same_location_ordered():
    result = check("""
int x = 0;
void w() { x = 1; x = 2; }
int main() {
    int t = thread_create(w);
    int a = x;
    int b = x;
    thread_join(t);
    assert(x == 2);
    assert(b != 1 || a != 2);
    return 0;
}
""")
    assert result.ok


def test_load_load_same_location_monotone():
    result = check("""
int x = 0;
void w() { x = 5; }
int main() {
    int t = thread_create(w);
    int a = x;
    int b = x;
    assert(a == 0 || b == 5);
    thread_join(t);
    return 0;
}
""")
    assert result.ok


def test_different_locations_do_reorder():
    """Control: the same shape over two locations IS weak (MP)."""
    result = check("""
int x = 0;
int y = 0;
void w() { x = 1; y = 1; }
int main() {
    int t = thread_create(w);
    int b = y;
    int a = x;
    assert(b == 0 || a == 1);
    thread_join(t);
    return 0;
}
""")
    assert not result.ok


def test_rmw_same_location_after_store_sees_it():
    result = check("""
int x = 0;
int noise = 0;
void w() { noise = 1; }
int main() {
    int t = thread_create(w);
    x = 3;
    int old = atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
    assert(old == 3);
    thread_join(t);
    return 0;
}
""")
    assert result.ok
