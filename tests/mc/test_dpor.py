"""Source-DPOR backend: verdict identity, reduction wins, plumbing.

The DPOR explorer (``repro.mc.dpor``) must be a drop-in verdict oracle:
same outcome as the sleep-set backend on every program, on both engines,
under every model.  Where the two differ is *cost* — DPOR explores one
interleaving per happens-before equivalence class, which wins big on
conflict-light programs (locks, mostly-disjoint data) and loses to the
stateful sleep+dedup engine on convergent spin loops (where distinct
interleavings collapse into few unique states).  Both directions are
pinned here.
"""

import json

import pytest

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.mc.explorer import (
    ENGINES,
    ExplorationStats,
    check_module,
    resolve_reduction,
)
from repro.mc.litmus import LITMUS_TESTS

BOUNDS = dict(max_steps=600, max_states=400_000)
CORPUS = ("message_passing", "ck_ring", "ck_spinlock_cas", "ck_sequence",
          "lf_hash")


def _ported(name):
    from repro.bench.corpus import BENCHMARKS

    bench = BENCHMARKS[name]
    module, _report = port_module(
        compile_source(bench.mc_source(), name), PortingLevel.ATOMIG
    )
    return module


def _outcome(result):
    if result.violation is not None:
        return "violation"
    if result.deadlock:
        return "deadlock"
    return "ok"


# -- verdict identity -------------------------------------------------------


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_litmus_dpor_matches_expected(name):
    source, expected = LITMUS_TESTS[name]
    module = compile_source(source, f"litmus_{name}")
    for model, want_ok in expected.items():
        for engine in ENGINES:
            result = check_module(
                module, model=model, por="dpor", engine=engine, **BOUNDS
            )
            assert result.ok == want_ok, (name, model, engine)


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("model", ["tso", "wmm"])
def test_corpus_dpor_matches_sleep(name, model):
    module = _ported(name)
    sleep = check_module(module, model=model, por="sleep", **BOUNDS)
    dpor = check_module(module, model=model, por="dpor", **BOUNDS)
    assert _outcome(sleep) == _outcome(dpor), (name, model)
    assert sleep.truncated == dpor.truncated, (name, model)


@pytest.mark.parametrize("engine", ENGINES)
def test_dpor_engines_identical(engine):
    """Both engines run the same DPOR traversal: identical counts."""
    source, _expected = LITMUS_TESTS["SB"]
    module = compile_source(source, "litmus_SB")
    results = {
        eng: check_module(module, model="wmm", por="dpor", engine=eng,
                          **BOUNDS)
        for eng in ENGINES
    }
    reference = results["clone"]
    result = results[engine]
    assert _outcome(result) == _outcome(reference)
    assert result.states_explored == reference.states_explored
    assert result.stats.states_visited == reference.stats.states_visited
    assert result.stats.races_detected == reference.stats.races_detected


# -- reduction behaviour ----------------------------------------------------


def test_dpor_beats_sleep_on_conflict_light_program():
    """The headline win: lock-based code has few reversible races."""
    module = _ported("ck_spinlock_cas")
    sleep = check_module(module, model="wmm", por="sleep", **BOUNDS)
    dpor = check_module(module, model="wmm", por="dpor", **BOUNDS)
    assert dpor.stats.states_visited < sleep.stats.states_visited
    assert dpor.stats.equivalence_classes > 0


def test_dpor_stutter_applies_cycle_proviso():
    """A node whose only scheduled action spins must still expand.

    Regression: on this *unported* racy message-passing program the
    root's first pick is the reader's spin re-read — a self-loop.
    Sleeping it without the cycle proviso exhausted the node with the
    writer ignored forever, reporting ok where every other backend
    finds the WMM violation.
    """
    source = """
    int flag = 0;
    int msg = 0;
    void writer() {
        msg = 42;
        flag = 1;
    }
    int main() {
        int t = thread_create(writer);
        int data;
        while (flag != 1) { }
        data = msg;
        assert(data == 42);
        thread_join(t);
        return 0;
    }
    """
    module = compile_source(source, "mp_unported")
    for model in ("sc", "tso", "wmm"):
        sleep = check_module(module, model=model, por="sleep", **BOUNDS)
        dpor = check_module(module, model=model, por="dpor", **BOUNDS)
        assert _outcome(sleep) == _outcome(dpor), model
    assert _outcome(check_module(module, model="wmm", por="dpor",
                                 **BOUNDS)) == "violation"


def test_dpor_counters_populated():
    source, _expected = LITMUS_TESTS["SB"]
    module = compile_source(source, "litmus_SB")
    result = check_module(module, model="wmm", por="dpor", **BOUNDS)
    stats = result.stats
    assert stats.por == "dpor"
    assert stats.engine == "inplace"
    assert stats.equivalence_classes > 0
    assert stats.races_detected > 0


# -- knob resolution --------------------------------------------------------


def test_resolve_reduction_defaults():
    assert resolve_reduction() == ("sleep", True)
    assert resolve_reduction(reduce=True) == ("sleep", True)
    assert resolve_reduction(reduce=False) == ("none", False)


def test_resolve_reduction_explicit_wins_over_alias():
    assert resolve_reduction(reduce=False, por="dpor") == ("dpor", False)
    assert resolve_reduction(reduce=False, macro="on") == ("none", True)
    assert resolve_reduction(por="none", macro="off") == ("none", False)


def test_resolve_reduction_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_reduction(por="bogus")
    with pytest.raises(ValueError):
        resolve_reduction(macro="sometimes")


def test_no_reduce_alias_still_enumerates():
    source, _expected = LITMUS_TESTS["SB"]
    module = compile_source(source, "litmus_SB")
    legacy = check_module(module, model="sc", reduce=False, **BOUNDS)
    explicit = check_module(module, model="sc", por="none", macro="off",
                            **BOUNDS)
    assert legacy.states_explored == explicit.states_explored
    assert _outcome(legacy) == _outcome(explicit)


# -- stats schema / provenance ----------------------------------------------


def test_stats_json_schema_and_provenance():
    source, _expected = LITMUS_TESTS["MP"]
    module = compile_source(source, "litmus_MP")
    result = check_module(module, model="wmm", por="dpor", **BOUNDS)
    payload = json.loads(result.stats.to_json())
    assert payload["schema"] == ExplorationStats.SCHEMA
    assert payload["por"] == "dpor"
    assert payload["engine"] == "inplace"
    assert payload["macro"] == "on"
    for key in ("races_detected", "backtrack_points",
                "wakeup_reexplorations", "equivalence_classes"):
        assert key in payload
    assert "[inplace/dpor" in str(result.stats)


def test_format_exploration_stats_shows_dpor_rows():
    from repro.core.report import format_exploration_stats

    source, _expected = LITMUS_TESTS["MP"]
    module = compile_source(source, "litmus_MP")
    result = check_module(module, model="wmm", por="dpor", **BOUNDS)
    text = format_exploration_stats(result.stats)
    assert "races detected" in text
    assert "equivalence classes" in text
    assert "por=dpor" in text


# -- plumbing ---------------------------------------------------------------


def test_check_task_carries_por():
    from repro.mc.litmus import LITMUS_TESTS as GALLERY
    from repro.mc.parallel import CheckTask, run_task

    source, expected = GALLERY["SB"]
    task = CheckTask(name="sb", source=source, model="wmm", level=None,
                     por="dpor", max_steps=600)
    result = run_task(task)
    assert result.ok == expected["wmm"]
    assert result.stats.por == "dpor"


def test_oracle_cache_key_ignores_por():
    """A verdict probed under one backend serves every backend."""
    from repro.opt.oracle import Oracle

    sleep = Oracle(model="wmm", por="sleep")
    dpor = Oracle(model="wmm", por="dpor")
    none = Oracle(model="wmm", reduce=False)
    text = "@main { entry0: ret 0 }"
    assert sleep._digest(text) == dpor._digest(text) == none._digest(text)


def test_api_check_module_accepts_por():
    from repro import api

    source, _expected = LITMUS_TESTS["MP"]
    module = compile_source(source, "litmus_MP")
    result = api.check_module(module, model="wmm", por="dpor",
                              max_steps=600)
    assert result.stats.por == "dpor"
