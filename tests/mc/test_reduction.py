"""Verdict-equivalence of the reduced explorer against the oracle.

The partial-order reduction (sleep sets + macro-stepping + self-loop
pruning, DESIGN.md §4b) must never change a verdict: for every litmus
test and corpus program, ``reduce=True`` and ``reduce=False`` must agree
on ``ok``/``outcome`` — while exploring strictly fewer states on the
programs with real scheduling redundancy.
"""

import pytest

from repro.api import compile_source, port_module
from repro.bench.corpus import BENCHMARKS
from repro.bench.tables import TABLE2_BENCHMARKS, _TABLE2_LEVELS
from repro.core.config import PortingLevel
from repro.mc.explorer import _digest, check_module
from repro.mc.litmus import LITMUS_TESTS

BOUNDS = dict(max_steps=600, max_states=400_000)


def _both(module, model="wmm", **kwargs):
    kwargs = {**BOUNDS, **kwargs}
    oracle = check_module(module, model=model, reduce=False, **kwargs)
    reduced = check_module(module, model=model, reduce=True, **kwargs)
    return oracle, reduced


@pytest.mark.parametrize("model", ["sc", "tso", "wmm"])
@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_litmus_verdict_equivalence(name, model):
    source, _expected = LITMUS_TESTS[name]
    module = compile_source(source, name)
    oracle, reduced = _both(module, model=model)
    assert reduced.ok == oracle.ok
    assert reduced.outcome == oracle.outcome
    # Litmus tests have a single assert, so even the message must agree.
    assert reduced.violation == oracle.violation


@pytest.mark.parametrize("level_name,level", _TABLE2_LEVELS)
@pytest.mark.parametrize("name", TABLE2_BENCHMARKS)
def test_corpus_verdict_equivalence_wmm(name, level_name, level):
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    ported, _report = port_module(module, level)
    oracle, reduced = _both(ported, model="wmm")
    assert reduced.ok == oracle.ok, f"{name}/{level_name}"
    assert reduced.outcome == oracle.outcome, f"{name}/{level_name}"
    assert reduced.states_explored <= oracle.states_explored


@pytest.mark.parametrize("name", ["message_passing", "ck_sequence", "lf_hash"])
def test_reduction_strictly_smaller(name):
    """The ISSUE's floor: strictly fewer explored states on MP, the
    seqlock and lf-hash (AtoMig level, where the paper's Table 2 says
    the programs verify)."""
    module = compile_source(BENCHMARKS[name].mc_source(), name)
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    oracle, reduced = _both(ported, model="wmm")
    assert reduced.ok == oracle.ok
    assert reduced.states_explored < oracle.states_explored


# Two-lock (ABBA) deadlock expressed with the language's one *blocking*
# primitive: each "lock" is held by the thread that owns it and released
# only when that thread finishes, so acquiring the other lock is a
# thread_join — holder A takes A then wants B while holder B takes B
# then wants A, and both block forever.
DEADLOCK_SOURCE = """
int holder_a = 0;
int holder_b = 0;
int published = 0;

void a_then_b() {
    while (published == 0) { cpu_relax(); }
    thread_join(holder_b);
}

void b_then_a() {
    while (published == 0) { cpu_relax(); }
    thread_join(holder_a);
}

int main() {
    holder_a = thread_create(a_then_b);
    holder_b = thread_create(b_then_a);
    published = 1;
    thread_join(holder_a);
    return 0;
}
"""


@pytest.mark.parametrize("model", ["sc", "wmm"])
@pytest.mark.parametrize("reduce", [False, True])
def test_two_lock_deadlock_reported_with_trace(model, reduce):
    module = compile_source(DEADLOCK_SOURCE, "two_lock_deadlock")
    result = check_module(module, model=model, reduce=reduce, **BOUNDS)
    assert result.outcome == "deadlock"
    assert result.deadlock
    assert result.ok  # a deadlock is not an assertion violation
    assert not result.truncated
    assert result.deadlock_trace
    assert "deadlock" in result.deadlock_trace[-1]
    assert any("deadlocked state" in note for note in result.notes)


def test_spinlock_abba_is_a_livelock_not_a_deadlock():
    """Spin-based ABBA never deadlocks in the formal sense: the spin
    loops keep an action enabled forever, so the stuck executions form a
    cycle the dedup closes — a liveness bug a safety checker must
    terminate on without flagging ``deadlock``."""
    module = compile_source("""
int lock_a = 0;
int lock_b = 0;
int entered = 0;

void take(int *lock) {
    while (atomic_cmpxchg_explicit(lock, 0, 1, memory_order_acquire) != 0) {
        cpu_relax();
    }
}

void ab_then_ba() {
    take(&lock_b);
    while (entered == 0) { cpu_relax(); }
    take(&lock_a);
    lock_a = 0;
    lock_b = 0;
}

int main() {
    int t = thread_create(ab_then_ba);
    take(&lock_a);
    entered = 1;
    take(&lock_b);
    lock_b = 0;
    lock_a = 0;
    thread_join(t);
    return 0;
}
""", "abba")
    for reduce in (False, True):
        result = check_module(module, model="sc", reduce=reduce, **BOUNDS)
        assert not result.deadlock
        assert not result.violation


def test_digest_has_no_small_int_collisions():
    """Python ``hash`` maps -1 and -2 to the same value; the dedup key
    must not (a silent collision could prune an unexplored state and
    mask a violation)."""
    assert hash(-1) == hash(-2)
    assert _digest((-1,)) != _digest((-2,))
    assert _digest(("x", 1, (2,))) != _digest(("x", 1, (3,)))
    # Deterministic across calls (it keys the visited set).
    assert _digest(("x", 1)) == _digest(("x", 1))


def test_stats_attached_and_consistent():
    module = compile_source(BENCHMARKS["ck_spinlock_cas"].mc_source(), "cas")
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    result = check_module(ported, model="wmm", reduce=True, **BOUNDS)
    stats = result.stats
    assert stats is not None
    assert stats.states_explored == result.states_explored
    assert stats.states_visited >= stats.states_explored
    assert stats.transitions >= stats.states_visited - 1
    assert stats.wall_seconds > 0
    assert stats.states_per_second > 0
    data = stats.to_dict()
    for key in ("states_explored", "states_visited", "transitions",
                "macro_steps", "ample_steps", "sleep_prunes", "loop_prunes",
                "dedup_hits", "peak_frontier", "wall_seconds",
                "states_per_second", "compression_ratio"):
        assert key in data
    assert "decisions" in stats.summary()
