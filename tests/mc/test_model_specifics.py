"""Model-specific behaviours: TSO store forwarding, drains, WMM windows."""

from repro.api import check_module, compile_source
from repro.mc.models import SCModel, TSOModel, WMMModel, get_model


def check(source, model, max_steps=500):
    return check_module(compile_source(source), model=model,
                        max_steps=max_steps)


class TestModelProperties:
    def test_registry(self):
        assert isinstance(get_model("sc"), SCModel)
        assert isinstance(get_model("tso"), TSOModel)
        assert isinstance(get_model("wmm"), WMMModel)

    def test_unknown_model_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown memory model"):
            get_model("power")

    def test_buffering_capabilities(self):
        assert not SCModel().buffers_stores()
        assert TSOModel().buffers_stores()
        assert not TSOModel().buffers_loads()
        assert WMMModel().buffers_stores()
        assert WMMModel().buffers_loads()

    def test_drain_requirements(self):
        from repro.ir.instructions import MemoryOrder

        assert TSOModel().rmw_requires_drain()  # x86 LOCK = full fence
        assert not WMMModel().rmw_requires_drain()
        assert TSOModel().store_requires_drain(MemoryOrder.SEQ_CST)
        assert not TSOModel().store_requires_drain(MemoryOrder.NOT_ATOMIC)


class TestTSOForwarding:
    def test_thread_reads_its_own_buffered_store(self):
        """Store forwarding: a thread always sees its own latest write,
        even while the store sits in the buffer."""
        result = check("""
int x = 0;
int other = 0;

void noise() { other = 1; }

int main() {
    int t = thread_create(noise);
    x = 5;
    int mine = x;   // must forward 5 from the buffer
    assert(mine == 5);
    thread_join(t);
    return 0;
}
""", "tso")
        assert result.ok

    def test_buffered_store_invisible_to_others(self):
        """The SB weak outcome exists precisely because buffered stores
        are not yet visible to the sibling."""
        result = check("""
int x = 0;
int y = 0;
int r1 = 0;
void t1() { y = 1; r1 = x; }
int main() {
    int t = thread_create(t1);
    x = 1;
    int r0 = y;
    thread_join(t);
    assert(r0 + r1 >= 1);
    return 0;
}
""", "tso")
        assert not result.ok

    def test_fence_makes_sb_disappear_on_tso(self):
        result = check("""
int x = 0;
int y = 0;
int r1 = 0;
void t1() {
    y = 1;
    atomic_thread_fence(memory_order_seq_cst);
    r1 = x;
}
int main() {
    int t = thread_create(t1);
    x = 1;
    atomic_thread_fence(memory_order_seq_cst);
    int r0 = y;
    thread_join(t);
    assert(r0 + r1 >= 1);
    return 0;
}
""", "tso")
        assert result.ok


class TestWMMWindows:
    def test_release_store_orders_prior_writes(self):
        result = check("""
int data = 0;
int flag = 0;
void w() {
    data = 1;
    atomic_store_explicit(&flag, 1, memory_order_release);
}
int main() {
    int t = thread_create(w);
    int f = atomic_load_explicit(&flag, memory_order_acquire);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""", "wmm")
        assert result.ok

    def test_relaxed_atomics_do_not_order(self):
        result = check("""
int data = 0;
int flag = 0;
void w() {
    data = 1;
    atomic_store_explicit(&flag, 1, memory_order_relaxed);
}
int main() {
    int t = thread_create(w);
    int f = atomic_load_explicit(&flag, memory_order_relaxed);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""", "wmm")
        assert not result.ok

    def test_dependent_address_forces_the_load(self):
        """Address dependencies are respected: the index load must
        commit before the dependent element load can even issue."""
        result = check("""
int table[4] = {9, 8, 7, 6};
int idx = 0;
void w() { idx = 2; }
int main() {
    int t = thread_create(w);
    int i = idx;
    int v = table[i];
    assert((i == 0 && v == 9) || (i == 2 && v == 7));
    thread_join(t);
    return 0;
}
""", "wmm")
        assert result.ok

    def test_same_location_writes_stay_ordered(self):
        """Coherence: two stores to one location by one thread are never
        observed in the opposite order."""
        result = check("""
int x = 0;
void w() {
    x = 1;
    x = 2;
}
int main() {
    int t = thread_create(w);
    int a = x;
    int b = x;
    assert(a <= b || b == 0);
    thread_join(t);
    return 0;
}
""", "wmm")
        assert result.ok

    def test_window_capacity_bounds_issue(self):
        """More pending stores than the window allows still complete
        (issuing blocks until commits make room)."""
        result = check("""
int sink[20];
int main() {
    for (int i = 0; i < 20; i++) { sink[i] = i; }
    int total = 0;
    for (int i = 0; i < 20; i++) { total = total + sink[i]; }
    assert(total == 190);
    return 0;
}
""", "wmm", max_steps=3000)
        assert result.ok
        assert not result.truncated
