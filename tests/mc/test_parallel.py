"""The parallel check harness must agree with in-process checking."""

from repro.api import compile_source
from repro.bench.corpus import BENCHMARKS
from repro.mc.explorer import compare_models
from repro.mc.parallel import (
    CheckTask,
    compare_models_parallel,
    run_task,
    run_tasks,
)

BOUNDS = dict(max_steps=600, max_states=400_000)


def _tasks():
    return [
        CheckTask(name=name, source=BENCHMARKS[name].mc_source(),
                  model="wmm", level="atomig", **BOUNDS)
        for name in ("message_passing", "ck_ring", "ck_spinlock_cas",
                     "lf_hash")
    ]


def test_run_tasks_parallel_matches_sequential():
    tasks = _tasks()
    sequential = run_tasks(tasks, jobs=None)
    parallel = run_tasks(tasks, jobs=2)
    assert len(parallel) == len(tasks)
    for seq, par in zip(sequential, parallel):
        assert par.ok == seq.ok
        assert par.outcome == seq.outcome
        assert par.states_explored == seq.states_explored
        # Results cross the process boundary with their stats intact.
        assert par.stats is not None
        assert par.stats.states_visited == seq.stats.states_visited


def test_run_task_original_level_skips_porting():
    source = BENCHMARKS["message_passing"].mc_source()
    unported = run_task(CheckTask(name="mp", source=source, model="wmm",
                                  level=None, **BOUNDS))
    # The unported TSO client hits the WMM reordering.
    assert not unported.ok


def test_compare_models_parallel_matches_inprocess():
    source = BENCHMARKS["message_passing"].mc_source()
    parallel = compare_models_parallel(source, name="mp", jobs=3, **BOUNDS)
    inprocess = compare_models(compile_source(source, "mp"), **BOUNDS)
    assert set(parallel) == {"sc", "tso", "wmm"}
    for model, result in inprocess.items():
        assert parallel[model].ok == result.ok
        assert parallel[model].outcome == result.outcome
        assert parallel[model].states_explored == result.states_explored


def test_jobs_one_runs_in_process():
    """jobs<=1 must not spawn a pool (deterministic default path)."""
    tasks = _tasks()[:1]
    assert run_tasks(tasks, jobs=1)[0].ok == run_task(tasks[0]).ok
