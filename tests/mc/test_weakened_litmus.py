"""The weakened-order litmus gallery: minimal orders pass, weaker bug.

These calibrate the barrier optimizer's ladders against the WMM: for
each classic shape (MP, SB, LB, IRIW) the weakest verifier-legal order
assignment still passes, and dropping any single order one step too far
is detectably wrong — which is the property that makes oracle-guided
weakening converge to a sound fixpoint instead of sliding past it.
"""

import pytest

from repro.mc.litmus import (
    WEAKENED_LITMUS,
    run_weakened_litmus,
    weakened_source,
)

ALL_SC = "memory_order_seq_cst"


@pytest.mark.parametrize("name", sorted(WEAKENED_LITMUS))
def test_minimal_orders_pass_under_wmm(name):
    result = run_weakened_litmus(name)
    assert result.ok, (
        f"{name} with minimal orders should verify: {result.violation}"
    )
    assert not result.truncated


@pytest.mark.parametrize("name", sorted(WEAKENED_LITMUS))
def test_seq_cst_everywhere_passes(name):
    _template, minimal, _too_weak = WEAKENED_LITMUS[name]
    overrides = {slot: ALL_SC for slot in minimal}
    assert run_weakened_litmus(name, overrides).ok


@pytest.mark.parametrize(
    "name,label",
    [
        (name, label)
        for name in sorted(WEAKENED_LITMUS)
        for label in sorted(WEAKENED_LITMUS[name][2])
    ],
)
def test_one_order_too_weak_is_caught(name, label):
    overrides = WEAKENED_LITMUS[name][2][label]
    result = run_weakened_litmus(name, overrides)
    assert not result.ok, (
        f"{name}/{label}: the checker should find the weak-outcome bug"
    )


@pytest.mark.parametrize("name", sorted(WEAKENED_LITMUS))
def test_minimal_passes_under_sc_too(name):
    """Sanity: weakening never makes a program fail under SC."""
    assert run_weakened_litmus(name, model="sc").ok


def test_sources_spell_requested_orders():
    source = weakened_source("MP", {"r_flag": "memory_order_relaxed"})
    assert "memory_order_release" in source   # minimal store order kept
    assert "memory_order_relaxed" in source   # override applied
