"""Deeper tests of machine internals: reservations, drains, finishing."""

from repro.api import check_module, compile_source
from repro.mc.machine import Context, FINISHED, FINISHING, Machine
from repro.mc.models import get_model


def machine_for(source, model="wmm", max_steps=800):
    module = compile_source(source)
    return Machine(Context(module, get_model(model)), max_steps=max_steps)


def drive_to_end(machine, state):
    """Apply arbitrary enabled actions until quiescent-terminal."""
    guard = 0
    while state.violation is None:
        actions = machine.enabled_actions(state)
        if not actions:
            break
        machine.apply_action(state, actions[0])
        guard += 1
        assert guard < 10_000
    return state


class TestReservations:
    SOURCE = """
int x = 0;
void other() { atomic_fetch_add_explicit(&x, 5, memory_order_relaxed); }
int main() {
    int t = thread_create(other);
    atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
    thread_join(t);
    assert(x == 6);
    return 0;
}
"""

    def test_concurrent_rmws_never_lose_updates(self):
        result = check_module(
            compile_source(self.SOURCE), model="wmm", max_steps=800
        )
        assert result.ok

    def test_reservation_blocks_competing_writer(self):
        machine = machine_for(self.SOURCE)
        state = machine.initial_state()
        # Find and execute one thread's rmw (the exec action).
        actions = machine.enabled_actions(state)
        rmw_actions = [a for a in actions if a[0] == "commit"]
        assert rmw_actions
        machine.apply_action(state, rmw_actions[0])
        reserved = dict(state.reservations)
        if reserved:
            addr = next(iter(reserved))
            holder = reserved[addr]
            # No other thread may now commit a write to that address.
            for action in machine.enabled_actions(state):
                if action[0] != "commit":
                    continue
                tid = action[1]
                entry = state.threads[tid].window[action[2]]
                if entry.addr == addr and entry.kind in (
                    "store", "rmw", "rmw_store"
                ):
                    assert tid == holder


class TestFinishing:
    def test_thread_drains_window_after_return(self):
        source = """
int out = 0;
void fire_and_forget() {
    out = 9;   // still buffered when the function returns
}
int main() {
    int t = thread_create(fire_and_forget);
    thread_join(t);
    assert(out == 9);
    return 0;
}
"""
        machine = machine_for(source)
        state = machine.initial_state()
        # Run until the worker is past its code; its store may linger.
        saw_finishing = False
        guard = 0
        while state.violation is None:
            for thread in state.threads.values():
                if thread.status == FINISHING:
                    saw_finishing = True
                    assert thread.window  # that's why it's finishing
            actions = machine.enabled_actions(state)
            if not actions:
                break
            machine.apply_action(state, actions[0])
            guard += 1
            assert guard < 2000
        assert state.violation is None
        assert all(
            t.status == FINISHED for t in state.threads.values()
        )
        assert saw_finishing  # the drain phase was actually exercised

    def test_join_waits_for_the_drain(self):
        """join must not complete while the target's stores are pending
        — otherwise the asserting reader could miss them."""
        result = check_module(compile_source("""
int out = 0;
void w() { out = 1; }
int main() {
    int t = thread_create(w);
    thread_join(t);
    assert(out == 1);
    return 0;
}
"""), model="wmm", max_steps=400)
        assert result.ok


class TestFences:
    def test_fence_blocks_until_window_empty(self):
        source = """
int a = 0;
int b = 0;
int main() {
    a = 1;
    atomic_thread_fence(memory_order_seq_cst);
    b = 1;
    return 0;
}
"""
        machine = machine_for(source)
        state = machine.initial_state()
        # At quiescence the thread is blocked at the fence with the
        # store to a pending.
        thread = state.threads[0]
        assert thread.status in ("blocked", "finished")
        if thread.status == "blocked":
            assert len(thread.window) == 1
            assert thread.window[0].addr == machine.ctx.global_addr["a"]
        drive_to_end(machine, state)
        assert state.violation is None


def test_output_collected_deterministically_single_thread():
    machine = machine_for("""
int main() {
    print(1);
    print(2);
    return 0;
}
""", model="sc")
    state = machine.initial_state()
    drive_to_end(machine, state)
    assert state.output == [1, 2]
