"""Unit tests for the operational machine's building blocks."""

import pytest

from repro.api import compile_source
from repro.ir.instructions import MemoryOrder
from repro.mc.machine import Context, Machine, WindowEntry, is_pending
from repro.mc.models import WMMModel, get_model


def make_machine(source, model="wmm", max_steps=500):
    module = compile_source(source)
    context = Context(module, get_model(model))
    return Machine(context, max_steps=max_steps)


def entry(kind, addr, order=MemoryOrder.NOT_ATOMIC, **kwargs):
    return WindowEntry(kind, addr, order, None, **kwargs)


class TestWindowRules:
    model = WMMModel()

    def test_independent_stores_commit_out_of_order(self):
        window = [entry("store", 1, value=1), entry("store", 2, value=2)]
        assert self.model.may_commit(window, 0)
        assert self.model.may_commit(window, 1)

    def test_same_address_commits_in_order(self):
        window = [entry("store", 1, value=1), entry("store", 1, value=2)]
        assert self.model.may_commit(window, 0)
        assert not self.model.may_commit(window, 1)

    def test_release_store_waits_for_everything(self):
        window = [
            entry("store", 1, value=1),
            entry("store", 2, value=2, order=MemoryOrder.SEQ_CST),
        ]
        assert not self.model.may_commit(window, 1)

    def test_plain_store_overtakes_release_store(self):
        window = [
            entry("store", 1, value=1, order=MemoryOrder.SEQ_CST),
            entry("store", 2, value=2),
        ]
        # This is the Figure 7 behaviour: the later plain store may
        # become visible before the earlier release store.
        assert self.model.may_commit(window, 1)

    def test_acquire_load_blocks_later_commits(self):
        window = [
            entry("load", 1, order=MemoryOrder.SEQ_CST, token=1),
            entry("store", 2, value=2),
        ]
        assert self.model.may_commit(window, 0)
        assert not self.model.may_commit(window, 1)

    def test_plain_load_does_not_block_later_commits(self):
        window = [
            entry("load", 1, token=1),
            entry("store", 2, value=2),
        ]
        assert self.model.may_commit(window, 1)

    def test_unexecuted_sc_rmw_blocks_later_commits(self):
        window = [
            entry("rmw", 1, order=MemoryOrder.SEQ_CST, token=1,
                  rmw_op="add", rmw_operand=1),
            entry("store", 2, value=2),
        ]
        assert not self.model.may_commit(window, 1)

    def test_relaxed_rmw_orders_nothing(self):
        """A relaxed LL/SC pair is plain LDXR/STXR on Arm: later ops may
        commit first, and earlier ops may drain later."""
        window = [
            entry("rmw", 1, order=MemoryOrder.RELAXED, token=1,
                  rmw_op="add", rmw_operand=1),
            entry("store", 2, value=2),
        ]
        assert self.model.may_commit(window, 1)
        window = [
            entry("store", 2, value=2),
            entry("rmw_store", 1, order=MemoryOrder.RELAXED, value=5),
        ]
        assert self.model.may_commit(window, 1)

    def test_rmw_store_half_can_be_overtaken(self):
        window = [
            entry("rmw_store", 1, order=MemoryOrder.SEQ_CST, value=5),
            entry("store", 2, value=2),
        ]
        assert self.model.may_commit(window, 1)

    def test_sc_sc_program_order(self):
        window = [
            entry("load", 1, order=MemoryOrder.SEQ_CST, token=1),
            entry("load", 2, order=MemoryOrder.SEQ_CST, token=2),
        ]
        assert not self.model.may_commit(window, 1)

    def test_pending_store_value_blocks_commit(self):
        window = [entry("store", 1, value=("p", 9))]
        assert not self.model.may_commit(window, 0)


class TestInitialState:
    def test_globals_laid_out(self):
        machine = make_machine("""
int a = 7;
int b[3] = {1, 2, 3};
int main() { return 0; }
""")
        addr_a = machine.ctx.global_addr["a"]
        addr_b = machine.ctx.global_addr["b"]
        state = machine.initial_state()
        assert state.memory.get(addr_a) == 7
        assert [state.memory.get(addr_b + i) for i in range(3)] == [1, 2, 3]

    def test_private_accesses_classified(self):
        machine = make_machine("""
int g;
int main() { int x = 1; g = x; return x; }
""")
        assert machine.ctx.private  # the local x's accesses

    def test_trivial_program_finishes_in_initial_quiescence(self):
        machine = make_machine("int main() { return 2 + 3; }")
        state = machine.initial_state()
        assert state.threads[0].status == "finished"
        assert not machine.enabled_actions(state)


class TestCanonicalization:
    def test_same_state_same_hash(self):
        machine = make_machine("int g;\nint main() { g = 1; return 0; }")
        a = machine.initial_state()
        b = machine.initial_state()
        assert a.canonical() == b.canonical()

    def test_token_renumbering_is_stable(self):
        source = """
int g;
int main() {
    while (g == 0) { }
    return 0;
}
"""
        machine = make_machine(source)
        state = machine.initial_state()
        # Spin one iteration (commit the pending load, loop back): the
        # environment now holds the steady-state values.
        machine.apply_action(state, machine.enabled_actions(state)[0])
        second = state.canonical()
        # Another full iteration reproduces the same canonical state,
        # despite fresh token ids — this is what makes spinloop
        # exploration finite.
        machine.apply_action(state, machine.enabled_actions(state)[0])
        assert state.canonical() == second

    def test_clone_is_independent(self):
        machine = make_machine("int g;\nint main() { while (g == 0) { } return 0; }")
        state = machine.initial_state()
        copy = state.clone()
        machine.apply_action(copy, machine.enabled_actions(copy)[0])
        assert state.canonical() == machine.initial_state().canonical()


def test_pending_tokens_flow_through_private_slots():
    source = """
int g = 5;
int main() {
    int copy = g;     // pending token stored into a private slot
    int twice = copy + copy;  // forces the load
    assert(twice == 10);
    return 0;
}
"""
    machine = make_machine(source)
    state = machine.initial_state()
    # The thread must be blocked on the pending load of g.
    assert state.threads[0].status in ("blocked", "finished")
    while machine.enabled_actions(state):
        machine.apply_action(state, machine.enabled_actions(state)[0])
    assert state.violation is None
    assert state.threads[0].status == "finished"


def test_assert_failure_sets_violation():
    machine = make_machine("int main() { assert(1 == 2); return 0; }")
    state = machine.initial_state()
    assert state.violation is not None
    assert "assert" in state.violation


def test_is_pending_helper():
    assert is_pending(("p", 3))
    assert not is_pending(3)
    assert not is_pending((3, "p"))
