"""Calibration of the operational machine against classic litmus tests."""

import pytest

from repro.mc.litmus import LITMUS_TESTS, expected_verdict, run_litmus

CASES = [
    (name, model)
    for name in LITMUS_TESTS
    for model in ("sc", "tso", "wmm")
]


@pytest.mark.parametrize("name,model", CASES,
                         ids=[f"{n}-{m}" for n, m in CASES])
def test_litmus_verdict(name, model):
    result = run_litmus(name, model)
    expected = expected_verdict(name, model)
    assert result.ok == expected, (
        f"{name} under {model}: got "
        f"{'ok' if result.ok else result.violation}, expected "
        f"{'ok' if expected else 'violation'}"
    )
    assert not result.truncated


def test_sb_weak_outcome_has_trace():
    result = run_litmus("SB", "tso")
    assert not result.ok
    assert result.trace  # counterexample schedule is reported


def test_models_form_a_hierarchy():
    """Anything that fails under TSO must also fail under the WMM, and
    anything failing under SC fails everywhere (SC < TSO < WMM)."""
    for name in LITMUS_TESTS:
        verdicts = LITMUS_TESTS[name][1]
        if not verdicts["sc"]:
            assert not verdicts["tso"] and not verdicts["wmm"]
        if not verdicts["tso"]:
            assert not verdicts["wmm"]
