"""Structured program fuzzing: the whole stack must never crash.

Generates random—but always valid—Mini-C programs with nested control
flow, locals, arrays and global traffic.  Invariants:

- the frontend compiles them and the verifier accepts the IR;
- the VM terminates (all loops are bounded by construction) and two
  runs agree (determinism);
- the SC model checker agrees there is no assertion failure;
- every porter produces IR that still verifies and runs identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.ir.verifier import verify_module
from repro.vm.interp import run_module


class _Gen:
    """Renders a random statement tree as Mini-C with bounded loops."""

    def __init__(self):
        self.indent = 1
        self.loop_id = 0

    def pad(self):
        return "    " * self.indent


def statements(depth):
    simple = st.sampled_from([
        "acc = acc + {a};",
        "acc = acc * {a} % 9973;",
        "g = acc;",
        "acc = acc + g;",
        "buf[{a} % 6] = acc;",
        "acc = acc ^ buf[{b} % 6];",
        "acc = helper(acc % 50);",
    ])
    if depth <= 0:
        return simple
    recur = statements(depth - 1)
    block = st.lists(recur, min_size=1, max_size=3)
    compound = st.one_of(
        st.tuples(st.just("if"), st.integers(0, 9), block, block),
        st.tuples(st.just("for"), st.integers(1, 5), block),
        st.tuples(st.just("switch"), st.integers(0, 3), block, block),
    )
    return st.one_of(simple, compound)


def render(node, gen, counter):
    if isinstance(node, str):
        return gen.pad() + node.format(a=counter + 1, b=counter + 3)
    kind = node[0]
    if kind == "if":
        _, threshold, then_body, else_body = node
        lines = [gen.pad() + f"if (acc % 10 < {threshold}) {{"]
        gen.indent += 1
        lines += [render(s, gen, counter + i) for i, s in enumerate(then_body)]
        gen.indent -= 1
        lines.append(gen.pad() + "} else {")
        gen.indent += 1
        lines += [render(s, gen, counter + i) for i, s in enumerate(else_body)]
        gen.indent -= 1
        lines.append(gen.pad() + "}")
        return "\n".join(lines)
    if kind == "for":
        _, bound, body = node
        gen.loop_id += 1
        var = f"i{gen.loop_id}"
        lines = [gen.pad() + f"for (int {var} = 0; {var} < {bound}; {var}++) {{"]
        gen.indent += 1
        lines += [render(s, gen, counter + i) for i, s in enumerate(body)]
        gen.indent -= 1
        lines.append(gen.pad() + "}")
        return "\n".join(lines)
    if kind == "switch":
        _, selector, arm_a, arm_b = node
        lines = [gen.pad() + f"switch (acc % 4) {{"]
        lines.append(gen.pad() + f"case {selector}:")
        gen.indent += 1
        lines += [render(s, gen, counter + i) for i, s in enumerate(arm_a)]
        lines.append(gen.pad() + "break;")
        gen.indent -= 1
        lines.append(gen.pad() + "default:")
        gen.indent += 1
        lines += [render(s, gen, counter + i) for i, s in enumerate(arm_b)]
        gen.indent -= 1
        lines.append(gen.pad() + "}")
        return "\n".join(lines)
    raise AssertionError(node)


@st.composite
def programs(draw):
    body_nodes = draw(st.lists(statements(2), min_size=1, max_size=6))
    gen = _Gen()
    body = "\n".join(
        render(node, gen, index * 7) for index, node in enumerate(body_nodes)
    )
    return f"""
int g = 3;
int buf[6];

int helper(int x) {{
    return x * 2 + 1;
}}

int main() {{
    int acc = 1;
{body}
    print(acc % 100000);
    print(g % 100000);
    return 0;
}}
"""


@given(programs())
@settings(max_examples=60, deadline=None)
def test_fuzzed_programs_compile_and_run_deterministically(source):
    module = compile_source(source)
    assert verify_module(module)
    first = run_module(module)
    second = run_module(module)
    assert first.output == second.output


@given(programs())
@settings(max_examples=25, deadline=None)
def test_fuzzed_programs_pass_sc_model_checking(source):
    from repro.api import check_module

    module = compile_source(source)
    result = check_module(module, model="sc", max_steps=20_000)
    assert result.ok
    assert not result.truncated


@given(programs())
@settings(max_examples=25, deadline=None)
def test_fuzzed_programs_survive_all_porters(source):
    module = compile_source(source)
    expected = run_module(module).output
    for level in PortingLevel:
        ported, _report = port_module(module, level)
        assert verify_module(ported)
        assert run_module(ported).output == expected, level.value
