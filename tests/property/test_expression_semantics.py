"""Property-based tests: Mini-C expression semantics vs a Python oracle.

Random expression trees are rendered to Mini-C, executed on the VM, and
compared against a Python evaluator implementing C semantics (truncating
division, 0/1 comparisons).  This exercises the lexer, parser, semantic
analysis, lowering and the interpreter in one pass.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source
from repro.vm.interp import run_module


class Node:
    def __init__(self, op, left=None, right=None, value=None):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self):
        if self.op == "lit":
            if self.value < 0:
                return f"(0 - {-self.value})"
            return str(self.value)
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self):
        if self.op == "lit":
            return self.value
        left = self.left.evaluate()
        right = self.right.evaluate()
        if left is None or right is None:
            return None  # division by zero somewhere below
        op = self.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None
            q = abs(left) // abs(right)
            return -q if (left < 0) != (right < 0) else q
        if op == "%":
            if right == 0:
                return None
            q = abs(left) // abs(right)
            q = -q if (left < 0) != (right < 0) else q
            return left - right * q
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << (right & 63)
        if op == ">>":
            return left >> (right & 63)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise AssertionError(op)


_OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
        "==", "!=", "<", ">", "<=", ">="]


def expr_trees():
    literals = st.integers(min_value=-50, max_value=50).map(
        lambda v: Node("lit", value=v)
    )
    return st.recursive(
        literals,
        lambda children: st.builds(
            Node, st.sampled_from(_OPS), children, children
        ),
        max_leaves=12,
    )


@given(expr_trees())
@settings(max_examples=120, deadline=None)
def test_expression_matches_python_oracle(tree):
    expected = tree.evaluate()
    if expected is None:
        return  # division by zero: undefined, skipped
    source = f"int main() {{ print({tree.render()}); return 0; }}"
    result = run_module(compile_source(source))
    assert result.output == [expected]


@given(expr_trees())
@settings(max_examples=60, deadline=None)
def test_expression_agrees_between_vm_and_model_checker(tree):
    expected = tree.evaluate()
    if expected is None:
        return
    source = (
        f"int main() {{ assert(({tree.render()}) == "
        f"({Node('lit', value=0).render() if expected == 0 else expected if expected > 0 else f'(0 - {-expected})'})); "
        "return 0; }"
    )
    from repro.api import check_module

    module = compile_source(source)
    for model in ("sc", "tso", "wmm"):
        result = check_module(module, model=model, max_steps=2000)
        assert result.ok, f"{model}: {result.violation}"
