"""Property-based tests of memory semantics and porting safety.

Random single-threaded write/read sequences over globals, arrays and
struct fields must produce the same final state on the VM regardless of
which porter transformed the module — porting changes *ordering
guarantees*, never single-threaded meaning.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.ir.printer import print_module
from repro.vm.interp import run_module

SLOTS = 6


@st.composite
def write_programs(draw):
    """A random series of writes/updates over globals and an array."""
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["set_g", "set_a", "bump_g", "copy",
                                 "set_f", "mix"]),
                st.integers(min_value=0, max_value=SLOTS - 1),
                st.integers(min_value=-20, max_value=20),
            ),
            min_size=1,
            max_size=12,
        )
    )
    lines = []
    for op, index, value in operations:
        if op == "set_g":
            lines.append(f"g = {value};")
        elif op == "set_a":
            lines.append(f"a[{index}] = {value};")
        elif op == "bump_g":
            lines.append(f"g = g + {value};")
        elif op == "copy":
            lines.append(f"a[{index}] = g;")
        elif op == "set_f":
            lines.append(f"s.f{index % 3} = {value};")
        elif op == "mix":
            lines.append(f"g = a[{index}] + s.f{index % 3};")
    body = "\n    ".join(lines)
    checksum = " + ".join(
        [f"a[{i}] * {i + 1}" for i in range(SLOTS)]
        + ["g * 101", "s.f0 * 7", "s.f1 * 11", "s.f2 * 13"]
    )
    return f"""
struct rec {{ int f0; int f1; int f2; }};
int g = 0;
int a[{SLOTS}];
struct rec s;
int main() {{
    {body}
    print({checksum});
    return 0;
}}
"""


@given(write_programs())
@settings(max_examples=80, deadline=None)
def test_porting_preserves_single_threaded_semantics(source):
    module = compile_source(source)
    expected = run_module(module).output
    for level in (PortingLevel.ATOMIG, PortingLevel.NAIVE,
                  PortingLevel.LASAGNE, PortingLevel.EXPL):
        ported, _report = port_module(module, level)
        assert run_module(ported).output == expected, level.value


@given(write_programs())
@settings(max_examples=40, deadline=None)
def test_clone_roundtrip_preserves_printed_ir(source):
    module = compile_source(source, "m")
    clone = module.clone()
    assert print_module(clone) == print_module(module)


@given(write_programs())
@settings(max_examples=30, deadline=None)
def test_vm_and_model_checker_agree_single_threaded(source):
    """For deterministic programs, the SC machine's unique execution
    matches the VM's (same print output, no violations)."""
    from repro.api import check_module

    module = compile_source(source)
    vm_output = run_module(module).output
    result = check_module(module, model="sc", max_steps=4000)
    assert result.ok


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=-10, max_value=10))
@settings(max_examples=40, deadline=None)
def test_loop_summation_matches_closed_form(count, base):
    base_text = f"(0 - {-base})" if base < 0 else str(base)
    source = f"""
int main() {{
    int sum = 0;
    for (int i = 0; i < {count}; i++) {{ sum = sum + i + {base_text}; }}
    print(sum);
    return 0;
}}
"""
    expected = sum(i + base for i in range(count))
    assert run_module(compile_source(source)).output == [expected]
