"""Property-based verdict identity: source-DPOR vs sleep-set backend.

The DPOR explorer is only admissible as a drop-in reduction (and the
oracle cache is only allowed to ignore ``por`` in its keys) if every
backend returns the same verdict on every program.  These properties
pin that across three axes the hand-written tests cannot enumerate:

1. The litmus gallery under random (model, engine) combinations.
2. The weakened-litmus templates under *random memory-order
   assignments* — loads drawn from {relaxed, acquire, seq_cst}, stores
   from {relaxed, release, seq_cst} — which exercises every mix of
   immediate (SC/TSO) and windowed (WMM) operations, the boundary the
   footprinted-visible-step dependence in :mod:`repro.mc.dpor` lives
   on.
3. Both exploration engines, so the journaled ``OP_CLK`` clock-table
   reverts are checked against the clone engine's structural copies.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a CI dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.api import compile_source
from repro.mc.explorer import ENGINES, check_module
from repro.mc.litmus import (
    LITMUS_TESTS,
    WEAKENED_LITMUS,
    run_weakened_litmus,
)

BOUNDS = dict(max_steps=600, max_states=400_000)
MODELS = ("sc", "tso", "wmm")
LOAD_ORDERS = ("memory_order_relaxed", "memory_order_acquire",
               "memory_order_seq_cst")
STORE_ORDERS = ("memory_order_relaxed", "memory_order_release",
                "memory_order_seq_cst")

_MODULES = {}


def _litmus_module(name):
    if name not in _MODULES:
        source, _expected = LITMUS_TESTS[name]
        _MODULES[name] = compile_source(source, f"litmus_{name}")
    return _MODULES[name]


def _signature(result):
    """What identity means: outcome class and truncation agree."""
    return (result.outcome, result.truncated)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(LITMUS_TESTS)),
    model=st.sampled_from(MODELS),
    engine=st.sampled_from(ENGINES),
)
def test_litmus_gallery_identity(name, model, engine):
    module = _litmus_module(name)
    sleep = check_module(module, model=model, por="sleep", engine=engine,
                         **BOUNDS)
    dpor = check_module(module, model=model, por="dpor", engine=engine,
                        **BOUNDS)
    assert _signature(sleep) == _signature(dpor)
    # The gallery's expected verdicts double as an absolute anchor, so
    # a bug shared by both backends cannot hide behind the identity.
    _source, expected = LITMUS_TESTS[name]
    assert dpor.ok == expected[model]


@st.composite
def weakened_variants(draw):
    """A weakened-litmus template with a random valid order assignment.

    Template keys starting with ``r`` name loads, the rest stores; the
    pools keep the IR well-formed (loads cannot be release, stores
    cannot be acquire).
    """
    name = draw(st.sampled_from(sorted(WEAKENED_LITMUS)))
    _template, minimal, _too_weak = WEAKENED_LITMUS[name]
    overrides = {
        key: draw(st.sampled_from(
            LOAD_ORDERS if key.startswith("r") else STORE_ORDERS
        ))
        for key in sorted(minimal)
    }
    return name, overrides


@settings(max_examples=60, deadline=None)
@given(variant=weakened_variants(), model=st.sampled_from(MODELS))
def test_weakened_random_orders_identity(variant, model):
    name, overrides = variant
    sleep = run_weakened_litmus(name, overrides, model, por="sleep",
                                **BOUNDS)
    dpor = run_weakened_litmus(name, overrides, model, por="dpor",
                               **BOUNDS)
    assert _signature(sleep) == _signature(dpor), (name, model, overrides)


@settings(max_examples=25, deadline=None)
@given(variant=weakened_variants(), model=st.sampled_from(MODELS))
def test_dpor_engines_agree_on_random_orders(variant, model):
    """Clock-table journaling: in-place DPOR == clone DPOR, counts too."""
    name, overrides = variant
    results = [
        run_weakened_litmus(name, overrides, model, por="dpor",
                            engine=engine, **BOUNDS)
        for engine in ENGINES
    ]
    reference = results[0]
    for result in results[1:]:
        assert _signature(result) == _signature(reference)
        assert result.states_explored == reference.states_explored
        assert (result.stats.states_visited
                == reference.stats.states_visited)
        assert (result.stats.races_detected
                == reference.stats.races_detected)
        assert (result.stats.backtrack_points
                == reference.stats.backtrack_points)


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(sorted(LITMUS_TESTS)),
    model=st.sampled_from(MODELS),
)
def test_dpor_matches_unreduced_enumeration(name, model):
    """DPOR agrees with the unreduced explorer, the ground truth that
    owes nothing to sleep sets or macro-stepping.  (No state-count
    comparison: the enumerator dedups across branches, which stateless
    DPOR deliberately cannot, so neither count bounds the other.)"""
    module = _litmus_module(name)
    full = check_module(module, model=model, por="none", macro="off",
                        **BOUNDS)
    dpor = check_module(module, model=model, por="dpor", **BOUNDS)
    assert _signature(full) == _signature(dpor)
