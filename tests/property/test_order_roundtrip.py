"""Property test: every MemoryOrder round-trips printer -> parser.

The barrier optimizer emits orders the blanket-SC pipeline never
printed before (ACQUIRE / RELEASE / CONSUME / ACQ_REL on accesses,
non-SC fences), and its parallel bisection ships modules between
processes as printed IR — so the printer/parser pair must preserve
every verifier-legal order exactly, and the verifier must reject the
illegal combinations loudly (they would silently change semantics).
"""

import pytest

from repro.api import compile_source
from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module

SOURCE = """
_Atomic int a;
int main() {
    atomic_store_explicit(&a, 2, memory_order_release);
    int x = atomic_load_explicit(&a, memory_order_acquire);
    int y = atomic_fetch_add_explicit(&a, 1, memory_order_relaxed);
    int z = atomic_cmpxchg_explicit(&a, 3, 4, memory_order_seq_cst);
    atomic_thread_fence(memory_order_seq_cst);
    return x + y + z;
}
"""

KINDS = {
    "load": ins.Load,
    "store": ins.Store,
    "rmw": ins.AtomicRMW,
    "cmpxchg": ins.Cmpxchg,
    "fence": ins.Fence,
}

#: Verifier-legal orders per access kind (the complement must raise).
VALID_ORDERS = {
    "load": frozenset(MemoryOrder) - {
        MemoryOrder.RELEASE, MemoryOrder.ACQ_REL,
    },
    "store": frozenset(MemoryOrder) - {
        MemoryOrder.CONSUME, MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL,
    },
    "rmw": frozenset(MemoryOrder),
    "cmpxchg": frozenset(MemoryOrder),
    "fence": frozenset({
        MemoryOrder.ACQUIRE, MemoryOrder.RELEASE,
        MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST,
    }),
}


def _module_with(kind, order):
    """A fresh module whose first ``kind`` access carries ``order``."""
    module = compile_source(SOURCE, "orders")
    target = next(
        instr for instr in module.functions["main"].instructions()
        if isinstance(instr, KINDS[kind])
    )
    target.order = order
    return module


def _order_of(module, kind):
    return next(
        instr.order
        for instr in module.functions["main"].instructions()
        if isinstance(instr, KINDS[kind])
    )


@pytest.mark.parametrize("kind", sorted(KINDS))
@pytest.mark.parametrize("order", list(MemoryOrder))
def test_every_order_roundtrips_or_is_rejected(kind, order):
    module = _module_with(kind, order)
    if order in VALID_ORDERS[kind]:
        verify_module(module)
        text = print_module(module)
        reparsed = parse_module(text)  # parse_module also verifies
        assert _order_of(reparsed, kind) is order
        assert print_module(reparsed) == text
    else:
        with pytest.raises(IRError):
            verify_module(module)


@pytest.mark.parametrize(
    "kind,bad",
    [
        ("load", MemoryOrder.RELEASE),
        ("load", MemoryOrder.ACQ_REL),
        ("store", MemoryOrder.ACQUIRE),
        ("store", MemoryOrder.CONSUME),
        ("fence", MemoryOrder.RELAXED),
    ],
)
def test_invalid_orders_rejected_in_ir_text(kind, bad):
    """The parser's verify pass rejects illegal printed orders too."""
    module = _module_with(kind, MemoryOrder.SEQ_CST)
    text = print_module(module)
    if kind == "fence":
        spelled, spliced = "fence seq_cst", f"fence {bad.name.lower()}"
    else:
        opcode = "load" if kind == "load" else "store"
        spelled = f"{opcode} atomic(seq_cst)"
        spliced = f"{opcode} atomic({bad.name.lower()})"
    assert spelled in text
    with pytest.raises(IRError):
        parse_module(text.replace(spelled, spliced))
