"""Property-based robustness tests for the frontend.

The lexer and parser must be total over their input domains: valid
constructions always round-trip; arbitrary text never crashes with
anything other than the dedicated source-error types.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LexerError, ParseError, SemanticError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.lang.tokens import KEYWORDS, TokenKind

identifiers = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)


@given(st.lists(st.one_of(
    identifiers,
    st.integers(min_value=0, max_value=10**9).map(str),
    st.sampled_from(["+", "-", "*", "/", "==", "<=", "->", "++", "(", ")",
                     "{", "}", ";", ",", "&&", "||", "<<="]),
    st.sampled_from(sorted(KEYWORDS)),
), max_size=30))
@settings(max_examples=150, deadline=None)
def test_token_stream_roundtrips(parts):
    source = " ".join(parts)
    tokens = tokenize(source)
    assert tokens[-1].kind is TokenKind.EOF
    # Re-lexing the concatenated token texts yields the same kinds.
    rebuilt = " ".join(t.text for t in tokens[:-1])
    again = tokenize(rebuilt)
    assert [t.kind for t in again] == [t.kind for t in tokens]


@given(st.integers(min_value=-(2**40), max_value=2**40))
@settings(max_examples=80, deadline=None)
def test_integer_literals_lex_exactly(value):
    text = str(abs(value))
    token = tokenize(text)[0]
    assert token.value == abs(value)


@given(st.text(max_size=60))
@settings(max_examples=200, deadline=None)
def test_arbitrary_text_never_crashes_the_frontend(text):
    """Only the dedicated SourceError family may escape."""
    try:
        analyze(parse(text))
    except (LexerError, ParseError, SemanticError):
        pass  # rejected cleanly


@given(st.text(alphabet="(){};=intvoidwhile \n", max_size=80))
@settings(max_examples=150, deadline=None)
def test_c_flavored_soup_never_crashes(text):
    try:
        analyze(parse(text))
    except (LexerError, ParseError, SemanticError):
        pass


@given(identifiers, st.integers(min_value=-1000, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_global_declarations_roundtrip(name, value):
    init = f"(0 - {-value})" if value < 0 else str(value)
    program = analyze(parse(f"int {name} = {init if value >= 0 else value};"))
    decl = program.globals[0]
    assert decl.name == name
