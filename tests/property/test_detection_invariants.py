"""Property-based tests of the detection passes' core invariants.

1. Loops whose exits depend only on local state are never spinloops —
   the false-positive direction the paper's definition is built to
   avoid (Figure 3's non-examples, generalized).
2. Loops spinning on a global with no in-loop local interference are
   always detected, whatever body filler surrounds them.
3. Porting is deterministic: same module, same report.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source, port_module
from repro.core.config import PortingLevel
from repro.core.spinloops import detect_spinloops

_FILLERS = [
    "acc = acc + {k};",
    "acc = acc * 3 % 1000;",
    "scratch[{k} % 4] = acc;",
    "acc = acc ^ scratch[{k} % 4];",
    "if (acc > 100) {{ acc = acc - 50; }}",
]


@st.composite
def local_loops(draw):
    """A for-loop with a local bound and random local-only body."""
    bound = draw(st.integers(min_value=1, max_value=20))
    fillers = draw(st.lists(st.sampled_from(_FILLERS), max_size=4))
    body = "\n        ".join(
        filler.format(k=index + 1) for index, filler in enumerate(fillers)
    )
    return f"""
int global_noise;
int main() {{
    int acc = 0;
    int scratch[4];
    for (int i = 0; i < {bound}; i++) {{
        {body}
    }}
    global_noise = acc;
    return acc;
}}
"""


@given(local_loops())
@settings(max_examples=60, deadline=None)
def test_local_loops_are_never_spinloops(source):
    module = compile_source(source)
    result = detect_spinloops(module)
    assert result.spinloops == []


@st.composite
def spin_programs(draw):
    """A genuine global-flag spinloop surrounded by random filler."""
    fillers = draw(st.lists(st.sampled_from(_FILLERS), max_size=3))
    pre = "\n    ".join(
        filler.format(k=index + 1) for index, filler in enumerate(fillers)
    )
    flavor = draw(st.sampled_from([
        "while (flag == 0) { }",
        "while (flag != 1) { cpu_relax(); }",
        "do { } while (flag == 0);",
    ]))
    return f"""
int flag;
int main() {{
    int acc = 7;
    int scratch[4];
    {pre}
    {flavor}
    return acc;
}}
"""


@given(spin_programs())
@settings(max_examples=60, deadline=None)
def test_global_spinloops_always_detected(source):
    module = compile_source(source)
    result = detect_spinloops(module)
    assert len(result.spinloops) == 1
    assert ("global", "flag") in result.control_keys


@given(spin_programs())
@settings(max_examples=25, deadline=None)
def test_porting_is_deterministic(source):
    module = compile_source(source)
    _p1, report1 = port_module(module, PortingLevel.ATOMIG)
    _p2, report2 = port_module(module, PortingLevel.ATOMIG)
    assert report1.spinloops == report2.spinloops
    assert report1.spin_controls == report2.spin_controls
    assert (
        report1.ported_implicit_barriers == report2.ported_implicit_barriers
    )
