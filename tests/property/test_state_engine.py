"""Property tests: the fast-state engine is bit-identical to the clone path.

Three guarantees underpin the in-place explorer (DESIGN.md §6f), and
each is asserted here over random walks through the litmus gallery:

- **Encoding fidelity.**  The compact byte encoding + incremental
  digest must induce exactly the partition ``State.canonical()``
  induces: equal canonicals ⇔ equal digests, and the memoized
  incremental digest must always equal a from-scratch recomputation
  (``state_digest_fresh`` additionally cross-checks the Zobrist memory
  hash against the live memory image).
- **Undo-log fidelity.**  Applying any enabled action and reverting the
  journal to the pre-action mark must restore the state *bit-identically*
  — same canonical form, same digest, and same digest caches (the
  post-revert incremental digest is recomputed fresh and must agree).
- **Clone equivalence.**  A ``State.clone()`` taken before the action
  is the reference restore path; the reverted state must match the
  clone's canonical form and digest exactly.

The walks drive the real :class:`Machine` with a journal installed —
the same configuration the in-place engine runs — so every journal
opcode reachable from the gallery programs is exercised.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - baked into the CI image
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.api import compile_source
from repro.mc.encode import state_digest, state_digest_fresh
from repro.mc.litmus import LITMUS_TESTS
from repro.mc.machine import Context, Machine
from repro.mc.models import get_model
from repro.mc.undo import revert

GALLERY = sorted(LITMUS_TESTS)
MODELS = ("sc", "tso", "wmm")

# One machine per (litmus, model): compiling dominates the walk cost
# and hypothesis replays hundreds of examples.
_MACHINES = {}


def _machine(name, model):
    key = (name, model)
    machine = _MACHINES.get(key)
    if machine is None:
        source, _expected = LITMUS_TESTS[name]
        module = compile_source(source, name=f"litmus_{name}")
        machine = Machine(Context(module, get_model(model)), max_steps=300)
        machine.journal = []
        _MACHINES[key] = machine
    return machine


def _assert_bit_identical(state, interner, canon, digest):
    """The state must match the reference snapshot, caches included."""
    assert state.canonical() == canon
    assert state_digest(state, interner) == digest
    # A fresh recomputation double-checks that the *caches* were also
    # restored correctly (a stale thread encoding or memory hash would
    # make incremental and fresh digests diverge).
    assert state_digest_fresh(state, interner) == digest


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(GALLERY),
    model=st.sampled_from(MODELS),
    choices=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                     min_size=1, max_size=25),
)
def test_undo_restores_bit_identical_states(name, model, choices):
    """apply + revert == identity, at every step of a random walk."""
    machine = _machine(name, model)
    interner = machine.ctx.interner
    journal = machine.journal
    del journal[:]
    state = machine.initial_state()

    for choice in choices:
        if state.violation is not None:
            break
        actions = machine.enabled_actions(state)
        if not actions:
            break
        action = actions[choice % len(actions)]

        reference = state.clone()
        canon = state.canonical()
        digest = state_digest(state, interner)
        # The clone is content-identical, so it digests identically —
        # and digesting it must not disturb the original's caches.
        assert reference.canonical() == canon
        assert state_digest(reference, interner) == digest

        mark = len(journal)
        machine.apply_action(state, action)
        # The mutated state's incremental digest is trustworthy.
        after = state_digest(state, interner)
        assert state_digest_fresh(state, interner) == after

        revert(state, journal, mark)
        _assert_bit_identical(state, interner, canon, digest)
        # ... and against the clone path explicitly.
        assert state.canonical() == reference.canonical()

        machine.apply_action(state, action)  # replay and walk on
        assert state_digest(state, interner) == after


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(GALLERY),
    model=st.sampled_from(MODELS),
    choices=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                     min_size=0, max_size=25),
)
def test_digest_equality_matches_canonical_equality(name, model, choices):
    """digest(a) == digest(b) ⇔ canonical(a) == canonical(b)."""
    machine = _machine(name, model)
    interner = machine.ctx.interner
    del machine.journal[:]
    state = machine.initial_state()

    seen = {}  # digest -> canonical
    for choice in choices + [0]:
        canon = state.canonical()
        digest = state_digest(state, interner)
        if digest in seen:
            assert seen[digest] == canon
        else:
            # No other recorded canonical may share this digest, and no
            # other digest may have produced this canonical.
            assert canon not in seen.values()
            seen[digest] = canon
        if state.violation is not None:
            break
        actions = machine.enabled_actions(state)
        if not actions:
            break
        machine.apply_action(state, actions[choice % len(actions)])


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(GALLERY),
    model=st.sampled_from(MODELS),
    choices=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                     min_size=1, max_size=12),
    depth=st.integers(min_value=1, max_value=12),
)
def test_multi_level_revert(name, model, choices, depth):
    """Reverting across several actions at once restores the DFS root.

    The explorer reverts to arbitrary ancestor marks when it pops
    across subtrees, not just to the immediate parent; this drives a
    multi-action prefix and unwinds it in one revert.
    """
    machine = _machine(name, model)
    interner = machine.ctx.interner
    journal = machine.journal
    del journal[:]
    state = machine.initial_state()

    root_canon = state.canonical()
    root_digest = state_digest(state, interner)
    root_mark = len(journal)

    applied = 0
    for choice in choices:
        if applied >= depth or state.violation is not None:
            break
        actions = machine.enabled_actions(state)
        if not actions:
            break
        machine.apply_action(state, actions[choice % len(actions)])
        applied += 1

    revert(state, journal, root_mark)
    _assert_bit_identical(state, interner, root_canon, root_digest)
