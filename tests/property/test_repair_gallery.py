"""Property test: static fence repair always restores robustness.

For every weakened-litmus gallery entry and *any* verifier-legal order
assignment over its slots, ``repair_module`` must return a robust
module, the recorded actions must replay deterministically onto a
fresh compile, and the synthesized cost must never exceed the blanket
all-SC assignment — repair is a minimization, not just a fix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.repair import repair_module
from repro.analysis.robustness import analyze_robustness
from repro.api import compile_source
from repro.ir.printer import print_module
from repro.mc.litmus import WEAKENED_LITMUS, weakened_source
from repro.vm.costs import cost_model_for, estimate_cost

STORE_ORDERS = ("memory_order_relaxed", "memory_order_release",
                "memory_order_seq_cst")
LOAD_ORDERS = ("memory_order_relaxed", "memory_order_acquire",
               "memory_order_seq_cst")


@st.composite
def gallery_assignments(draw):
    """(name, overrides): any legal orders for one gallery entry."""
    name = draw(st.sampled_from(sorted(WEAKENED_LITMUS)))
    _template, minimal, _too_weak = WEAKENED_LITMUS[name]
    overrides = {
        slot: draw(st.sampled_from(
            STORE_ORDERS if slot.startswith("w") else LOAD_ORDERS
        ))
        for slot in sorted(minimal)
    }
    return name, overrides


def _compile(name, overrides):
    return compile_source(weakened_source(name, overrides), name)


@given(gallery_assignments())
@settings(max_examples=50, deadline=None)
def test_repair_always_restores_robustness(assignment):
    name, overrides = assignment
    repaired, report = repair_module(_compile(name, overrides),
                                     model="wmm")
    assert report.robust_after, report.render()
    assert analyze_robustness(repaired, model="wmm").robust


@given(gallery_assignments())
@settings(max_examples=25, deadline=None)
def test_repair_replays_and_never_exceeds_blanket_sc(assignment):
    name, overrides = assignment
    model = cost_model_for("armv8")
    repaired, report = repair_module(_compile(name, overrides),
                                     model="wmm", arch="armv8")
    # Replay: the recorded actions reproduce the repair exactly.
    fresh = _compile(name, overrides)
    report.apply(fresh)
    assert print_module(fresh) == print_module(repaired)
    # Minimality bound: never costlier than forcing every slot to SC.
    _template, minimal, _too_weak = WEAKENED_LITMUS[name]
    all_sc = _compile(name, {slot: "memory_order_seq_cst"
                             for slot in minimal})
    sc_cost = estimate_cost(all_sc, model).barriers
    assert report.barrier_cost_after <= sc_cost, (
        f"{name}: repair {report.barrier_cost_after} > blanket SC "
        f"{sc_cost} for {overrides}"
    )
