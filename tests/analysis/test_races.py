"""Tests for the static race classifier behind ``atomig lint``."""

from repro.analysis.races import AccessClass, classify_module
from repro.api import compile_source

TAS_PROGRAM = """
int lock_word = 0;
int counter = 0;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}

void worker() {
    lock();
    counter = counter + 1;
    unlock();
}

void thread_fn() {
    worker();
}

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    assert(counter == 2);
    return counter;
}
"""

MESSAGE_PASSING = """
int flag = 0;
int msg = 0;

void sender() {
    msg = 42;
    flag = 1;
}

int main() {
    int t = thread_create(sender);
    while (flag == 0) { cpu_relax(); }
    int m = msg;
    thread_join(t);
    assert(m == 42);
    return m;
}
"""


def _classes_for(report, global_name):
    return {
        finding.classification
        for finding in report.findings
        if finding.key == ("global", global_name)
    }


def test_message_passing_accesses_are_racy():
    report = classify_module(compile_source(MESSAGE_PASSING))
    assert _classes_for(report, "flag") == {AccessClass.RACY}
    assert _classes_for(report, "msg") == {AccessClass.RACY}
    assert not report.protected_instructions()


def test_tas_protected_and_lock_classification():
    report = classify_module(compile_source(TAS_PROGRAM))
    assert _classes_for(report, "lock_word") == {AccessClass.LOCK}
    assert _classes_for(report, "counter") == {AccessClass.PROTECTED}
    protected = [
        f for f in report.findings
        if f.classification is AccessClass.PROTECTED
    ]
    assert all(f.confidence == "structural" for f in protected)
    assert report.protected_instructions()


def test_post_join_accesses_are_not_concurrent():
    report = classify_module(compile_source(TAS_PROGRAM))
    main_counter = [
        f for f in report.findings
        if f.function == "main" and f.key == ("global", "counter")
    ]
    assert main_counter
    # The assert runs after thread_join: no other thread is live, so
    # its lock-free read cannot break the key's protected verdict.
    assert all(not f.concurrent for f in main_counter)


def test_unshared_when_no_threads_exist():
    report = classify_module(compile_source("""
int g = 0;
void bump() { g = g + 1; }
int main() { bump(); bump(); return g; }
"""))
    assert _classes_for(report, "g") == {AccessClass.UNSHARED}


def test_read_only_shared_data():
    report = classify_module(compile_source("""
int config = 7;
int out_a = 0;
int out_b = 0;

void reader() { out_a = config; }

int main() {
    int t = thread_create(reader);
    out_b = config;
    thread_join(t);
    return out_b;
}
"""))
    assert _classes_for(report, "config") == {AccessClass.READ_ONLY}


def test_heuristic_protection_is_not_pruning_grade():
    report = classify_module(compile_source("""
int owner = 0;
int counter = 0;

void my_lock() {
    while (atomic_exchange_explicit(&owner, 1, memory_order_relaxed) == 1) {
        cpu_relax();
    }
}

void my_unlock() { owner = 0; }

void thread_fn() { my_lock(); counter = counter + 1; my_unlock(); }

int main() {
    int t = thread_create(thread_fn);
    my_lock();
    counter = counter + 1;
    my_unlock();
    thread_join(t);
    return counter;
}
"""))
    protected = [
        f for f in report.findings
        if f.classification is AccessClass.PROTECTED
    ]
    assert protected
    assert all(f.confidence == "heuristic" for f in protected)
    assert "review" in protected[0].remediation
    # Heuristic findings are reported but never offered for pruning.
    assert not report.protected_instructions(structural_only=True)
    assert report.protected_instructions(structural_only=False)


def test_uncalled_function_is_unreachable():
    report = classify_module(compile_source("""
int g = 0;
void dead() { g = 5; }
int main() { g = 1; return g; }
"""))
    dead = [f for f in report.findings if f.function == "dead"]
    assert dead
    assert all(
        f.classification is AccessClass.UNREACHABLE for f in dead
    )
    # The dead write does not poison main's verdict.
    live = [f for f in report.findings if f.function == "main"]
    assert all(
        f.classification is AccessClass.UNSHARED for f in live
    )


def test_inconsistent_locking_is_racy():
    report = classify_module(compile_source("""
int lock_word = 0;
int counter = 0;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() { lock_word = 0; }

void careful() { lock(); counter = counter + 1; unlock(); }
void sloppy() { counter = counter + 1; }

void thread_fn() { careful(); }

int main() {
    int t = thread_create(thread_fn);
    sloppy();
    thread_join(t);
    return counter;
}
"""))
    # One lock-free concurrent writer empties the common lockset.
    assert _classes_for(report, "counter") == {AccessClass.RACY}


def test_counts_and_report_shape():
    report = classify_module(compile_source(TAS_PROGRAM))
    counts = report.counts()
    assert counts["lock"] >= 2
    assert counts["protected"] >= 2
    assert sum(counts.values()) == len(report.findings)
    for finding in report.findings:
        assert finding.location().startswith(f"@{finding.function}/")
        assert finding.remediation
