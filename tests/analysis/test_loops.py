"""Tests for natural-loop detection and exit-condition extraction."""

from repro.analysis.loops import find_loops
from repro.api import compile_source
from repro.ir import instructions as ins


def loops_of(source, name="main"):
    fn = compile_source(source).functions[name]
    return fn, find_loops(fn)


def test_straight_line_code_has_no_loops():
    _fn, loops = loops_of("int main() { int x = 1; return x; }")
    assert loops == []


def test_while_loop_found():
    fn, loops = loops_of("""
int g;
int main() { while (g) { } return 0; }
""")
    assert len(loops) == 1
    assert loops[0].header.label.startswith("while.cond")
    assert loops[0].header in loops[0].body


def test_for_loop_body_blocks():
    _fn, loops = loops_of("""
int main() {
    int s = 0;
    for (int i = 0; i < 3; i++) { s = s + i; }
    return s;
}
""")
    assert len(loops) == 1
    labels = {block.label.split("0")[0].rstrip("123456789") for block in loops[0].body}
    assert any("for.body" in block.label for block in loops[0].body)
    assert any("for.step" in block.label for block in loops[0].body)


def test_nested_loops_found_separately():
    _fn, loops = loops_of("""
int g;
int main() {
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) { g = g + 1; }
    }
    return g;
}
""")
    assert len(loops) == 2
    inner = min(loops, key=lambda l: len(l.body))
    outer = max(loops, key=lambda l: len(l.body))
    assert inner.body < outer.body  # inner nested inside outer


def test_do_while_loop_found():
    _fn, loops = loops_of("""
int g;
int main() { int x; do { x = g; } while (x == 0); return x; }
""")
    assert len(loops) == 1


def test_exit_conditions_simple_while():
    _fn, loops = loops_of("""
int g;
int main() { while (g != 1) { } return 0; }
""")
    conditions = loops[0].exit_conditions()
    assert len(conditions) == 1
    assert isinstance(conditions[0], ins.BinOp)
    assert conditions[0].op == "!="


def test_exit_conditions_include_break_guard():
    _fn, loops = loops_of("""
int g;
int main() {
    while (1) {
        if (g == 7) { break; }
    }
    return 0;
}
""")
    conditions = loops[0].exit_conditions()
    assert len(conditions) == 1
    assert conditions[0].op == "=="


def test_exit_conditions_two_exits():
    _fn, loops = loops_of("""
int g; int h;
int main() {
    for (int i = 0; i < 100; i++) {
        if (g == 1) { break; }
    }
    return 0;
}
""")
    conditions = loops[0].exit_conditions()
    ops = sorted(c.op for c in conditions)
    assert ops == ["<", "=="]


def test_infinite_loop_has_no_exit_conditions():
    _fn, loops = loops_of("""
int g;
int main() {
    while (1) { g = g + 1; }
    return 0;
}
""")
    assert len(loops) == 1
    assert loops[0].exit_conditions() == []


def test_loop_contains_instruction():
    fn, loops = loops_of("""
int g;
int main() { while (g) { g = g - 1; } return 0; }
""")
    loop = loops[0]
    in_loop = [i for i in loop.instructions() if isinstance(i, ins.Store)]
    assert in_loop
    assert all(loop.contains(i) for i in in_loop)
