"""Tests for the call graph and recursion detection."""

from repro.analysis.callgraph import CallGraph
from repro.api import compile_source


def test_direct_call_edges():
    module = compile_source("""
int leaf() { return 1; }
int mid() { return leaf(); }
int main() { return mid(); }
""")
    graph = CallGraph(module)
    assert graph.callees["main"] == {"mid"}
    assert graph.callees["mid"] == {"leaf"}
    assert graph.callers["leaf"] == {"mid"}


def test_thread_entries_tracked():
    module = compile_source("""
void worker() { }
int main() { int t = thread_create(worker); thread_join(t); return 0; }
""")
    graph = CallGraph(module)
    assert graph.thread_entries == {"worker"}
    assert graph.callees["main"] == set()


def test_self_recursion_detected():
    module = compile_source("""
int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
int main() { return fact(5); }
""")
    graph = CallGraph(module)
    assert graph.recursive_functions() == {"fact"}


def test_mutual_recursion_detected():
    module = compile_source("""
int is_odd(int n);
int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
int main() { return is_even(4); }
""")
    graph = CallGraph(module)
    assert graph.recursive_functions() == {"is_even", "is_odd"}


def test_non_recursive_graph_clean():
    module = compile_source("""
int a() { return 1; }
int b() { return a(); }
int main() { return a() + b(); }
""")
    graph = CallGraph(module)
    assert graph.recursive_functions() == set()


def test_call_sites_record_exact_positions():
    module = compile_source("""
int leaf() { return 1; }
int mid() { return leaf() + leaf(); }
int main() { return mid(); }
""")
    graph = CallGraph(module)
    sites = graph.sites_of("leaf")
    assert len(sites) == 2
    assert all(site.caller == "mid" for site in sites)
    for site in sites:
        block = module.functions["mid"].block_map()[site.block_label]
        assert block.instructions[site.index] is site.instr
        assert site.instr.callee.name == "leaf"
    # The two calls are distinct sites even when in the same block.
    assert len({(s.block_label, s.index) for s in sites}) == 2


def test_sites_in_lists_a_functions_own_calls():
    module = compile_source("""
int a() { return 1; }
int b() { return a(); }
int main() { return a() + b(); }
""")
    graph = CallGraph(module)
    assert {site.callee for site in graph.sites_in("main")} == {"a", "b"}
    assert {site.callee for site in graph.sites_in("b")} == {"a"}
    assert graph.sites_in("a") == []


def test_spawn_sites_are_separate_from_call_sites():
    module = compile_source("""
void worker() { }
int main() {
    int t = thread_create(worker);
    worker();
    thread_join(t);
    return 0;
}
""")
    graph = CallGraph(module)
    assert len(graph.spawn_sites) == 1
    spawn = graph.spawn_sites[0]
    assert (spawn.caller, spawn.callee) == ("main", "worker")
    # sites_of only returns plain calls; the spawn is not among them.
    assert len(graph.sites_of("worker")) == 1
    assert graph.sites_of("worker")[0].instr is not spawn.instr


def test_bottom_up_order_visits_callees_first():
    module = compile_source("""
int leaf() { return 1; }
int mid() { return leaf(); }
int main() { return mid(); }
""")
    graph = CallGraph(module)
    order = graph.bottom_up_order()
    assert order.index("leaf") < order.index("mid") < order.index("main")
    assert sorted(order) == sorted(module.functions)
