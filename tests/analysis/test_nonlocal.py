"""Tests for non-local classification, escape analysis and location keys."""

from repro.analysis.nonlocal_ import NonLocalInfo, gep_signature, pointer_root
from repro.api import compile_source
from repro.ir import instructions as ins
from repro.ir.values import GlobalVar


def loads_in(module, fn="main"):
    return [
        i for i in module.functions[fn].instructions()
        if isinstance(i, ins.Load)
    ]


def test_global_access_is_nonlocal():
    module = compile_source("int g;\nint main() { return g; }")
    info = NonLocalInfo(module.functions["main"])
    load = loads_in(module)[0]
    assert info.is_nonlocal_pointer(load.pointer)
    assert info.location_key(load.pointer) == ("global", "g")


def test_plain_local_is_local():
    module = compile_source("int main() { int x = 3; return x; }")
    info = NonLocalInfo(module.functions["main"])
    load = loads_in(module)[0]
    assert not info.is_nonlocal_pointer(load.pointer)
    assert info.location_key(load.pointer) is None


def test_argument_pointer_is_nonlocal():
    module = compile_source("int f(int *p) { return *p; }\nint main() { int x; return f(&x); }")
    info = NonLocalInfo(module.functions["f"])
    load = loads_in(module, "f")[-1]
    assert info.is_nonlocal_pointer(load.pointer)


def test_escaped_local_is_nonlocal():
    module = compile_source("""
void sink(int *p) { *p = 1; }
int main() { int x = 0; sink(&x); return x; }
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    root = pointer_root(final_load.pointer)
    assert isinstance(root, ins.Alloca)
    assert root in info.escaped
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_escape_through_gep():
    module = compile_source("""
void sink(int *p) { *p = 1; }
int main() { int arr[4]; sink(&arr[2]); return arr[2]; }
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_escape_through_stored_pointer():
    module = compile_source("""
int *holder;
int main() { int x = 0; holder = &x; return x; }
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_escape_through_return():
    module = compile_source("""
int *leak() { int y; return &y; }
int main() { return 0; }
""")
    info = NonLocalInfo(module.functions["leak"])
    assert len(info.escaped) == 1


def test_non_escaping_array_stays_local():
    module = compile_source("""
int main() {
    int buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = i; }
    return buf[3];
}
""")
    info = NonLocalInfo(module.functions["main"])
    for load in loads_in(module):
        root = pointer_root(load.pointer)
        if isinstance(root, ins.Alloca) and root.allocated_type.size == 8:
            assert not info.is_nonlocal_pointer(load.pointer)


def test_malloc_result_is_nonlocal():
    module = compile_source("""
int main() {
    int *p = (int *)malloc(4);
    *p = 1;
    return *p;
}
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_field_signature_shared_across_functions():
    module = compile_source("""
struct node { int a; int b; };
struct node pool[4];
int f(struct node *p) { return p->b; }
int main() { return pool[1].b + f(&pool[0]); }
""")
    f_load = loads_in(module, "f")[-1]
    main_loads = [
        l for l in loads_in(module)
        if gep_signature(l.pointer) is not None
    ]
    assert gep_signature(f_load.pointer) == ("field", "node", 1)
    assert any(
        gep_signature(l.pointer) == ("field", "node", 1) for l in main_loads
    )


def test_field_signatures_distinguish_offsets():
    module = compile_source("""
struct pair { int x; int y; };
struct pair p;
int main() { return p.x + p.y; }
""")
    signatures = {
        gep_signature(l.pointer) for l in loads_in(module)
        if gep_signature(l.pointer)
    }
    assert signatures == {("field", "pair", 0), ("field", "pair", 1)}


def test_nested_struct_field_offset():
    module = compile_source("""
struct inner { int a; int b; };
struct outer { int head; struct inner body; };
struct outer o;
int main() { return o.body.b; }
""")
    load = loads_in(module)[-1]
    # Innermost field step wins: field b of struct inner at offset 1.
    assert gep_signature(load.pointer) == ("field", "inner", 1)


def test_pointer_root_through_cast_and_gep():
    module = compile_source("""
struct n { int v; };
int g;
int main() {
    struct n *p = (struct n *)&g;
    return p->v;
}
""")
    load = loads_in(module)[-1]
    # p's value came from a load of the local alloca holding the cast
    # pointer, so the static root is that load.
    root = pointer_root(load.pointer)
    assert isinstance(root, (ins.Load, GlobalVar))
