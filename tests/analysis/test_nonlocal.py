"""Tests for non-local classification, escape analysis and location keys."""

from repro.analysis.nonlocal_ import NonLocalInfo, gep_signature, pointer_root
from repro.api import compile_source
from repro.ir import instructions as ins
from repro.ir.values import GlobalVar


def loads_in(module, fn="main"):
    return [
        i for i in module.functions[fn].instructions()
        if isinstance(i, ins.Load)
    ]


def test_global_access_is_nonlocal():
    module = compile_source("int g;\nint main() { return g; }")
    info = NonLocalInfo(module.functions["main"])
    load = loads_in(module)[0]
    assert info.is_nonlocal_pointer(load.pointer)
    assert info.location_key(load.pointer) == ("global", "g")


def test_plain_local_is_local():
    module = compile_source("int main() { int x = 3; return x; }")
    info = NonLocalInfo(module.functions["main"])
    load = loads_in(module)[0]
    assert not info.is_nonlocal_pointer(load.pointer)
    assert info.location_key(load.pointer) is None


def test_argument_pointer_is_nonlocal():
    module = compile_source("int f(int *p) { return *p; }\nint main() { int x; return f(&x); }")
    info = NonLocalInfo(module.functions["f"])
    load = loads_in(module, "f")[-1]
    assert info.is_nonlocal_pointer(load.pointer)


def test_escaped_local_is_nonlocal():
    module = compile_source("""
void sink(int *p) { *p = 1; }
int main() { int x = 0; sink(&x); return x; }
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    root = pointer_root(final_load.pointer)
    assert isinstance(root, ins.Alloca)
    assert root in info.escaped
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_escape_through_gep():
    module = compile_source("""
void sink(int *p) { *p = 1; }
int main() { int arr[4]; sink(&arr[2]); return arr[2]; }
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_escape_through_stored_pointer():
    module = compile_source("""
int *holder;
int main() { int x = 0; holder = &x; return x; }
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_escape_through_return():
    module = compile_source("""
int *leak() { int y; return &y; }
int main() { return 0; }
""")
    info = NonLocalInfo(module.functions["leak"])
    assert len(info.escaped) == 1


def test_non_escaping_array_stays_local():
    module = compile_source("""
int main() {
    int buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = i; }
    return buf[3];
}
""")
    info = NonLocalInfo(module.functions["main"])
    for load in loads_in(module):
        root = pointer_root(load.pointer)
        if isinstance(root, ins.Alloca) and root.allocated_type.size == 8:
            assert not info.is_nonlocal_pointer(load.pointer)


def test_malloc_result_is_nonlocal():
    module = compile_source("""
int main() {
    int *p = (int *)malloc(4);
    *p = 1;
    return *p;
}
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_field_signature_shared_across_functions():
    module = compile_source("""
struct node { int a; int b; };
struct node pool[4];
int f(struct node *p) { return p->b; }
int main() { return pool[1].b + f(&pool[0]); }
""")
    f_load = loads_in(module, "f")[-1]
    main_loads = [
        l for l in loads_in(module)
        if gep_signature(l.pointer) is not None
    ]
    assert gep_signature(f_load.pointer) == ("field", "node", 1)
    assert any(
        gep_signature(l.pointer) == ("field", "node", 1) for l in main_loads
    )


def test_field_signatures_distinguish_offsets():
    module = compile_source("""
struct pair { int x; int y; };
struct pair p;
int main() { return p.x + p.y; }
""")
    signatures = {
        gep_signature(l.pointer) for l in loads_in(module)
        if gep_signature(l.pointer)
    }
    assert signatures == {("field", "pair", 0), ("field", "pair", 1)}


def test_nested_struct_field_offset():
    module = compile_source("""
struct inner { int a; int b; };
struct outer { int head; struct inner body; };
struct outer o;
int main() { return o.body.b; }
""")
    load = loads_in(module)[-1]
    # Innermost field step wins: field b of struct inner at offset 1.
    assert gep_signature(load.pointer) == ("field", "inner", 1)


def test_multi_level_gep_on_2d_array_keys_to_global():
    module = compile_source("""
int grid[4][4];
int main() { return grid[1][2]; }
""")
    load = loads_in(module)[-1]
    # Two index levels, no field step: the key falls back to the global.
    assert gep_signature(load.pointer) is None
    info = NonLocalInfo(module.functions["main"])
    assert info.location_key(load.pointer) == ("global", "grid")
    assert info.is_nonlocal_pointer(load.pointer)


def test_array_field_inside_struct_keys_to_field():
    module = compile_source("""
struct buf { int len; int data[4]; };
struct buf b;
int main() { return b.data[3]; }
""")
    load = loads_in(module)[-1]
    # Innermost *field* step wins even with an index step below it:
    # data sits at slot offset 1 of struct buf.
    assert gep_signature(load.pointer) == ("field", "buf", 1)


def test_struct_array_element_field_through_two_levels():
    module = compile_source("""
struct node { int value; int next; };
struct node ring[4];
int main() { return ring[2].value + ring[3].next; }
""")
    signatures = {
        gep_signature(l.pointer) for l in loads_in(module)
        if gep_signature(l.pointer)
    }
    assert signatures == {("field", "node", 0), ("field", "node", 1)}


def test_local_escapes_via_thread_spawn_argument():
    module = compile_source("""
void consumer(int *p) { *p = 1; }
int main() {
    int x = 0;
    int t = thread_create(consumer, &x);
    thread_join(t);
    return x;
}
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    root = pointer_root(final_load.pointer)
    assert isinstance(root, ins.Alloca)
    assert root in info.escaped
    assert info.is_nonlocal_pointer(final_load.pointer)
    # Escaped locals still have no nameable location key.
    assert info.location_key(final_load.pointer) is None


def test_local_escaping_via_nested_call_argument_gep():
    module = compile_source("""
struct pair { int a; int b; };
void sink(int *p) { *p = 9; }
int main() {
    struct pair local;
    local.a = 0;
    sink(&local.b);
    return local.a;
}
""")
    info = NonLocalInfo(module.functions["main"])
    # Passing &local.b (a gep-derived pointer) escapes the whole alloca,
    # so the sibling field access is non-local too.
    final_load = loads_in(module)[-1]
    root = pointer_root(final_load.pointer)
    assert isinstance(root, ins.Alloca)
    assert root in info.escaped
    assert info.is_nonlocal_pointer(final_load.pointer)


def test_address_only_used_in_cmpxchg_desired_escapes():
    module = compile_source("""
int *slot;
int main() {
    int x = 0;
    int old = atomic_cmpxchg((int *)&slot, 0, (int)&x);
    return x;
}
""")
    info = NonLocalInfo(module.functions["main"])
    final_load = loads_in(module)[-1]
    root = pointer_root(final_load.pointer)
    assert isinstance(root, ins.Alloca)
    assert root in info.escaped


def test_pointer_root_through_cast_and_gep():
    module = compile_source("""
struct n { int v; };
int g;
int main() {
    struct n *p = (struct n *)&g;
    return p->v;
}
""")
    load = loads_in(module)[-1]
    # p's value came from a load of the local alloca holding the cast
    # pointer, so the static root is that load.
    root = pointer_root(load.pointer)
    assert isinstance(root, (ins.Load, GlobalVar))
