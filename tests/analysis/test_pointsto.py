"""Tests for the Andersen-style points-to analysis."""

from repro.analysis.cache import AnalysisCache
from repro.analysis.pointsto import PointsToAnalysis
from repro.api import compile_source
from repro.ir import instructions as ins


def stores_in(module, fn="main"):
    return [
        i for i in module.functions[fn].instructions()
        if isinstance(i, ins.Store)
    ]


def alloca_named(module, fn, name):
    for instr in module.functions[fn].instructions():
        if isinstance(instr, ins.Alloca) and instr.name == name:
            return instr
    raise AssertionError(f"no alloca {name!r} in {fn}")


def test_objects_per_allocation_site():
    module = compile_source("""
int g = 0;
int main() {
    int x;
    int *p = malloc(4);
    return 0;
}
""")
    pts = PointsToAnalysis(module)
    kinds = sorted((obj.kind, obj.label) for obj in pts.objects)
    assert ("global", "@g") in kinds
    assert any(k == "stack" and "%x" in label for k, label in kinds)
    assert any(k == "heap" and "malloc#" in label for k, label in kinds)


def test_address_of_global_flows_through_argument():
    module = compile_source("""
int flag = 0;
void raise_it(int *f) { *f = 1; }
int main() { raise_it(&flag); return flag; }
""")
    pts = PointsToAnalysis(module)
    arg = module.functions["raise_it"].arguments[0]
    labels = {obj.label for obj in pts.points_to(arg)}
    assert labels == {"@flag"}
    assert pts.class_key(arg) == ("global", "flag")


def test_argument_with_two_callers_merges_sets():
    module = compile_source("""
int a = 0;
int b = 0;
void set(int *p) { *p = 1; }
int main() { set(&a); set(&b); return a + b; }
""")
    pts = PointsToAnalysis(module)
    arg = module.functions["set"].arguments[0]
    labels = {obj.label for obj in pts.points_to(arg)}
    assert labels == {"@a", "@b"}
    key = pts.class_key(arg)
    assert key == ("pts", "@a", "@b")


def test_pointer_stored_and_loaded_back():
    module = compile_source("""
int g = 0;
int main() {
    int *p = &g;
    int *q = p;
    *q = 3;
    return g;
}
""")
    pts = PointsToAnalysis(module)
    # The store through q targets g: find the store of constant 3.
    target = next(
        s for s in stores_in(module)
        if getattr(s.value, "value", None) == 3
    )
    labels = {obj.label for obj in pts.points_to(target.pointer)}
    assert labels == {"@g"}


def test_recursion_reaches_fixpoint():
    module = compile_source("""
int flag = 0;
void walk(int *f, int depth) {
    if (depth > 0) { walk(f, depth - 1); return; }
    *f = 1;
}
int main() { walk(&flag, 3); return flag; }
""")
    pts = PointsToAnalysis(module)
    arg = module.functions["walk"].arguments[0]
    assert {o.label for o in pts.points_to(arg)} == {"@flag"}


def test_return_value_flows_to_call_result():
    module = compile_source("""
int g = 0;
int *pick() { return &g; }
int main() { int *p = pick(); *p = 2; return g; }
""")
    pts = PointsToAnalysis(module)
    target = next(
        s for s in stores_in(module)
        if getattr(s.value, "value", None) == 2
    )
    assert {o.label for o in pts.points_to(target.pointer)} == {"@g"}


def test_thread_create_argument_binds_entry_parameter():
    module = compile_source("""
int cell = 0;
void worker(int *p) { *p = 5; }
int main() {
    int t = thread_create(worker, &cell);
    thread_join(t);
    return cell;
}
""")
    pts = PointsToAnalysis(module)
    arg = module.functions["worker"].arguments[0]
    assert {o.label for o in pts.points_to(arg)} == {"@cell"}


def test_contents_track_stored_pointers():
    module = compile_source("""
int g = 0;
int *slot;
int main() {
    slot = &g;
    return 0;
}
""")
    pts = PointsToAnalysis(module)
    slot_obj = pts.object_for(module.globals["slot"])
    assert {o.label for o in pts.contents(slot_obj)} == {"@g"}


def test_unknown_pointer_has_empty_set_and_no_key():
    module = compile_source("""
int take(int *p) { return *p; }
int main() { return 0; }
""")
    pts = PointsToAnalysis(module)
    arg = module.functions["take"].arguments[0]
    assert pts.points_to(arg) == frozenset()
    assert pts.class_key(arg) is None


def test_cache_memoizes_pointsto():
    module = compile_source("int g;\nint main() { return g; }")
    cache = AnalysisCache(module)
    assert cache.pointsto() is cache.pointsto()
    assert cache.thread_escape() is cache.thread_escape()
    main = module.functions["main"]
    assert cache.nonlocal_info(main) is cache.nonlocal_info(main)
