"""Tests for witness-guided static fence repair (min-cost synthesis).

Covers the solver (exactness certificates, dual lower bounds,
determinism), the action vocabulary (single-endpoint strengthenings,
joint SC lifts for SB-shaped pairs, endpoint fences), the order-join
lattice, replayability of the recorded actions, lock-word preservation
during port relaxation, the incumbent fallback of bottom-up
resynthesis, and the pipeline / config integration.
"""

import pytest

from repro.analysis.repair import (
    RepairReport,
    _join_order,
    relax_ported,
    repair_module,
    resynthesize_ported,
)
from repro.analysis.robustness import analyze_robustness
from repro.api import compile_source, port_module
from repro.core.config import AtoMigConfig, PortingLevel
from repro.ir.instructions import MemoryOrder
from repro.ir.printer import print_module
from repro.mc.litmus import WEAKENED_LITMUS, weakened_source
from repro.vm.costs import cost_model_for, estimate_cost


def _relaxed_module(name):
    """Fully-relaxed weakened litmus variant (always non-robust)."""
    _template, minimal, _too_weak = WEAKENED_LITMUS[name]
    overrides = {slot: "memory_order_relaxed" for slot in minimal}
    return compile_source(weakened_source(name, overrides), name)


# -- solver: exactness on small instances ----------------------------------


@pytest.mark.parametrize(
    "name,arch,cost,strengthened",
    [
        ("SB", "armv8", 36, 4),
        ("SB", "power", 48, 4),
        ("MP", "armv8", 18, 2),
        ("MP", "power", 24, 2),
        ("LB", "armv8", 0, 2),
        ("IRIW", "armv8", 0, 2),
    ],
)
def test_litmus_repairs_are_exact_and_minimal(name, arch, cost,
                                              strengthened):
    module = _relaxed_module(name)
    repaired, report = repair_module(module, model="wmm", arch=arch)
    assert report.robust_after, report.render()
    assert report.solver == "exact"
    assert report.optimal
    assert report.total_cost == cost
    assert report.strengthened == strengthened
    assert report.fences_added == 0
    assert analyze_robustness(repaired, model="wmm").robust
    # The recorded cost delta matches the authoritative re-estimate.
    delta = report.barrier_cost_after - report.barrier_cost_before
    assert delta == cost


def test_sb_uses_joint_sc_lift_not_fences():
    """SB's store->load pairs cannot be fixed by acquire/release merges
    alone; the joint SC lift must beat two full fences (2 x 40 on
    armv8)."""
    module = _relaxed_module("SB")
    _repaired, report = repair_module(module, model="wmm", arch="armv8")
    assert report.fences_added == 0
    assert report.total_cost < 80
    for action in report.actions:
        assert action.kind == "strengthen"
        assert action.to_order == "seq_cst"


def test_exact_rounds_match_their_lower_bound():
    module = _relaxed_module("MP")
    _repaired, report = repair_module(module, model="wmm", arch="armv8")
    for round_ in report.rounds:
        applied = sum(a.cost for a in round_["actions"])
        assert round_["lower_bound"] <= applied
        if round_["optimal"]:
            assert round_["solver"] == "exact"


def test_tso_repair_strengthens_the_buffered_store():
    """Under TSO only a non-SC store followed by a load is delayable;
    the repair lifts the store to SC (drains the buffer)."""
    module = _relaxed_module("SB")
    repaired, report = repair_module(module, model="tso", arch="armv8")
    assert report.robust_after
    assert analyze_robustness(repaired, model="tso").robust
    for action in report.actions:
        if action.kind == "strengthen":
            assert action.to_order == "seq_cst"


def test_robust_input_is_a_no_op():
    module = _relaxed_module("SB")
    repaired, report = repair_module(module, model="wmm")
    again, second = repair_module(repaired, model="wmm")
    assert second.robust_after
    assert second.rounds == []
    assert second.solver == "none"
    assert second.total_cost == 0
    assert print_module(again) == print_module(repaired)


# -- determinism and replay ------------------------------------------------


def test_repair_is_deterministic():
    first = repair_module(_relaxed_module("SB"), model="wmm")[1].to_dict()
    second = repair_module(_relaxed_module("SB"), model="wmm")[1].to_dict()
    first.pop("wall_seconds")
    second.pop("wall_seconds")
    assert first == second


def test_report_apply_replays_onto_a_fresh_module():
    repaired, report = repair_module(_relaxed_module("MP"), model="wmm")
    fresh = _relaxed_module("MP")
    report.apply(fresh)
    assert analyze_robustness(fresh, model="wmm").robust
    assert print_module(fresh) == print_module(repaired)


def test_apply_joins_orders_never_downgrades():
    """Replaying onto a module that is already stronger must keep the
    stronger order (join semantics, not overwrite)."""
    _repaired, report = repair_module(_relaxed_module("MP"), model="wmm")
    _template, minimal, _too_weak = WEAKENED_LITMUS["MP"]
    sc_orders = {slot: "memory_order_seq_cst" for slot in minimal}
    strong = compile_source(weakened_source("MP", sc_orders), "MP")
    before = {
        instr: instr.order
        for instr in strong.instructions()
        if hasattr(instr, "order")
    }
    report.apply(strong)
    for instr, order in before.items():
        assert instr.order is order, instr


def test_clone_false_mutates_in_place():
    module = _relaxed_module("MP")
    repaired, report = repair_module(module, model="wmm", clone=False)
    assert repaired is module
    assert report.robust_after


# -- order-join lattice ----------------------------------------------------


@pytest.mark.parametrize(
    "current,target,expected",
    [
        (MemoryOrder.RELAXED, MemoryOrder.ACQUIRE, MemoryOrder.ACQUIRE),
        (MemoryOrder.ACQUIRE, MemoryOrder.RELEASE, MemoryOrder.ACQ_REL),
        (MemoryOrder.RELEASE, MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL),
        (MemoryOrder.SEQ_CST, MemoryOrder.ACQUIRE, MemoryOrder.SEQ_CST),
        (MemoryOrder.ACQUIRE, MemoryOrder.SEQ_CST, MemoryOrder.SEQ_CST),
        (MemoryOrder.ACQ_REL, MemoryOrder.RELEASE, MemoryOrder.ACQ_REL),
        (MemoryOrder.RELAXED, MemoryOrder.RELAXED, MemoryOrder.RELAXED),
    ],
)
def test_join_order_lattice(current, target, expected):
    assert _join_order(current, target) is expected


# -- verify gate -----------------------------------------------------------


def test_verify_records_zero_state_robustness_evidence():
    _repaired, report = repair_module(
        _relaxed_module("SB"), model="wmm", verify=True
    )
    assert report.verify["outcome"] == "ok"
    assert report.verify["verdict_source"] == "robustness"
    assert report.verify["states"] == 0
    payload = report.to_dict()
    assert payload["verify"] == report.verify


# -- port relaxation and resynthesis ---------------------------------------

TAS_SPINLOCK = """
int lock = 0;
int shared_data = 0;

void worker() {
    while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
    shared_data = shared_data + 1;
    lock = 0;
}

void thread_fn() {
    worker();
}

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    assert(shared_data == 2);
    return 0;
}
"""


def test_relax_ported_keeps_lock_words_strong():
    """Relaxing a lock word would dissolve the lock *structurally*:
    lockset analysis stops recognizing the idiom and every protected
    access degrades to racy.  The relaxation must skip them."""
    from repro.analysis.races import AccessClass, classify_module

    module = compile_source(TAS_SPINLOCK, "tas")
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    lock_words = {
        finding.instr
        for finding in classify_module(ported).findings
        if finding.classification is AccessClass.LOCK
    }
    assert lock_words, "lockset analysis found no lock idiom"
    orders = {instr: instr.order for instr in lock_words}
    relaxed, _deleted = relax_ported(ported)
    assert relaxed > 0
    for instr, order in orders.items():
        assert instr.order is order, instr
    # ... and the relaxed module still repairs back to robustness.
    _repaired, report = repair_module(ported, model="wmm", clone=False)
    assert report.robust_after


def test_resynthesize_never_beats_nothing_but_never_loses():
    """The completed port is the incumbent: resynthesis returns it
    whenever the bottom-up cover is costlier, so the result can never
    exceed the blanket-SC completion."""
    module = compile_source(TAS_SPINLOCK, "tas")
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    before = print_module(ported)
    for arch in ("armv8", "power"):
        repaired, report = resynthesize_ported(
            ported, model="wmm", arch=arch
        )
        assert report.robust_after
        assert report.incumbent, "incumbent cost missing"
        assert report.barrier_cost_after <= report.incumbent["barriers"]
        assert analyze_robustness(repaired, model="wmm").robust
    # The input module is never mutated.
    assert print_module(ported) == before


def test_resynthesize_falls_back_when_cover_is_costlier():
    """ck_spinlock_mcs under the POWER cost model is the known case
    where the synthesized cover exceeds the completion: the fallback
    must fire and return the incumbent cost exactly."""
    from repro.bench.corpus import BENCHMARKS

    module = compile_source(
        BENCHMARKS["ck_spinlock_mcs"].mc_source(), "ck_spinlock_mcs"
    )
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    _repaired, report = resynthesize_ported(ported, model="wmm",
                                            arch="power")
    assert report.robust_after
    assert any("fell back" in note for note in report.notes)
    assert report.barrier_cost_after == report.incumbent["barriers"]


# -- pipeline / config integration -----------------------------------------


def test_pipeline_repair_mode_lands_report_and_robustness():
    module = compile_source(TAS_SPINLOCK, "tas")
    config = AtoMigConfig(repair_mode=True, repair_arch="power")
    ported, report = port_module(module, PortingLevel.ATOMIG,
                                 config=config)
    assert report.repair, "pipeline did not record a repair report"
    assert report.repair["robust_after"]
    assert report.repair["arch"] == "power"
    assert analyze_robustness(ported, model="wmm").robust
    payload = report.to_dict()
    assert payload["repair"] == report.repair


def test_report_summary_and_render_round_trip():
    _repaired, report = repair_module(_relaxed_module("MP"), model="wmm")
    text = report.render()
    assert "robust" in text
    assert report.summary()
    payload = report.to_dict()
    rebuilt_actions = payload["rounds"][0]["actions"]
    assert rebuilt_actions
    for action in rebuilt_actions:
        assert {"kind", "function", "block", "index", "instr",
                "from_order", "to_order", "cost", "covers",
                "cycles"} <= set(action)
        assert action["cycles"], "action lost its cycle provenance"


def test_cost_model_for_names():
    assert cost_model_for("armv8").name == "armv8"
    assert cost_model_for("power").name == "power"
    assert cost_model_for(None).name == "armv8"
    with pytest.raises(Exception):
        cost_model_for("sparc")


def test_estimate_matches_report_cost_dicts():
    module = _relaxed_module("SB")
    repaired, report = repair_module(module, model="wmm", arch="power")
    model = cost_model_for("power")
    assert report.cost_after == estimate_cost(repaired, model).to_dict()
