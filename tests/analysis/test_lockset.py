"""Tests for the interprocedural must-lockset analysis."""

from repro.analysis.lockset import Transfer, compute_locksets
from repro.api import compile_source
from repro.ir import instructions as ins

LOCK_KEY = ("global", "lock_word")

TAS_PROGRAM = """
int lock_word = 0;
int counter = 0;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}

void work() {
    counter = counter + 1;
}

void worker() {
    lock();
    work();
    unlock();
}

void thread_fn() {
    worker();
}

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    return 0;
}
"""


def _find(module, function, predicate):
    found = [
        instr for instr in module.functions[function].instructions()
        if predicate(instr)
    ]
    assert found, f"no matching instruction in @{function}"
    return found


def _accesses(module, function, global_name, kind=(ins.Load, ins.Store)):
    return _find(module, function, lambda i: (
        isinstance(i, kind)
        and getattr(i.accessed_pointer(), "name", None) == global_name
    ))


# ---------------------------------------------------------------------------
# Transfer algebra
# ---------------------------------------------------------------------------


def test_transfer_apply():
    xfer = Transfer(gen=frozenset({"a"}), kill=frozenset({"b"}))
    assert xfer.apply(frozenset({"b", "c"})) == frozenset({"a", "c"})


def test_transfer_sequential_composition():
    acquire = Transfer(gen=frozenset({"l"}))
    release = Transfer(kill=frozenset({"l"}))
    assert acquire.then(release).apply(frozenset()) == frozenset()
    assert release.then(acquire).apply(frozenset()) == frozenset({"l"})
    # A later kill erases an earlier gen from the composite gen set.
    assert acquire.then(release).gen == frozenset()
    assert acquire.then(release).kill == frozenset({"l"})


def test_transfer_meet_is_must():
    left = Transfer(gen=frozenset({"a", "b"}), kill=frozenset({"x"}))
    right = Transfer(gen=frozenset({"b"}), kill=frozenset({"y"}))
    met = left.meet(right)
    assert met.gen == frozenset({"b"})
    assert met.kill == frozenset({"x", "y"})
    assert left.meet(None) == left


def test_transfer_taint_propagates():
    tainted = Transfer(tainted=True)
    assert Transfer().then(tainted).tainted
    assert tainted.meet(Transfer()).tainted


# ---------------------------------------------------------------------------
# Lock discovery and per-instruction locksets
# ---------------------------------------------------------------------------


def test_tas_idiom_discovers_structural_lock():
    module = compile_source(TAS_PROGRAM)
    result = compute_locksets(module)
    assert LOCK_KEY in result.locks
    assert not result.locks[LOCK_KEY].heuristic
    assert LOCK_KEY in result.structural_keys()
    assert result.locks[LOCK_KEY].acquire_sites
    assert result.locks[LOCK_KEY].release_sites


def test_lock_held_inside_callee_of_critical_section():
    module = compile_source(TAS_PROGRAM)
    result = compute_locksets(module)
    # work() is only ever called between lock() and unlock().  (The
    # name heuristic adds an fnpair token alongside the structural key.)
    assert LOCK_KEY in result.entry_held["work"]
    for instr in _accesses(module, "work", "counter"):
        held, tainted = result.lockset_at(instr)
        assert LOCK_KEY in held
        assert not tainted


def test_lock_not_held_at_roots_or_after_release():
    module = compile_source(TAS_PROGRAM)
    result = compute_locksets(module)
    assert result.entry_held["main"] == frozenset()
    assert result.entry_held["thread_fn"] == frozenset()
    assert result.entry_held["worker"] == frozenset()
    # unlock()'s summary kills the lock.
    assert LOCK_KEY in result.summaries["unlock"].kill
    assert LOCK_KEY in result.summaries["lock"].gen


def test_xchg_acquire_idiom_recognized():
    module = compile_source("""
int lock_word = 0;
int data = 0;

void take() {
    while (atomic_exchange_explicit(&lock_word, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void drop() { lock_word = 0; }

void thread_fn() { take(); data = data + 1; drop(); }
int main() {
    int t = thread_create(thread_fn);
    take();
    data = data + 1;
    drop();
    thread_join(t);
    return 0;
}
""")
    result = compute_locksets(module)
    assert LOCK_KEY in result.structural_keys()
    for instr in _accesses(module, "thread_fn", "data"):
        held, _tainted = result.lockset_at(instr)
        assert LOCK_KEY in held


def test_unknown_instruction_defaults_to_tainted_empty():
    module = compile_source(TAS_PROGRAM)
    other = compile_source("int g; int main() { g = 1; return g; }")
    result = compute_locksets(module)
    stray = next(iter(other.functions["main"].instructions()))
    assert result.lockset_at(stray) == (frozenset(), True)


def test_recursive_function_summary_is_tainted_kill_all():
    module = compile_source("""
int lock_word = 0;
int counter = 0;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) { }
}
void unlock() { lock_word = 0; }

void spin(int n) {
    if (n > 0) { spin(n - 1); }
}

void thread_fn() {
    lock();
    spin(3);
    counter = counter + 1;
    unlock();
}

int main() {
    int t = thread_create(thread_fn);
    thread_join(t);
    return counter;
}
""")
    result = compute_locksets(module)
    summary = result.summaries["spin"]
    assert summary.tainted
    assert LOCK_KEY in summary.kill
    # After the opaque call the lock is no longer provably held.
    for instr in _accesses(module, "thread_fn", "counter"):
        held, tainted = result.lockset_at(instr)
        assert held == frozenset()
        assert tainted


def test_module_without_locks_is_untainted_everywhere():
    module = compile_source("""
int g = 0;
int main() { g = g + 1; return g; }
""")
    result = compute_locksets(module)
    assert result.locks == {}
    for instr in module.functions["main"].instructions():
        assert result.lockset_at(instr) == (frozenset(), False)


def test_name_pair_heuristic_token():
    source = """
int owner = 0;
int counter = 0;

void my_lock() {
    while (atomic_exchange_explicit(&owner, 1, memory_order_relaxed) == 1) {
        cpu_relax();
    }
}

void my_unlock() { owner = 0; }

void thread_fn() { my_lock(); counter = counter + 1; my_unlock(); }
int main() {
    int t = thread_create(thread_fn);
    my_lock();
    counter = counter + 1;
    my_unlock();
    thread_join(t);
    return counter;
}
"""
    module = compile_source(source)
    result = compute_locksets(module)
    token = ("fnpair", "my_lock")
    # The `== 1` test does not match the TAS `!= 0` shape, so only the
    # name heuristic finds this lock — flagged, and not pruning-grade.
    assert token in result.locks
    assert result.locks[token].heuristic
    assert token not in result.structural_keys()
    for instr in _accesses(module, "thread_fn", "counter"):
        held, _tainted = result.lockset_at(instr)
        assert token in held

    disabled = compute_locksets(
        compile_source(source), name_heuristic=False
    )
    assert token not in disabled.locks
