"""Equivalence and termination of the SCC-collapsing points-to solver.

Inclusion constraints have a unique least fixpoint, so
``PointsToAnalysis(module, solver="scc")`` must produce exactly the
same solution as the reference ``solver="basic"`` worklist — on every
module, and in particular on *cyclic* copy graphs (recursion binds
actuals and formals in both directions, pointers round-trip through
globals and load/store pairs), which is where cycle collapsing both
pays off and is easiest to get wrong.

Solutions are compared by object *label* (and by ``class_key``), never
by ``AbstractObject`` identity: the two analyses allocate their own
object instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pointsto import PointsToAnalysis
from repro.api import compile_source


def _labels(objects):
    return frozenset(obj.label for obj in objects)


def _solution(analysis):
    """The full solution as label-comparable data."""
    values = {}
    for function in analysis.module.functions.values():
        for seq, arg in enumerate(function.arguments):
            values[(function.name, "arg", seq)] = arg
        for seq, instr in enumerate(function.instructions()):
            values[(function.name, "instr", seq)] = instr
    pts = {
        ident: _labels(analysis.points_to(value))
        for ident, value in values.items()
    }
    keys = {
        ident: analysis.class_key(value)
        for ident, value in values.items()
    }
    contents = {
        obj.label: _labels(analysis.contents(obj))
        for obj in analysis.objects
    }
    return pts, keys, contents


def assert_solvers_agree(source):
    module = compile_source(source)
    scc = PointsToAnalysis(module, solver="scc")
    basic = PointsToAnalysis(compile_source(source), solver="basic")
    assert _solution(scc) == _solution(basic)
    return scc


RECURSIVE_IDENTITY = """
int a = 0;
int b = 0;
int *pick(int *p, int depth) {
    if (depth > 0) { return pick(p, depth - 1); }
    return p;
}
int main() {
    int *x = pick(&a, 3);
    int *y = pick(&b, 2);
    *x = 1;
    return *y;
}
"""

GLOBAL_ROUND_TRIP = """
int data = 0;
int other = 0;
int *slot;
int main() {
    slot = &data;
    int *p = slot;
    slot = p;
    int *q = slot;
    if (data > 0) { slot = &other; }
    *q = 2;
    return *p;
}
"""

MUTUAL_RECURSION = """
int cell = 0;
int *ping(int *p, int n);
int *pong(int *p, int n) {
    if (n == 0) { return p; }
    return ping(p, n - 1);
}
int *ping(int *p, int n) {
    if (n == 0) { return p; }
    return pong(p, n - 1);
}
int main() {
    int *r = ping(&cell, 4);
    *r = 7;
    return cell;
}
"""

SWAP_CYCLE = """
int left = 0;
int right = 0;
int main() {
    int *p = &left;
    int *q = &right;
    for (int i = 0; i < 4; i++) {
        int *t = p;
        p = q;
        q = t;
    }
    *p = 1;
    *q = 2;
    return left + right;
}
"""

CYCLIC_PROGRAMS = {
    "recursive_identity": RECURSIVE_IDENTITY,
    "global_round_trip": GLOBAL_ROUND_TRIP,
    "mutual_recursion": MUTUAL_RECURSION,
    "swap_cycle": SWAP_CYCLE,
}


def test_recursive_identity_agrees_and_terminates():
    scc = assert_solvers_agree(RECURSIVE_IDENTITY)
    arg = scc.module.functions["pick"].arguments[0]
    assert _labels(scc.points_to(arg)) == {"@a", "@b"}


def test_global_round_trip_agrees():
    scc = assert_solvers_agree(GLOBAL_ROUND_TRIP)
    slot = scc.module.globals["slot"]
    obj = scc.object_for(slot)
    assert _labels(scc.contents(obj)) == {"@data", "@other"}


def test_mutual_recursion_agrees():
    scc = assert_solvers_agree(MUTUAL_RECURSION)
    arg = scc.module.functions["ping"].arguments[0]
    assert scc.class_key(arg) == ("global", "cell")


def test_swap_cycle_agrees():
    assert_solvers_agree(SWAP_CYCLE)


def test_scc_solver_collapses_cycles():
    """At least one cyclic program actually exercises the collapse."""
    collapsed = {}
    for name, source in CYCLIC_PROGRAMS.items():
        scc = PointsToAnalysis(compile_source(source), solver="scc")
        collapsed[name] = scc.stats["sccs_collapsed"]
        assert scc.stats["rounds"] > 0
    assert any(count > 0 for count in collapsed.values()), collapsed


def test_unknown_solver_rejected():
    module = compile_source("int main() { return 0; }")
    try:
        PointsToAnalysis(module, solver="magic")
    except ValueError as error:
        assert "magic" in str(error)
    else:
        raise AssertionError("bad solver name accepted")


# -- randomized equivalence -------------------------------------------------

_STMTS = [
    "slot = &g{a};",
    "p{k} = &g{a};",
    "p{k} = slot;",
    "slot = p{k};",
    "p{k} = keep(p{j}, {n});",
    "p{k} = p{j};",
    "*p{k} = {n};",
    "acc = acc + *p{j};",
]


@st.composite
def pointer_programs(draw):
    """Random straight-line pointer shuffles over two globals, a global
    pointer slot and a recursive identity helper."""
    count = draw(st.integers(min_value=1, max_value=8))
    statements = []
    for _ in range(count):
        template = draw(st.sampled_from(_STMTS))
        statements.append(template.format(
            a=draw(st.integers(min_value=0, max_value=1)),
            k=draw(st.integers(min_value=0, max_value=2)),
            j=draw(st.integers(min_value=0, max_value=2)),
            n=draw(st.integers(min_value=0, max_value=5)),
        ))
    body = "\n    ".join(statements)
    return f"""
int g0 = 0;
int g1 = 0;
int *slot;
int *keep(int *p, int depth) {{
    if (depth > 0) {{ return keep(p, depth - 1); }}
    return p;
}}
int main() {{
    int acc = 0;
    int *p0 = &g0;
    int *p1 = &g1;
    int *p2 = slot;
    {body}
    return acc;
}}
"""


@given(pointer_programs())
@settings(max_examples=40, deadline=None)
def test_solvers_agree_on_random_modules(source):
    assert_solvers_agree(source)
