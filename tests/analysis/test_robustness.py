"""Tests for the static robustness analysis (critical cycles).

Covers the litmus gallery (relaxed variants must be non-robust with a
plausible critical cycle; minimal and fully-fenced variants must be
robust), the order-aware safe-lock pruning, the dead-fence lint, and
the agreement between the static verdict and the model checker.
"""

import pytest

from repro.analysis.robustness import (
    RobustnessAnalyzer,
    analyze_robustness,
    find_dead_fences,
)
from repro.api import check_module, compile_source, port_module
from repro.core.config import PortingLevel
from repro.mc.litmus import (
    LITMUS_TESTS,
    WEAKENED_LITMUS,
    expected_verdict,
    run_litmus,
    weakened_source,
)


def _weakened_module(name, overrides=None):
    return compile_source(weakened_source(name, overrides), name)


def _litmus_module(name):
    source, _expected = LITMUS_TESTS[name]
    return compile_source(source, name)


# -- litmus gallery: relaxed variants are non-robust -----------------------


@pytest.mark.parametrize(
    "name,label",
    [
        (name, label)
        for name, (_t, _m, too_weak) in sorted(WEAKENED_LITMUS.items())
        for label in sorted(too_weak)
    ],
)
def test_too_weak_litmus_is_non_robust(name, label):
    _template, _minimal, too_weak = WEAKENED_LITMUS[name]
    module = _weakened_module(name, too_weak[label])
    result = analyze_robustness(module, model="wmm")
    assert not result.robust
    assert result.witnesses
    assert result.delayable_pairs > 0


@pytest.mark.parametrize("name", sorted(WEAKENED_LITMUS))
def test_minimal_orders_are_robust(name):
    result = analyze_robustness(_weakened_module(name), model="wmm")
    assert result.robust, result.render()
    assert not result.witnesses


@pytest.mark.parametrize("name", sorted(WEAKENED_LITMUS))
def test_fully_fenced_litmus_is_robust(name):
    _template, minimal, _too_weak = WEAKENED_LITMUS[name]
    sc_orders = {slot: "memory_order_seq_cst" for slot in minimal}
    result = analyze_robustness(
        _weakened_module(name, sc_orders), model="wmm"
    )
    assert result.robust, result.render()


def test_relaxed_mp_witness_names_both_locations():
    module = _weakened_module(
        "MP",
        {"w_flag": "memory_order_relaxed",
         "r_flag": "memory_order_relaxed"},
    )
    result = analyze_robustness(module, model="wmm")
    assert not result.robust
    witness = result.witnesses[0]
    # The delayable pair and the cycle carry per-access provenance.
    assert len(witness.delay) == 2
    for prov in witness.delay:
        assert {"function", "block", "index", "instr", "order"} <= set(prov)
    kinds = [edge["kind"] for edge in witness.edges]
    assert kinds[0] == "po-delay"
    assert kinds[-1] == "conflict"
    text = witness.describe()
    assert "data" in text and "flag" in text


def test_relaxed_iriw_is_non_robust_with_single_access_writers():
    # IRIW's writer threads contribute one access each: the cycle has
    # consecutive conflict edges, which minimal-cycle enumeration must
    # allow.
    _template, _minimal, too_weak = WEAKENED_LITMUS["IRIW"]
    module = _weakened_module("IRIW", too_weak["reader-relaxed"])
    result = analyze_robustness(module, model="wmm")
    assert not result.robust


# -- classic litmus tests: hard expectations per model ---------------------


@pytest.mark.parametrize(
    "name,model,robust",
    [
        ("SB", "tso", False),
        ("SB", "wmm", False),
        ("MP", "tso", True),       # TSO only delays store->load
        ("MP", "wmm", False),
        ("MP+atomics", "wmm", True),
        ("MP+fences", "wmm", True),
        ("SB+atomics", "wmm", True),
        ("CAS-overtake", "tso", True),   # RMW drains the TSO buffer
        ("CAS-overtake", "wmm", False),  # relaxed CAS halves may split
    ],
)
def test_litmus_classification(name, model, robust):
    result = analyze_robustness(_litmus_module(name), model=model)
    assert result.robust == robust, result.render()


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
@pytest.mark.parametrize("model", ["tso", "wmm"])
def test_litmus_robustness_is_sound(name, model):
    """Robust => the model's verdict equals the SC verdict."""
    result = analyze_robustness(_litmus_module(name), model=model)
    if result.robust:
        assert expected_verdict(name, model) == expected_verdict(name, "sc")


def test_sc_is_always_robust():
    result = analyze_robustness(_litmus_module("SB"), model="sc")
    assert result.robust
    assert result.nodes == 0


# -- safe-lock pruning -----------------------------------------------------

TAS_SPINLOCK = """
int lock = 0;
int shared_data = 0;

void worker() {
    while (atomic_cmpxchg(&lock, 0, 1) != 0) { }
    shared_data = shared_data + 1;
    lock = 0;
}

void thread_fn() {
    worker();
}

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    assert(shared_data == 2);
    return 0;
}
"""


def test_unfenced_spinlock_is_non_robust_under_wmm():
    # The plain unlock store does not release: the lock word is not a
    # *safe* lock, so critical-section conflicts must stay in the graph.
    module = compile_source(TAS_SPINLOCK, "tas")
    result = analyze_robustness(module, model="wmm")
    assert not result.robust
    # ... and exploration agrees that this module misbehaves.
    assert not check_module(module, model="wmm", max_steps=2500).ok


def test_ported_spinlock_is_robust_via_safe_lock_pruning():
    module = compile_source(TAS_SPINLOCK, "tas")
    ported, _report = port_module(module, PortingLevel.ATOMIG)
    result = analyze_robustness(ported, model="wmm")
    assert result.robust, result.render()
    assert any("lock" in note for note in result.notes)
    assert check_module(ported, model="wmm", max_steps=2500).ok


def test_pruning_is_per_query_not_destructive():
    # The same analyzer instance must answer tso and a fresh wmm
    # analyzer identically after a wmm query pruned edges in its view.
    module = compile_source(TAS_SPINLOCK, "tas")
    analyzer = RobustnessAnalyzer(module, model="wmm")
    first = analyzer.analyze()
    second = analyzer.analyze()
    assert first.robust == second.robust
    assert first.conflict_edges == second.conflict_edges


# -- analyze() witness quota -----------------------------------------------


def test_zero_witness_quota_still_detects_non_robustness():
    module = _weakened_module(
        "MP",
        {"w_flag": "memory_order_relaxed",
         "r_flag": "memory_order_relaxed"},
    )
    result = analyze_robustness(module, model="wmm", max_witnesses=0)
    assert not result.robust
    assert result.witnesses == []


def test_witness_quota_caps_storage():
    module = compile_source(TAS_SPINLOCK, "tas")
    result = analyze_robustness(module, model="wmm", max_witnesses=1)
    assert not result.robust
    assert len(result.witnesses) == 1


# -- result plumbing -------------------------------------------------------


def test_result_to_dict_and_render():
    result = analyze_robustness(_litmus_module("MP"), model="wmm")
    payload = result.to_dict()
    assert payload["module"] == "MP"
    assert payload["model"] == "wmm"
    assert payload["robust"] is False
    assert payload["witnesses"]
    assert all(
        {"delay", "edges"} <= set(w) for w in payload["witnesses"]
    )
    text = result.render()
    assert "NON-ROBUST" in text
    assert "critical cycle 1" in text


# -- checker pre-pass ------------------------------------------------------


def test_check_module_fast_path_skips_exploration():
    module = _litmus_module("MP+atomics")
    result = check_module(module, model="wmm", robustness=True)
    assert result.ok
    assert result.verdict_source == "robustness"
    assert result.states_explored == 0


def test_check_module_fast_path_agrees_with_exploration():
    module = _litmus_module("MP+atomics")
    fast = check_module(module, model="wmm", robustness=True)
    slow = check_module(module, model="wmm", robustness=False)
    assert slow.verdict_source == "exploration"
    assert fast.ok == slow.ok
    assert fast.outcome == slow.outcome


def test_check_module_falls_back_for_non_robust_modules():
    module = _litmus_module("MP")
    result = check_module(module, model="wmm", robustness=True)
    assert result.verdict_source == "exploration"
    assert not result.ok  # MP misbehaves under the WMM


# -- dead-fence lint -------------------------------------------------------

DEAD_FENCE_EXAMPLE = """
int data = 0;
int flag = 0;

void producer() {
    atomic_thread_fence(memory_order_seq_cst);
    data = 1;
    atomic_thread_fence(memory_order_seq_cst);
    flag = 1;
    atomic_thread_fence(memory_order_seq_cst);
}

int main() {
    int t = thread_create(producer);
    int f = flag;
    atomic_thread_fence(memory_order_seq_cst);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
"""


def test_dead_fence_lint_flags_edge_fences_only():
    module = compile_source(DEAD_FENCE_EXAMPLE, "fences")
    findings = find_dead_fences(module)
    # Leading fence (nothing shared before it) and trailing fence
    # (nothing shared after it) are dead; the two middle fences order
    # real pairs and must not be flagged.
    assert len(findings) == 2
    reasons = sorted(f["reason"] for f in findings)
    assert reasons == [
        "no shared access after it on any path",
        "no shared access before it on any path",
    ]
    for finding in findings:
        assert {"function", "block", "index", "order", "reason"} <= set(
            finding
        )


def test_live_fences_are_not_flagged():
    source, _expected = LITMUS_TESTS["MP+fences"]
    module = compile_source(source, "mp_fences")
    assert find_dead_fences(module) == []


# -- RMW half delay semantics ----------------------------------------------
#
# Only the read half of an RMW acquires and only the write half
# releases (mirroring machine.WindowEntry).  ``delayable_pairs()``
# exposes the per-half provenance, so these tests pin down which half
# blocks a delay.

ACQUIRE_RMW = """
int x = 0;
int y = 0;

void worker() {
    atomic_fetch_add_explicit(&x, 1, memory_order_acquire);
    atomic_store_explicit(&y, 1, memory_order_relaxed);
}

int main() {
    int t = thread_create(worker);
    atomic_store_explicit(&x, 5, memory_order_relaxed);
    int r = atomic_load_explicit(&y, memory_order_relaxed);
    thread_join(t);
    return 0;
}
"""

RELEASE_RMW = """
int x = 0;
int y = 0;

void worker() {
    atomic_store_explicit(&y, 1, memory_order_relaxed);
    atomic_fetch_add_explicit(&x, 1, memory_order_release);
}

int main() {
    int t = thread_create(worker);
    atomic_store_explicit(&x, 5, memory_order_relaxed);
    int r = atomic_load_explicit(&y, memory_order_relaxed);
    thread_join(t);
    return 0;
}
"""


def _worker_pairs(source, model):
    module = compile_source(source, "rmw_halves")
    analyzer = RobustnessAnalyzer(module, model=model)
    return [
        (a, b) for a, b in analyzer.delayable_pairs()
        if a["function"] == "worker"
    ]


def test_acquire_rmw_read_half_blocks_delay_but_write_half_does_not():
    pairs = _worker_pairs(ACQUIRE_RMW, "wmm")
    halves = {a["half"] for a, _b in pairs if a["kind"].startswith("rmw")}
    # The acquiring read half pins every later access; the write half
    # of the same instruction does not acquire, so the later relaxed
    # store may still overtake it.
    assert halves == {"write"}
    for a, b in pairs:
        assert a["order"] == "acquire"
        assert b["kind"] == "store"


def test_release_rmw_write_half_blocks_delay_but_read_half_does_not():
    pairs = _worker_pairs(RELEASE_RMW, "wmm")
    halves = {b["half"] for _a, b in pairs if b["kind"].startswith("rmw")}
    # The releasing write half must wait for every earlier access; the
    # read half of the same instruction does not release, so it may
    # still commit early.
    assert halves == {"read"}
    for _a, b in pairs:
        assert b["order"] == "release"


def test_only_one_half_of_an_rmw_is_ever_the_culprit():
    """Regression: the two halves of one instruction must be tracked
    independently — a repair that strengthens the wrong half would
    leave the delayable half uncovered."""
    module = compile_source(RELEASE_RMW, "rmw_halves")
    analyzer = RobustnessAnalyzer(module, model="wmm")
    rmw_sides = [
        b["half"] for _a, b in analyzer.delayable_pairs()
        if b["kind"].startswith("rmw")
    ]
    assert rmw_sides == ["read"]


def test_tso_rmw_halves_drain_the_buffer():
    """Under TSO an RMW drains the store buffer: neither half can be
    delayed past, and neither half can itself overtake."""
    for source in (ACQUIRE_RMW, RELEASE_RMW):
        module = compile_source(source, "rmw_halves")
        analyzer = RobustnessAnalyzer(module, model="tso")
        for a, b in analyzer.delayable_pairs():
            assert not a["kind"].startswith("rmw"), (a, b)
            assert not b["kind"].startswith("rmw"), (a, b)
            assert a["kind"] == "store" and b["kind"] == "load"


def test_delayable_pairs_order_is_deterministic():
    module = compile_source(ACQUIRE_RMW, "rmw_halves")
    first = RobustnessAnalyzer(module, model="wmm").delayable_pairs()
    second = RobustnessAnalyzer(module, model="wmm").delayable_pairs()
    assert first == second


def test_lint_report_carries_dead_fences():
    from repro.api import lint_module
    from repro.core.report import LINT_SCHEMA_VERSION

    module = compile_source(DEAD_FENCE_EXAMPLE, "fences")
    report = lint_module(module)
    payload = report.to_dict()
    assert payload["schema_version"] == LINT_SCHEMA_VERSION == 4
    assert len(payload["dead_fences"]) == 2
    assert "dead fences" in report.summary()
    assert "[dead-fence]" in report.render()
