"""Tests for scoped memory dependence and instruction influence."""

from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.loops import find_loops
from repro.analysis.memdep import MemoryDependence
from repro.api import compile_source
from repro.ir import instructions as ins


def setup(source, fn="main"):
    function = compile_source(source).functions[fn]
    loops = find_loops(function)
    return function, loops, InfluenceAnalysis(function)


def test_reaching_store_within_loop():
    function, loops, _ = setup("""
int g;
int main() {
    int l;
    do { l = g; } while (l == 0);
    return l;
}
""")
    memdep = MemoryDependence(function)
    loop = loops[0]
    loop_loads = [
        i for i in loop.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ]
    # The condition's load of l is reached by the in-loop store l = g.
    cond_load = loop_loads[-1]
    stores = memdep.reaching_stores(cond_load, loop.body)
    assert len(stores) == 1


def test_out_of_region_stores_excluded():
    function, loops, _ = setup("""
int g;
int main() {
    int l = 5;
    while (g) { int unused = l; }
    return l;
}
""")
    memdep = MemoryDependence(function)
    loop = loops[0]
    loop_loads = [
        i for i in loop.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ]
    # l is only stored before the loop: no in-region reaching stores.
    assert memdep.reaching_stores(loop_loads[0], loop.body) == set()


def test_exact_store_kills_previous():
    function, _loops, _ = setup("""
int g;
int main() {
    int l = 1;
    l = 2;
    g = l;
    return 0;
}
""")
    memdep = MemoryDependence(function)
    load = [
        i for i in function.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ][-1]
    region = set(function.blocks)
    stores = memdep.reaching_stores(load, region)
    assert len(stores) == 1
    assert stores.pop().value.value == 2


def test_influence_finds_nonlocal_through_local_copy():
    function, loops, influence = setup("""
int flag;
int main() {
    int l;
    do { l = flag & 255; } while (l != 1);
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert closure.has_nonlocal
    assert any(
        getattr(acc.pointer, "name", "") == "flag"
        for acc in closure.nonlocal_accesses
    )


def test_influence_pure_local_condition():
    function, loops, influence = setup("""
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s = s + i; }
    return s;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert not closure.has_nonlocal
    assert closure.local_stores  # the i++ feeds the condition


def test_influence_records_call_dependency():
    function, loops, influence = setup("""
int probe() { return 1; }
int main() {
    while (probe() == 0) { }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert closure.has_call
    assert closure.has_nonlocal  # calls are opaque, treated non-local


def test_influence_through_rmw_result():
    function, loops, influence = setup("""
int lock_word;
int main() {
    while (atomic_cmpxchg(&lock_word, 0, 1) != 0) { }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert any(
        isinstance(acc, ins.Cmpxchg) for acc in closure.nonlocal_accesses
    )


def test_influence_address_dependency():
    function, loops, influence = setup("""
int table[8];
int idx;
int main() {
    while (table[idx] == 0) { }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    names = {
        getattr(acc.pointer, "name", None)
        for acc in closure.nonlocal_accesses
        if isinstance(acc.pointer, object)
    }
    # Both the table element and the index feeding its address count.
    assert len(closure.nonlocal_accesses) == 2


def test_constant_store_detection():
    function, loops, influence = setup("""
int g;
int main() {
    int l;
    do { l = 7; } while (l != g);
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert all(
        influence.stored_value_is_constant(store)
        for store in closure.local_stores
    )


def test_nested_loops_have_distinct_closures():
    function, loops, influence = setup("""
int flag;
int work;
int main() {
    for (int i = 0; i < 4; i++) {
        work = work + i;
        while (flag == 0) { cpu_relax(); }
    }
    return 0;
}
""")
    assert len(loops) == 2
    inner = min(loops, key=lambda loop: len(loop.body))
    outer = max(loops, key=lambda loop: len(loop.body))
    assert inner.body < outer.body  # properly nested
    condition = inner.exit_conditions()[0]
    closure = influence.closure(condition, inner.body)
    # The inner spin condition depends on @flag but not on @work or the
    # outer induction variable's in-loop stores outside the region.
    assert closure.has_nonlocal
    names = {
        getattr(acc.pointer, "name", None)
        for acc in closure.nonlocal_accesses
        if hasattr(acc, "pointer")
    }
    assert "flag" in names
    assert "work" not in names


def test_outer_loop_closure_sees_inner_dependencies():
    function, loops, influence = setup("""
int limit;
int main() {
    int total = 0;
    for (int i = 0; i < limit; i++) {
        for (int j = 0; j < 4; j++) { total = total + 1; }
    }
    return total;
}
""")
    assert len(loops) == 2
    outer = max(loops, key=lambda loop: len(loop.body))
    condition = outer.exit_conditions()[0]
    closure = influence.closure(condition, outer.body)
    assert closure.has_nonlocal
    assert any(
        getattr(acc.pointer, "name", None) == "limit"
        for acc in closure.nonlocal_accesses
    )


def test_memdep_scopes_stores_to_inner_region():
    function, loops, _ = setup("""
int g;
int main() {
    int l = 0;
    for (int i = 0; i < 4; i++) {
        l = 1;
        do { l = g; } while (l == 0);
    }
    return l;
}
""")
    memdep = MemoryDependence(function)
    inner = min(loops, key=lambda loop: len(loop.body))
    inner_loads = [
        i for i in inner.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ]
    cond_load = inner_loads[-1]
    # Within the inner region only the l = g store reaches the
    # condition; the outer loop's l = 1 is out of region.
    stores = memdep.reaching_stores(cond_load, inner.body)
    assert len(stores) == 1
    assert not any(
        getattr(store.value, "value", None) == 1 for store in stores
    )


def test_multi_level_gep_address_dependency():
    function, loops, influence = setup("""
int grid[4][4];
int row;
int col;
int main() {
    while (grid[row][col] == 0) { cpu_relax(); }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    # The element load plus both index loads feed the condition.
    names = {
        getattr(acc.pointer, "name", None)
        for acc in closure.nonlocal_accesses
        if hasattr(acc, "pointer")
    }
    assert {"row", "col"} <= names
    assert len(closure.nonlocal_accesses) == 3


def test_escaped_local_spin_is_nonlocal_influence():
    function, loops, influence = setup("""
void publish(int *p) { *p = 1; }
int main() {
    int ready = 0;
    int t = thread_create(publish, &ready);
    while (ready == 0) { cpu_relax(); }
    thread_join(t);
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    # ready's address escaped through the spawn, so spinning on it is a
    # non-local dependence even though it is an alloca.
    assert closure.has_nonlocal


def test_nonlocal_stores_matching_by_global():
    function, loops, influence = setup("""
int flag;
int main() {
    while (flag) { flag = flag - 1; }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    matching = influence.nonlocal_stores_matching(
        closure.nonlocal_accesses, loop.body
    )
    assert len(matching) == 1
