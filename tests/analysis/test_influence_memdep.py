"""Tests for scoped memory dependence and instruction influence."""

from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.loops import find_loops
from repro.analysis.memdep import MemoryDependence
from repro.api import compile_source
from repro.ir import instructions as ins


def setup(source, fn="main"):
    function = compile_source(source).functions[fn]
    loops = find_loops(function)
    return function, loops, InfluenceAnalysis(function)


def test_reaching_store_within_loop():
    function, loops, _ = setup("""
int g;
int main() {
    int l;
    do { l = g; } while (l == 0);
    return l;
}
""")
    memdep = MemoryDependence(function)
    loop = loops[0]
    loop_loads = [
        i for i in loop.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ]
    # The condition's load of l is reached by the in-loop store l = g.
    cond_load = loop_loads[-1]
    stores = memdep.reaching_stores(cond_load, loop.body)
    assert len(stores) == 1


def test_out_of_region_stores_excluded():
    function, loops, _ = setup("""
int g;
int main() {
    int l = 5;
    while (g) { int unused = l; }
    return l;
}
""")
    memdep = MemoryDependence(function)
    loop = loops[0]
    loop_loads = [
        i for i in loop.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ]
    # l is only stored before the loop: no in-region reaching stores.
    assert memdep.reaching_stores(loop_loads[0], loop.body) == set()


def test_exact_store_kills_previous():
    function, _loops, _ = setup("""
int g;
int main() {
    int l = 1;
    l = 2;
    g = l;
    return 0;
}
""")
    memdep = MemoryDependence(function)
    load = [
        i for i in function.instructions()
        if isinstance(i, ins.Load) and isinstance(i.pointer, ins.Alloca)
    ][-1]
    region = set(function.blocks)
    stores = memdep.reaching_stores(load, region)
    assert len(stores) == 1
    assert stores.pop().value.value == 2


def test_influence_finds_nonlocal_through_local_copy():
    function, loops, influence = setup("""
int flag;
int main() {
    int l;
    do { l = flag & 255; } while (l != 1);
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert closure.has_nonlocal
    assert any(
        getattr(acc.pointer, "name", "") == "flag"
        for acc in closure.nonlocal_accesses
    )


def test_influence_pure_local_condition():
    function, loops, influence = setup("""
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s = s + i; }
    return s;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert not closure.has_nonlocal
    assert closure.local_stores  # the i++ feeds the condition


def test_influence_records_call_dependency():
    function, loops, influence = setup("""
int probe() { return 1; }
int main() {
    while (probe() == 0) { }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert closure.has_call
    assert closure.has_nonlocal  # calls are opaque, treated non-local


def test_influence_through_rmw_result():
    function, loops, influence = setup("""
int lock_word;
int main() {
    while (atomic_cmpxchg(&lock_word, 0, 1) != 0) { }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert any(
        isinstance(acc, ins.Cmpxchg) for acc in closure.nonlocal_accesses
    )


def test_influence_address_dependency():
    function, loops, influence = setup("""
int table[8];
int idx;
int main() {
    while (table[idx] == 0) { }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    names = {
        getattr(acc.pointer, "name", None)
        for acc in closure.nonlocal_accesses
        if isinstance(acc.pointer, object)
    }
    # Both the table element and the index feeding its address count.
    assert len(closure.nonlocal_accesses) == 2


def test_constant_store_detection():
    function, loops, influence = setup("""
int g;
int main() {
    int l;
    do { l = 7; } while (l != g);
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    assert all(
        influence.stored_value_is_constant(store)
        for store in closure.local_stores
    )


def test_nonlocal_stores_matching_by_global():
    function, loops, influence = setup("""
int flag;
int main() {
    while (flag) { flag = flag - 1; }
    return 0;
}
""")
    loop = loops[0]
    condition = loop.exit_conditions()[0]
    closure = influence.closure(condition, loop.body)
    matching = influence.nonlocal_stores_matching(
        closure.nonlocal_accesses, loop.body
    )
    assert len(matching) == 1
