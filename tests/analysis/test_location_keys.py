"""Location-key edge cases: nesting, arrays, casts, pointer arguments.

Covers the key derivations both alias modes rely on: the type-based
``("field", struct, offset)`` / ``("global", name)`` signatures, and
the points-to fallback keys that close the pointer-argument gap.
"""

import pytest

from repro.analysis.cache import AnalysisCache
from repro.analysis.nonlocal_ import gep_signature
from repro.api import compile_source
from repro.ir import instructions as ins


def accesses_in(module, fn="main"):
    return [
        i for i in module.functions[fn].instructions()
        if isinstance(i, (ins.Load, ins.Store))
    ]


def store_of(module, value, fn="main"):
    for instr in accesses_in(module, fn):
        if isinstance(instr, ins.Store):
            if getattr(instr.value, "value", None) == value:
                return instr
    raise AssertionError(f"no store of {value} in {fn}")


def provider(module, mode):
    return AnalysisCache(module).key_provider(mode)


def test_nested_struct_field_uses_innermost_struct():
    module = compile_source("""
struct inner { int a; int b; };
struct outer { int x; struct inner in; };
struct outer o;
int main() {
    o.in.b = 7;
    return o.x;
}
""")
    store = store_of(module, 7)
    # The innermost field step names the key: inner.b at offset 1, not
    # outer at the flattened offset.
    assert gep_signature(store.pointer) == ("field", "inner", 1)


def test_array_of_structs_matches_pointer_access():
    module = compile_source("""
struct rec { int lo; int hi; };
struct rec table[4];
int main() {
    table[2].hi = 9;
    struct rec *p = &table[1];
    p->hi = 3;
    return 0;
}
""")
    indexed = store_of(module, 9)
    through_ptr = store_of(module, 3)
    key = gep_signature(indexed.pointer)
    assert key == ("field", "rec", 1)
    # nodes[i].f and p->f are the same location class (§3.4 type match).
    assert gep_signature(through_ptr.pointer) == key


def test_cast_interleaved_gep_chain_keeps_field_key():
    module = compile_source("""
struct n { int v; int w; };
int g;
int main() {
    struct n *p = (struct n *)&g;
    p->w = 4;
    return 0;
}
""")
    store = store_of(module, 4)
    assert gep_signature(store.pointer) == ("field", "n", 1)


def test_scalar_global_key():
    module = compile_source("int flag;\nint main() { flag = 1; return 0; }")
    cache = AnalysisCache(module)
    tb = cache.key_provider("type_based")
    store = store_of(module, 1)
    key, origin = tb.key_with_origin(module.functions["main"], store.pointer)
    assert key == ("global", "flag")
    assert origin == "type"


POINTER_ARG = """
int flag = 0;
void raise_it(int *f) { *f = 1; }
int main() { raise_it(&flag); return flag; }
"""


def test_pointer_argument_has_no_type_based_key():
    module = compile_source(POINTER_ARG)
    tb = provider(module, "type_based")
    store = store_of(module, 1, fn="raise_it")
    key, origin = tb.key_with_origin(
        module.functions["raise_it"], store.pointer
    )
    assert key is None
    assert origin == "none"


def test_pointer_argument_gets_points_to_key():
    module = compile_source(POINTER_ARG)
    pt = provider(module, "points_to")
    store = store_of(module, 1, fn="raise_it")
    key, origin = pt.key_with_origin(
        module.functions["raise_it"], store.pointer
    )
    # A singleton global target bridges into the existing global key so
    # the access joins the same buddy group as direct `flag` accesses.
    assert key == ("global", "flag")
    assert origin == "pts_global"


def test_pointer_argument_with_two_targets_gets_class_key():
    module = compile_source("""
int a = 0;
int b = 0;
void set(int *p) { *p = 1; }
int main() { set(&a); set(&b); return a + b; }
""")
    pt = provider(module, "points_to")
    store = store_of(module, 1, fn="set")
    key, origin = pt.key_with_origin(module.functions["set"], store.pointer)
    assert key == ("pts", "@a", "@b")
    assert origin == "pts_class"


def test_type_key_wins_over_points_to_key():
    # A field-shaped access keeps its type signature even when the
    # points-to sets could also name it: pts keys only fill None slots,
    # so they can never split or grow an existing buddy group.
    module = compile_source("""
struct rec { int lo; int hi; };
struct rec shared;
void touch(struct rec *r) { r->lo = 2; }
int main() { touch(&shared); return shared.lo; }
""")
    pt = provider(module, "points_to")
    store = store_of(module, 2, fn="touch")
    key, origin = pt.key_with_origin(module.functions["touch"], store.pointer)
    assert key == ("field", "rec", 0)
    assert origin == "type"


def test_unknown_pointer_is_keyless_in_both_modes():
    module = compile_source("""
int take(int *p) { *p = 6; return 0; }
int main() { return 0; }
""")
    store = store_of(module, 6, fn="take")
    fn = module.functions["take"]
    for mode in ("type_based", "points_to"):
        key, origin = provider(module, mode).key_with_origin(fn, store.pointer)
        assert key is None
        assert origin == "none"


def test_modes_agree_on_typed_accesses():
    # Sanity: on a program with only type-shaped accesses, the two
    # providers produce identical keys for every load/store.
    module = compile_source("""
struct node { int state; int key; };
struct node n;
int g;
int main() {
    n.state = 1;
    g = n.key;
    return g;
}
""")
    cache = AnalysisCache(module)
    tb = cache.key_provider("type_based")
    pt = cache.key_provider("points_to")
    main = module.functions["main"]
    for instr in accesses_in(module):
        pointer = instr.accessed_pointer()
        assert tb.location_key(main, pointer) == pt.location_key(main, pointer)


def test_unknown_mode_rejected():
    module = compile_source("int main() { return 0; }")
    with pytest.raises(ValueError):
        AnalysisCache(module).key_provider("flow_sensitive")
