"""Tests for CFG utilities and the dominator tree."""

from repro.analysis.cfg import predecessors, reachable_blocks, reverse_postorder
from repro.analysis.dominators import DominatorTree
from repro.api import compile_source


def get_fn(source, name="main"):
    return compile_source(source).functions[name]


DIAMOND = """
int g;
int main() {
    int x = 0;
    if (g) { x = 1; } else { x = 2; }
    return x;
}
"""

LOOPY = """
int g;
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (g) { s = s + 1; }
    }
    return s;
}
"""


def test_predecessors_diamond():
    fn = get_fn(DIAMOND)
    preds = predecessors(fn)
    entry = fn.entry
    assert preds[entry] == []
    merge = next(b for b in fn.blocks if b.label.startswith("if.end"))
    assert len(preds[merge]) == 2


def test_reverse_postorder_starts_at_entry():
    fn = get_fn(LOOPY)
    rpo = reverse_postorder(fn)
    assert rpo[0] is fn.entry
    assert len(rpo) == len(set(rpo))
    # Every reachable block appears.
    assert set(rpo) == reachable_blocks(fn)


def test_rpo_places_dominators_first():
    fn = get_fn(LOOPY)
    rpo = reverse_postorder(fn)
    index = {block: i for i, block in enumerate(rpo)}
    tree = DominatorTree(fn)
    for block in rpo:
        if block is fn.entry:
            continue
        assert index[tree.idom[block]] < index[block]


def test_entry_dominates_everything():
    fn = get_fn(DIAMOND)
    tree = DominatorTree(fn)
    for block in fn.blocks:
        assert tree.dominates(fn.entry, block)


def test_branch_arms_do_not_dominate_merge():
    fn = get_fn(DIAMOND)
    tree = DominatorTree(fn)
    then_block = next(b for b in fn.blocks if b.label.startswith("if.then"))
    merge = next(b for b in fn.blocks if b.label.startswith("if.end"))
    assert not tree.dominates(then_block, merge)
    assert tree.dominates(fn.entry, merge)


def test_loop_header_dominates_body():
    fn = get_fn(LOOPY)
    tree = DominatorTree(fn)
    header = next(b for b in fn.blocks if b.label.startswith("for.cond"))
    body = next(b for b in fn.blocks if b.label.startswith("for.body"))
    step = next(b for b in fn.blocks if b.label.startswith("for.step"))
    assert tree.dominates(header, body)
    assert tree.dominates(header, step)
    assert not tree.dominates(body, header)


def test_dominates_is_reflexive():
    fn = get_fn(DIAMOND)
    tree = DominatorTree(fn)
    for block in fn.blocks:
        assert tree.dominates(block, block)
