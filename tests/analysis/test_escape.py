"""Tests for the thread-escape analysis over the points-to graph."""

from repro.analysis.cache import AnalysisCache
from repro.analysis.nonlocal_ import (
    ESCAPE_CALL,
    ESCAPE_SPAWN,
    ESCAPE_STORED,
    NonLocalInfo,
)
from repro.api import compile_source
from repro.ir import instructions as ins


def escape_of(module, fn="main"):
    cache = AnalysisCache(module)
    return cache, cache.thread_escape()


def obj_by_label(escape, label):
    for obj in escape.pointsto.objects:
        if obj.label == label:
            return obj
    raise AssertionError(f"no object {label}")


def test_globals_are_shared():
    module = compile_source("int g;\nint main() { return g; }")
    _cache, escape = escape_of(module)
    assert escape.is_shared(obj_by_label(escape, "@g"))


def test_plain_local_is_thread_local():
    module = compile_source("int main() { int x = 1; return x; }")
    _cache, escape = escape_of(module)
    assert escape.is_thread_local(obj_by_label(escape, "main:%x"))


def test_spawn_argument_escapes():
    module = compile_source("""
void worker(int *p) { *p = 5; }
int main() {
    int cell = 0;
    int t = thread_create(worker, &cell);
    thread_join(t);
    return cell;
}
""")
    _cache, escape = escape_of(module)
    assert escape.is_shared(obj_by_label(escape, "main:%cell"))


def test_reachable_from_global_escapes():
    # A heap node linked into a global list is reachable by any thread.
    module = compile_source("""
int *head;
int main() {
    int *node = malloc(2);
    head = node;
    return 0;
}
""")
    _cache, escape = escape_of(module)
    heap = next(o for o in escape.pointsto.objects if o.kind == "heap")
    assert escape.is_shared(heap)


def test_private_heap_is_thread_local():
    module = compile_source("""
int main() {
    int *scratch = malloc(4);
    *scratch = 9;
    return *scratch;
}
""")
    _cache, escape = escape_of(module)
    heap = next(o for o in escape.pointsto.objects if o.kind == "heap")
    assert escape.is_thread_local(heap)


def test_pointer_is_thread_local_requires_known_targets():
    module = compile_source("""
int take(int *p) { return *p; }
int main() { int x = 0; return x; }
""")
    _cache, escape = escape_of(module)
    arg = module.functions["take"].arguments[0]
    # Empty points-to set: must be conservative, not thread-local.
    assert not escape.pointer_is_thread_local(arg)


def test_local_passed_to_nonleaking_callee_stays_thread_local():
    # Satellite case: an address-taken local passed to a call.  The
    # callee only reads/writes through it, so the points-to mode can
    # prove the object never becomes reachable by another thread.
    module = compile_source("""
void bump(int *p) { *p = *p + 1; }
int main() {
    int x = 0;
    bump(&x);
    return x;
}
""")
    _cache, escape = escape_of(module)
    assert escape.is_thread_local(obj_by_label(escape, "main:%x"))


def test_local_published_by_callee_is_shared():
    # Same shape, but the callee stores the pointer into a global: the
    # object is now reachable from shared memory.
    module = compile_source("""
int *published;
void leak(int *p) { published = p; }
int main() {
    int x = 0;
    leak(&x);
    return x;
}
""")
    _cache, escape = escape_of(module)
    assert escape.is_shared(obj_by_label(escape, "main:%x"))


def test_escape_reasons_distinguish_call_from_store():
    module = compile_source("""
int *sink_slot;
void callee(int *p) { *p = 1; }
int main() {
    int a = 0;
    int b = 0;
    callee(&a);
    sink_slot = &b;
    return a + b;
}
""")
    info = NonLocalInfo(module.functions["main"])
    reasons = {
        alloca.name: info.escape_reason(alloca)
        for alloca in info.escape_reasons
    }
    assert reasons["a"] == {ESCAPE_CALL}
    assert ESCAPE_STORED in reasons["b"]
    call_only = {a.name for a in info.call_only_escapes()}
    assert call_only == {"a"}


def test_spawn_escape_reason_is_not_call_only():
    module = compile_source("""
void worker(int *p) { *p = 5; }
int main() {
    int cell = 0;
    int t = thread_create(worker, &cell);
    thread_join(t);
    return cell;
}
""")
    info = NonLocalInfo(module.functions["main"])
    cell = next(
        a for a in info.escape_reasons
        if a.name == "cell"
    )
    assert ESCAPE_SPAWN in info.escape_reason(cell)
    assert cell not in info.call_only_escapes()
