"""Tests for the exception hierarchy and error reporting quality."""

import pytest

from repro import errors
from repro.api import compile_source


def test_hierarchy():
    assert issubclass(errors.LexerError, errors.SourceError)
    assert issubclass(errors.ParseError, errors.SourceError)
    assert issubclass(errors.SemanticError, errors.SourceError)
    assert issubclass(errors.SourceError, errors.ReproError)
    assert issubclass(errors.IRError, errors.ReproError)
    assert issubclass(errors.AssertionFailure, errors.VMError)
    assert issubclass(errors.VMError, errors.ReproError)


def test_source_errors_carry_positions():
    error = errors.ParseError("boom", 12, 3)
    assert error.line == 12
    assert error.column == 3
    assert str(error).startswith("12:3:")


def test_source_error_without_position():
    error = errors.SemanticError("no position")
    assert error.line is None
    assert str(error) == "no position"


def test_assertion_failure_records_thread():
    error = errors.AssertionFailure("bad", thread_id=2)
    assert error.thread_id == 2


@pytest.mark.parametrize("source,needle", [
    ("int x = $;", "unexpected character"),
    ("int x = ;", "expression"),
    ("void f() { return 1; }", "void function"),
    ("int f() { return g; }", "undeclared identifier"),
    ("struct s { int a; };\nint f(struct s *p) { return p->zzz; }",
     "no field"),
])
def test_diagnostics_name_the_problem(source, needle):
    with pytest.raises(errors.ReproError) as excinfo:
        compile_source(source)
    assert needle in str(excinfo.value)


def test_diagnostics_point_at_the_right_line():
    source = "int ok = 1;\nint also_ok = 2;\nint bad = missing;\n"
    with pytest.raises(errors.SemanticError) as excinfo:
        compile_source(source)
    assert excinfo.value.line == 3
