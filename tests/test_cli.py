"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

MP = """
int flag = 0;
int msg = 0;
void writer() { msg = 42; flag = 1; }
int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    assert(msg == 42);
    thread_join(t);
    return 0;
}
"""

TAS = """
int lock_word = 0;
volatile int counter = 0;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}
void unlock() { lock_word = 0; }
void worker() { lock(); counter = counter + 1; unlock(); }
void thread_fn() { worker(); }
int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    return counter;
}
"""


@pytest.fixture
def mp_file(tmp_path):
    path = tmp_path / "mp.c"
    path.write_text(MP)
    return str(path)


@pytest.fixture
def tas_file(tmp_path):
    path = tmp_path / "tas.c"
    path.write_text(TAS)
    return str(path)


def test_port_command(mp_file, capsys):
    assert main(["port", mp_file]) == 0
    out = capsys.readouterr().out
    assert "1 spinloops" in out
    assert "atomig" in out


def test_port_emit_ir_to_file(mp_file, tmp_path, capsys):
    out_path = tmp_path / "ported.ir"
    assert main(["port", mp_file, "--emit-ir", "-o", str(out_path)]) == 0
    text = out_path.read_text()
    assert "atomic(seq_cst)" in text


def test_check_command_finds_wmm_bug(mp_file, capsys):
    code = main(["check", mp_file, "--models", "tso", "wmm",
                 "--level", "original", "--max-steps", "400"])
    assert code == 1
    out = capsys.readouterr().out
    assert "tso: ok" in out
    assert "VIOLATION" in out


def test_check_command_ported_is_clean(mp_file, capsys):
    code = main(["check", mp_file, "--models", "wmm",
                 "--max-steps", "400"])
    assert code == 0
    assert "wmm: ok" in capsys.readouterr().out


def test_check_trace_printed(mp_file, capsys):
    main(["check", mp_file, "--models", "wmm", "--level", "original",
          "--trace", "3", "--max-steps", "400"])
    out = capsys.readouterr().out
    assert "commit" in out  # schedule steps shown


def test_run_command(mp_file, capsys):
    assert main(["run", mp_file]) == 0
    out = capsys.readouterr().out
    assert "exit value: 0" in out
    assert "cycles:" in out


def test_run_with_ablation_flags(mp_file, capsys):
    assert main(["run", mp_file, "--no-inline", "--level", "atomig"]) == 0


def test_lint_command_reports_races(mp_file, capsys):
    assert main(["lint", mp_file]) == 0
    out = capsys.readouterr().out
    assert "racy" in out
    assert "unordered concurrent access" in out


def test_lint_fail_on_racy(mp_file, tas_file):
    assert main(["lint", mp_file, "--fail-on-racy"]) == 1
    assert main(["lint", tas_file, "--fail-on-racy"]) == 0


def test_lint_classifies_protected(tas_file, capsys):
    assert main(["lint", tas_file]) == 0
    out = capsys.readouterr().out
    assert "[lock]" in out
    assert "[protected]" in out
    assert "@lock_word" in out


def test_lint_json_output(tas_file, capsys):
    from repro.core.report import LINT_SCHEMA_VERSION

    assert main(["lint", tas_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == LINT_SCHEMA_VERSION
    assert payload["counts"]["protected"] >= 2
    assert any(
        lock["key"] == ["global", "lock_word"] and not lock["heuristic"]
        for lock in payload["locks"]
    )
    assert all(
        {"function", "class", "remediation"} <= set(f)
        for f in payload["findings"]
    )


def test_lint_no_name_heuristic(tas_file, capsys):
    assert main(["lint", tas_file, "--no-name-heuristic"]) == 0
    out = capsys.readouterr().out
    assert "name heuristic" not in out


def test_lint_requires_file_or_corpus(capsys):
    assert main(["lint"]) == 2


def test_port_with_prune_protected(tas_file, capsys):
    assert main(["port", tas_file, "--prune-protected"]) == 0
    out = capsys.readouterr().out
    assert "lock-protected accesses pruned:" in out


INDIRECT = """
int flag = 0;
int msg = 0;
void publish(int *f, int *m, int depth) {
    if (depth > 0) { publish(f, m, depth - 1); return; }
    *m = 42;
    *f = 1;
}
void writer() { publish(&flag, &msg, 1); }
int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    assert(msg == 42);
    thread_join(t);
    return 0;
}
"""


@pytest.fixture
def indirect_file(tmp_path):
    path = tmp_path / "indirect.c"
    path.write_text(INDIRECT)
    return str(path)


def test_aliases_command(indirect_file, capsys):
    assert main(["aliases", indirect_file]) == 0
    out = capsys.readouterr().out
    assert "abstract objects" in out
    assert "@flag" in out
    assert "shared" in out
    assert "pts_global" in out


def test_aliases_type_based_mode(indirect_file, capsys):
    assert main(["aliases", indirect_file,
                 "--alias-mode", "type_based"]) == 0
    out = capsys.readouterr().out
    assert "[type_based]" in out
    assert "pts_global" not in out


def test_port_alias_mode_changes_barriers(indirect_file, capsys):
    assert main(["port", indirect_file]) == 0
    tb_out = capsys.readouterr().out
    assert main(["port", indirect_file, "--alias-mode", "points_to"]) == 0
    pt_out = capsys.readouterr().out

    def barriers(out):
        for line in out.splitlines():
            if "barriers" in line:
                return line
        raise AssertionError("no barrier line")

    assert barriers(tb_out) != barriers(pt_out)


def test_litmus_command(capsys):
    assert main(["litmus", "SB"]) == 0
    out = capsys.readouterr().out
    assert "sc=ok" in out and "tso=bug" in out
    assert "MISMATCH" not in out


def test_litmus_unknown_name(capsys):
    assert main(["litmus", "NOPE"]) == 2


def test_tables_command_table1(capsys):
    assert main(["tables", "1"]) == 0
    out = capsys.readouterr().out
    assert "AtoMig" in out and "Naive" in out


def test_tables_unknown_number(capsys):
    assert main(["tables", "42"]) == 2


def test_optimize_command(tas_file, capsys):
    assert main(["optimize", tas_file]) == 0
    out = capsys.readouterr().out
    assert "accesses weakened" in out
    assert "verdict ok" in out
    assert "NOT PRESERVED" not in out


def test_optimize_json_output(tas_file, capsys):
    assert main(["optimize", tas_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdict_preserved"]
    assert payload["barrier_cost_after"] <= payload["barrier_cost_before"]
    assert payload["checks_run"] >= 1


def test_optimize_emit_ir(tas_file, tmp_path, capsys):
    out_path = tmp_path / "optimized.ir"
    assert main(["optimize", tas_file, "--emit-ir", "-o",
                 str(out_path)]) == 0
    from repro.ir.parser import parse_module

    module = parse_module(out_path.read_text())
    orders = {
        instr.order.name.lower()
        for instr in module.instructions()
        if getattr(instr, "order", None) is not None
    }
    assert "relaxed" in orders or "release" in orders


def test_port_optimize_flag(tas_file, capsys):
    assert main(["port", tas_file, "--optimize"]) == 0
    out = capsys.readouterr().out
    assert "optimize:" in out
    assert "barrier cost" in out


def test_tables_9_runs(capsys):
    from repro.bench import tables as T

    rows = T.table9(benchmarks=("ck_spinlock_cas",))
    assert rows[0]["verdict_kept"]
    assert rows[0]["cost_opt"] < rows[0]["cost_sc"]


def test_repair_command_fixes_unported_spinlock(tas_file, capsys):
    # At level original the TAS spinlock is non-robust under the WMM;
    # the repair must synthesize order back and exit 0.
    assert main(["repair", tas_file, "--level", "original"]) == 0
    out = capsys.readouterr().out
    assert "non-robust" in out or "robust" in out
    assert "NON-ROBUST after repair" not in out


def test_repair_json_output_with_verify(tas_file, capsys):
    assert main(["repair", tas_file, "--level", "original", "--json",
                 "--verify"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["robust_after"]
    assert payload["rounds"], "no repair rounds on a non-robust input"
    assert payload["verify"]["verdict_source"] == "robustness"
    assert payload["verify"]["states"] == 0
    assert payload["cost_after"]["barriers"] >= \
        payload["cost_before"]["barriers"]


def test_repair_emit_ir_round_trips(tas_file, tmp_path, capsys):
    out_path = tmp_path / "repaired.ir"
    assert main(["repair", tas_file, "--level", "original", "--emit-ir",
                 "-o", str(out_path)]) == 0
    from repro.analysis.robustness import analyze_robustness
    from repro.ir.parser import parse_module

    module = parse_module(out_path.read_text())
    assert analyze_robustness(module, model="wmm").robust


def test_repair_requires_file_or_corpus(capsys):
    assert main(["repair"]) == 2
    captured = capsys.readouterr()
    # Diagnostics go to stderr so --json pipelines stay parseable.
    assert "FILE is required" in captured.err
    assert captured.out == ""


def test_repair_power_arch_reported(tas_file, capsys):
    assert main(["repair", tas_file, "--level", "original", "--arch",
                 "power", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["arch"] == "power"


def test_port_repair_flag_prints_summary(tas_file, capsys):
    assert main(["port", tas_file, "--level", "original",
                 "--repair"]) == 0
    out = capsys.readouterr().out
    assert "repair [wmm/armv8]:" in out


def test_check_repair_flag_keeps_verdict(mp_file, capsys):
    assert main(["check", mp_file, "--models", "wmm", "--repair"]) == 0
    out = capsys.readouterr().out
    assert "violation" not in out


def test_port_json_output(mp_file, capsys):
    assert main(["port", mp_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["level"] == "atomig"
    assert payload["ported_implicit_barriers"] >= 1
    assert "stats" in payload


def test_port_json_emit_ir_without_output_warns(mp_file, capsys):
    assert main(["port", mp_file, "--json", "--emit-ir"]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout is still exactly one document
    assert "--emit-ir needs -o" in captured.err


def test_check_json_output(mp_file, capsys):
    code = main(["check", mp_file, "--models", "tso", "wmm",
                 "--level", "original", "--max-steps", "400", "--json"])
    assert code == 1  # the wmm violation still drives the exit code
    rows = json.loads(capsys.readouterr().out)
    by_model = {row["model"]: row for row in rows}
    assert by_model["tso"]["ok"]
    assert by_model["wmm"]["violation"] is not None


def test_litmus_unknown_name_diagnoses_on_stderr(capsys):
    assert main(["litmus", "NOPE"]) == 2
    captured = capsys.readouterr()
    assert "unknown litmus test" in captured.err
    assert captured.out == ""


def test_status_unreachable_daemon_exits_3(capsys):
    code = main(["status", "--url", "http://127.0.0.1:9",
                 "--timeout", "2"])
    assert code == 3
    assert "cannot reach" in capsys.readouterr().err


def test_robustness_corpus_json(capsys):
    from repro.analysis.robustness import ROBUSTNESS_SCHEMA_VERSION

    assert main(["robustness", "--corpus", "--json"]) == 0
    payloads = json.loads(capsys.readouterr().out)
    assert payloads, "corpus produced no JSON payloads"
    names = {p["benchmark"] for p in payloads}
    assert len(names) > 10
    for payload in payloads:
        assert payload["schema_version"] == ROBUSTNESS_SCHEMA_VERSION == 4
        assert payload["level"] in ("original", "atomig")
        assert {"robust", "model", "witnesses"} <= set(payload)
