"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.api import compile_source


@pytest.fixture
def compile_fn():
    """Compile Mini-C source text to a verified IR module."""
    return compile_source


def compile_snippet(body, globals_decl="", name="test"):
    """Wrap ``body`` statements in a main() and compile."""
    source = f"{globals_decl}\nint main() {{\n{body}\nreturn 0;\n}}\n"
    return compile_source(source, name)
