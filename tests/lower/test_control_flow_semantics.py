"""Behavioural tests for lowered control flow (run on the VM)."""

from repro.api import compile_source
from repro.vm.interp import run_module


def run(source):
    return run_module(compile_source(source))


def test_nested_loops_with_labels_and_goto():
    result = run("""
int main() {
    int found = 0;
    for (int i = 0; i < 5; i++) {
        for (int j = 0; j < 5; j++) {
            if (i * j == 6) {
                found = i * 10 + j;
                goto out;
            }
        }
    }
out:
    return found;
}
""")
    assert result.exit_value == 23  # i=2, j=3 is the first hit


def test_do_while_executes_at_least_once():
    result = run("""
int main() {
    int n = 0;
    do { n = n + 1; } while (0);
    return n;
}
""")
    assert result.exit_value == 1


def test_comma_operator_sequencing():
    result = run("""
int main() {
    int a = 0;
    int b = (a = 3, a + 4);
    return b;
}
""")
    assert result.exit_value == 7


def test_ternary_evaluates_single_arm():
    result = run("""
int counter = 0;
int tick(int v) { counter = counter + 1; return v; }
int main() {
    int x = 1 ? tick(5) : tick(9);
    return x * 10 + counter;
}
""")
    assert result.exit_value == 51  # one tick only


def test_logical_operators_yield_zero_one():
    result = run("""
int main() {
    int a = 5 && 9;
    int b = 0 || 7;
    int c = !3;
    int d = !0;
    return a * 1000 + b * 100 + c * 10 + d;
}
""")
    assert result.exit_value == 1101


def test_compound_assignment_operators():
    result = run("""
int main() {
    int x = 10;
    x += 5;
    x -= 3;
    x *= 2;
    x /= 4;
    x %= 4;
    x <<= 3;
    x >>= 1;
    x |= 1;
    x &= 7;
    x ^= 2;
    return x;
}
""")
    x = 10
    x += 5; x -= 3; x *= 2; x //= 4; x %= 4
    x <<= 3; x >>= 1; x |= 1; x &= 7; x ^= 2
    assert result.exit_value == x


def test_pre_and_post_increment_values():
    result = run("""
int main() {
    int x = 5;
    int a = x++;
    int b = ++x;
    return a * 100 + b * 10 + x;
}
""")
    assert result.exit_value == 5 * 100 + 7 * 10 + 7


def test_pointer_increment_walks_elements():
    result = run("""
struct wide { int a; int b; int c; };
struct wide arr[3];
int main() {
    for (int i = 0; i < 3; i++) { arr[i].b = i * 10; }
    struct wide *p = &arr[0];
    p++;
    int mid = p->b;
    p++;
    return mid + p->b;
}
""")
    assert result.exit_value == 30


def test_early_return_in_loop_unwinds_stack():
    result = run("""
int find(int needle) {
    int data[8];
    for (int i = 0; i < 8; i++) { data[i] = i * i; }
    for (int i = 0; i < 8; i++) {
        if (data[i] == needle) { return i; }
    }
    return -1;
}
int main() { return find(16) * 10 + find(999); }
""")
    assert result.exit_value == 4 * 10 - 1
