"""Unit tests for AST -> IR lowering."""

import pytest

from repro.api import compile_source
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.verifier import verify_module


def instrs(module, fn="main", kind=None):
    result = list(module.functions[fn].instructions())
    if kind is not None:
        result = [i for i in result if isinstance(i, kind)]
    return result


def test_params_are_spilled_to_allocas():
    module = compile_source("int f(int a, int b) { return a + b; }")
    allocas = instrs(module, "f", ins.Alloca)
    assert len(allocas) == 2
    stores = instrs(module, "f", ins.Store)
    assert len(stores) == 2  # one spill per parameter


def test_global_access_lowered_as_load_store():
    module = compile_source("int g;\nint main() { g = g + 1; return g; }")
    loads = instrs(module, kind=ins.Load)
    stores = instrs(module, kind=ins.Store)
    assert any(load.pointer is module.globals["g"] for load in loads)
    assert any(store.pointer is module.globals["g"] for store in stores)


def test_volatile_flag_propagates():
    module = compile_source("volatile int v;\nint main() { v = v + 1; return 0; }")
    accesses = [
        i for i in instrs(module)
        if isinstance(i, (ins.Load, ins.Store))
        and getattr(i.pointer, "name", "") == "v"
    ]
    assert accesses and all(access.volatile for access in accesses)


def test_atomic_qualified_global_is_seq_cst():
    module = compile_source("_Atomic int a;\nint main() { return a; }")
    load = instrs(module, kind=ins.Load)[0]
    assert load.order is MemoryOrder.SEQ_CST


def test_atomic_qualified_incdec_becomes_rmw():
    module = compile_source("_Atomic int a;\nint main() { a++; return 0; }")
    rmws = instrs(module, kind=ins.AtomicRMW)
    assert len(rmws) == 1
    assert rmws[0].op == "add"


def test_struct_member_becomes_gep_with_field():
    module = compile_source("""
struct s { int a; int b; };
struct s v;
int main() { v.b = 1; return 0; }
""")
    gep = instrs(module, kind=ins.Gep)[0]
    assert gep.path[0][0] == "field"
    assert gep.signature() == (("field", "s", 1),)


def test_arrow_access_same_signature_as_indexed():
    module = compile_source("""
struct s { int a; int b; };
struct s arr[4];
int f(struct s *p) { return p->b; }
int main() { return arr[2].b; }
""")
    from repro.analysis.nonlocal_ import gep_signature

    f_load = instrs(module, "f", ins.Load)[-1]
    main_load = instrs(module, "main", ins.Load)[-1]
    assert gep_signature(f_load.pointer) == gep_signature(main_load.pointer)
    assert gep_signature(f_load.pointer) == ("field", "s", 1)


def test_array_index_becomes_gep():
    module = compile_source("int a[8];\nint main() { return a[3]; }")
    geps = instrs(module, kind=ins.Gep)
    assert geps and geps[0].path[0][0] == "index"


def test_pointer_arithmetic_becomes_gep():
    module = compile_source("""
int buf[8];
int main() { int *p = buf; p = p + 2; return *p; }
""")
    geps = instrs(module, kind=ins.Gep)
    assert len(geps) >= 2


def test_pointer_difference_divides_by_size():
    module = compile_source("""
struct wide { int a; int b; int c; };
struct wide arr[4];
int main() {
    struct wide *p = &arr[3];
    struct wide *q = &arr[0];
    return p - q;
}
""")
    divs = [i for i in instrs(module, kind=ins.BinOp) if i.op == "/"]
    assert divs  # scaled by struct size (3)


def test_short_circuit_and_creates_control_flow():
    module = compile_source("""
int a; int b;
int main() { if (a && b) { return 1; } return 0; }
""")
    blocks = module.functions["main"].blocks
    assert any("land" in block.label for block in blocks)


def test_short_circuit_value_context():
    module = compile_source("int a; int b;\nint main() { int r = a || b; return r; }")
    blocks = module.functions["main"].blocks
    assert any("log" in block.label for block in blocks)


def test_ternary_lowering():
    module = compile_source("int main() { int x = 1 ? 5 : 6; return x; }")
    blocks = module.functions["main"].blocks
    assert any("cond" in block.label for block in blocks)


def test_while_true_has_no_condbr_on_constant():
    module = compile_source("int g;\nint main() { while (1) { if (g) break; } return 0; }")
    for instr in instrs(module):
        if isinstance(instr, ins.CondBr):
            assert not isinstance(instr.cond, type(None))


def test_inline_asm_mfence_becomes_fence():
    module = compile_source('int main() { __asm__("mfence"); return 0; }')
    fences = instrs(module, kind=ins.Fence)
    assert len(fences) == 1
    assert fences[0].order is MemoryOrder.SEQ_CST


def test_inline_asm_pause_is_dropped():
    module = compile_source('int main() { __asm__("pause"); return 0; }')
    assert not instrs(module, kind=ins.Fence)


def test_unknown_asm_gets_conservative_fence_and_warning():
    module = compile_source('int main() { __asm__("vmovdqa %xmm0"); return 0; }')
    assert instrs(module, kind=ins.Fence)
    assert module.metadata.get("lowering_warnings")


def test_atomic_builtins_lower_to_ir_atomics():
    module = compile_source("""
int x;
int main() {
    atomic_store(&x, 1);
    int a = atomic_load(&x);
    int b = atomic_fetch_add(&x, 2);
    int c = atomic_cmpxchg(&x, 3, 4);
    int d = atomic_exchange(&x, 9);
    return a + b + c + d;
}
""")
    assert len(instrs(module, kind=ins.Cmpxchg)) == 1
    rmws = instrs(module, kind=ins.AtomicRMW)
    assert {r.op for r in rmws} == {"add", "xchg"}
    atomic_loads = [
        i for i in instrs(module, kind=ins.Load) if i.order.is_atomic
    ]
    assert atomic_loads


def test_explicit_memory_orders_respected():
    module = compile_source("""
int x;
int main() {
    atomic_store_explicit(&x, 1, memory_order_release);
    return atomic_load_explicit(&x, memory_order_acquire);
}
""")
    store = [s for s in instrs(module, kind=ins.Store) if s.order.is_atomic][0]
    assert store.order is MemoryOrder.RELEASE
    load = [l for l in instrs(module, kind=ins.Load) if l.order.is_atomic][0]
    assert load.order is MemoryOrder.ACQUIRE


def test_thread_builtins():
    module = compile_source("""
void w(int x) { }
int main() { int t = thread_create(w, 5); thread_join(t); return 0; }
""")
    assert len(instrs(module, kind=ins.ThreadCreate)) == 1
    assert len(instrs(module, kind=ins.ThreadJoin)) == 1


def test_malloc_free_lowering():
    module = compile_source("""
struct n { int v; };
int main() {
    struct n *p = (struct n *)malloc(sizeof(struct n));
    p->v = 3;
    free(p);
    return 0;
}
""")
    assert len(instrs(module, kind=ins.Malloc)) == 1
    assert len(instrs(module, kind=ins.Free)) == 1


def test_global_aggregate_initializer_flattened():
    module = compile_source("""
struct p { int x; int y; };
struct p pts[2] = {{1, 2}, {3, 4}};
int main() { return 0; }
""")
    assert module.globals["pts"].initializer == [1, 2, 3, 4]


def test_negative_global_initializer():
    module = compile_source("int x = -5;\nint main() { return 0; }")
    assert module.globals["x"].initializer == [-5]


def test_local_array_initializer():
    module = compile_source("int main() { int a[3] = {7, 8, 9}; return a[1]; }")
    stores = instrs(module, kind=ins.Store)
    stored = {s.value.value for s in stores if hasattr(s.value, "value")}
    assert {7, 8, 9} <= stored


def test_goto_label_lowering():
    module = compile_source("""
int main() {
    int x = 0;
    goto out;
    x = 99;
out:
    return x;
}
""")
    verify_module(module)
    blocks = module.functions["main"].blocks
    assert any("label.out" in block.label for block in blocks)


def test_unreachable_code_removed():
    module = compile_source("int main() { return 1; int x = 2; return x; }")
    verify_module(module)
    # All remaining blocks are reachable and terminated.
    for block in module.functions["main"].blocks:
        assert block.terminator is not None


def test_break_continue_lowering():
    module = compile_source("""
int main() {
    int sum = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 2) { continue; }
        if (i == 5) { break; }
        sum = sum + i;
    }
    return sum;
}
""")
    verify_module(module)


def test_every_compiled_module_verifies():
    module = compile_source("""
struct node { int key; struct node *next; };
struct node pool[4];
int head;
int f(struct node *n) { return n->key; }
int main() {
    for (int i = 0; i < 4; i++) { pool[i].key = i; }
    return f(&pool[2]);
}
""")
    assert verify_module(module)
