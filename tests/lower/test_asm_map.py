"""Tests for the x86 inline-assembly classification table."""

import pytest

from repro.lower.asm_map import (
    COMPILER_BARRIER,
    FENCE_SC,
    PAUSE,
    RMW_PREFIX,
    UNKNOWN,
    classify_asm,
)


@pytest.mark.parametrize("template", [
    "mfence", "MFENCE", "  mfence  ", "lfence", "sfence",
    "lock; addl $0, (%rsp)", "lock addl $0,0(%%rsp)",
])
def test_full_fences(template):
    assert classify_asm(template) == FENCE_SC


@pytest.mark.parametrize("template", ["", "   "])
def test_compiler_barrier(template):
    assert classify_asm(template) == COMPILER_BARRIER


@pytest.mark.parametrize("template", ["pause", "rep; nop", "rep nop", "nop"])
def test_pause_hints(template):
    assert classify_asm(template) == PAUSE


@pytest.mark.parametrize("template", [
    "lock xaddl %0, %1",
    "lock; cmpxchg %2, %1",
    "xchg %0, %1",
])
def test_locked_rmw(template):
    assert classify_asm(template) == RMW_PREFIX


@pytest.mark.parametrize("template", ["dmb ish", "dsb sy", "isb"])
def test_arm_barriers_in_expert_code(template):
    assert classify_asm(template) == FENCE_SC


@pytest.mark.parametrize("template", [
    "vmovdqa %ymm0, (%rdi)",
    "cpuid",
    "rdtsc",
])
def test_unknown_asm(template):
    assert classify_asm(template) == UNKNOWN
