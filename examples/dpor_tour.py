"""A tour of the source-DPOR exploration backend (``por="dpor"``).

The sleep-set backend (PR 2) prunes *locally*: after exploring thread
``t`` from a state, siblings that commute with ``t`` go to sleep.  The
source-DPOR backend explores the other way around: it runs ONE
interleaving to completion, watches the happens-before order the run
actually produced (tracked with vector clocks over per-address
processes), and only when two steps *raced* — ran unordered on the same
address with at least one write — does it schedule the reversal at the
exact point the race began.  The result is at most one interleaving
per happens-before equivalence class.

Where that wins and where it loses is the point of this tour:

- Conflict-light programs (locks, mostly-disjoint addresses) have few
  reversible races, so DPOR visits a fraction of what sleep sets do.
- Convergent spin loops are the structural counterexample: thousands
  of distinct interleavings collapse into a handful of *unique states*,
  which the stateful sleep+dedup engine collapses and stateless DPOR,
  by construction, cannot.

Both backends always return the same verdict — that identity is pinned
by tests/mc/test_dpor.py and the hypothesis suite in
tests/property/test_dpor_identity.py, and re-checked per PR by the
perf-smoke CI gate.

Run:  python examples/dpor_tour.py
"""

from repro import PortingLevel, check_module, compile_source, port_module
from repro.bench.corpus import get_benchmark
from repro.core.report import format_exploration_stats
from repro.mc.litmus import LITMUS_TESTS


def run_backends(module, model, **bounds):
    """Check ``module`` under every backend, returning {por: result}."""
    return {
        por: check_module(module, model=model, por=por,
                          macro="off" if por == "none" else "on", **bounds)
        for por in ("none", "sleep", "dpor")
    }


def show(results):
    for por, result in results.items():
        stats = result.stats
        extra = ""
        if por == "dpor":
            extra = (f", {stats.races_detected} races, "
                     f"{stats.backtrack_points} backtracks, "
                     f"{stats.equivalence_classes} classes")
        print(f"   por={por:5}  verdict={result.outcome:9} "
              f"visited={stats.states_visited:6}{extra}")


def main():
    bounds = dict(max_steps=3000, max_states=1_500_000)

    # --- 1. A litmus test: same verdict, different cost. -------------
    source, expected = LITMUS_TESTS["SB"]
    module = compile_source(source, "litmus_SB")
    print("== store buffering (SB) under WMM ==")
    print(f"expected: {'ok' if expected['wmm'] else 'violation'}")
    results = run_backends(module, "wmm", **bounds)
    show(results)
    print()

    print("== what --stats prints for the DPOR run ==")
    print(format_exploration_stats(results["dpor"].stats))
    print()

    # --- 2. The headline win: an MCS queue lock. ---------------------
    # Each contender spins on its OWN queue node, so almost nothing
    # races: DPOR finds a handful of reversible races where sleep sets
    # still enumerate scheduling noise.
    bench = get_benchmark("ck_spinlock_mcs")
    builder = bench.gate_source or bench.mc_source
    ported, _ = port_module(
        compile_source(builder(), "ck_spinlock_mcs"), PortingLevel.ATOMIG
    )
    print("== ck_spinlock_mcs (disjoint-address gate client, WMM) ==")
    results = run_backends(ported, "wmm", **bounds)
    show(results)
    sleep_v = results["sleep"].stats.states_visited
    dpor_v = results["dpor"].stats.states_visited
    print(f"   -> DPOR visits {sleep_v / max(dpor_v, 1):.1f}x fewer "
          f"states than sleep sets")
    print()

    # --- 3. The honest loss: a convergent spin loop. -----------------
    # ck_sequence readers spin until the sequence number is stable;
    # every retry re-converges to the same state.  Sleep+dedup collapses
    # the re-visits; stateless DPOR re-executes one run per equivalence
    # class, and here classes outnumber unique states.
    bench = get_benchmark("ck_sequence")
    builder = bench.gate_source or bench.mc_source
    ported, _ = port_module(
        compile_source(builder(), "ck_sequence"), PortingLevel.ATOMIG
    )
    print("== ck_sequence (convergent spin loop, WMM) ==")
    results = run_backends(ported, "wmm", **bounds)
    show(results)
    print("   -> the structural limit of stateless DPOR: equivalence")
    print("      classes outnumber unique states, so the stateful")
    print("      sleep+dedup engine wins here.  Same verdict either way;")
    print("      pick the backend per workload with --por.")


if __name__ == "__main__":
    main()
