"""A gallery of litmus tests across the three memory models.

Prints the verdict matrix for the classic litmus shapes (store
buffering, message passing, coherence, RMW atomicity, the Figure 7
CAS-overtake) under SC, x86-TSO and the Armv8-like WMM — the behaviours
that motivate the whole porting problem (paper §2.1).

Run:  python examples/litmus_gallery.py
"""

from repro.mc.litmus import LITMUS_TESTS, expected_verdict, run_litmus

DESCRIPTIONS = {
    "SB": "store buffering: both threads read 0 (TSO's one relaxation)",
    "MP": "message passing: stale payload behind a raised flag",
    "MP+atomics": "message passing repaired with SC atomics",
    "MP+fences": "message passing repaired with explicit SC fences",
    "SB+atomics": "store buffering repaired with SC atomics",
    "CoRR": "coherence: same-location reads never go backwards",
    "RMW-atomicity": "concurrent fetch_add never loses an update",
    "CAS-overtake": "a plain store overtakes a relaxed CAS's store half",
}


def main():
    print(f"{'test':15s} {'sc':>6} {'tso':>6} {'wmm':>6}   description")
    print("-" * 88)
    for name in LITMUS_TESTS:
        verdicts = []
        for model in ("sc", "tso", "wmm"):
            result = run_litmus(name, model)
            assert result.ok == expected_verdict(name, model), (
                f"{name}/{model} diverged from the calibrated verdict"
            )
            verdicts.append("ok" if result.ok else "weak")
        print(f"{name:15s} {verdicts[0]:>6} {verdicts[1]:>6} "
              f"{verdicts[2]:>6}   {DESCRIPTIONS[name]}")
    print()
    print("'weak' = the forbidden outcome is reachable under that model.")
    print("Reading the columns top to bottom is the paper's §2.1: TSO")
    print("relaxes exactly store-load order; the WMM also breaks message")
    print("passing and RMW publication, which is what AtoMig repairs.")


if __name__ == "__main__":
    main()
