"""Quickstart: port a TSO program to a weak memory model.

Compiles the classic message-passing pattern (paper Figure 1), shows
that it breaks under a weak memory model, ports it with AtoMig, and
verifies the ported program.

Run:  python examples/quickstart.py
"""

from repro import PortingLevel, check_module, compile_source, port_module

SOURCE = """
int flag = 0;
int msg = 0;

void writer() {
    msg = 42;           // initialize the message ...
    flag = 1;           // ... then publish it (ordered on x86-TSO!)
}

int main() {
    int t = thread_create(writer);
    while (flag != 1) { }   // spin until published
    int data = msg;
    assert(data == 42);     // can fail on Arm without barriers
    thread_join(t);
    return 0;
}
"""


def main():
    module = compile_source(SOURCE, name="message_passing")

    print("== model checking the original program ==")
    for model in ("sc", "tso", "wmm"):
        result = check_module(module, model=model)
        verdict = "correct" if result.ok else f"BUG: {result.violation}"
        print(f"  {model:>3}: {verdict}  ({result.states_explored} states)")

    print()
    print("== porting with AtoMig ==")
    ported, report = port_module(module, PortingLevel.ATOMIG)
    print(f"  {report.summary()}")
    print(f"  spinloops detected: {report.spinloops}")

    print()
    print("== model checking the ported program ==")
    result = check_module(ported, model="wmm")
    verdict = "correct" if result.ok else f"BUG: {result.violation}"
    print(f"  wmm: {verdict}  ({result.states_explored} states)")

    assert result.ok, "AtoMig must fix the message-passing bug"
    print()
    print("The spinloop's flag accesses became SC atomics on both the")
    print("reader and writer side; msg stayed a plain access.")


if __name__ == "__main__":
    main()
