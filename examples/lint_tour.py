"""Tour of the static race linter behind ``atomig lint``.

Walks two programs through the lockset-based race classifier:

1. the Figure 1 message-passing pattern, whose flag/msg accesses are
   genuinely *racy* — AtoMig must order them;
2. a test-and-set lock whose critical-section data is declared
   ``volatile`` (legacy TSO habit) — the linter proves every access
   *protected* by the lock, and ``prune_protected`` removes the
   barriers the annotation pass would otherwise waste on them.

Run:  python examples/lint_tour.py
"""

from repro import (
    AtoMigConfig,
    PortingLevel,
    check_module,
    compile_source,
    lint_module,
    port_module,
)

RACY = """
int flag = 0;
int msg = 0;

void writer() {
    msg = 42;           // plain stores: nothing orders them ...
    flag = 1;           // ... so the publish can be reordered
}

int main() {
    int t = thread_create(writer);
    while (flag != 1) { }
    int data = msg;
    assert(data == 42);
    thread_join(t);
    return 0;
}
"""

LOCKED = """
int lock_word = 0;
volatile int counter = 0;   // legacy habit: volatile "for safety"

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}

void worker() {
    lock();
    counter = counter + 1;  // always under lock_word
    unlock();
}

void thread_fn() { worker(); }

int main() {
    int t = thread_create(thread_fn);
    worker();
    thread_join(t);
    assert(counter == 2);
    return counter;
}
"""


def main():
    print("== linting the message-passing program (racy) ==")
    racy_module = compile_source(RACY, name="message_passing")
    report = lint_module(racy_module)
    print(report.render())
    counts = report.counts()
    assert counts.get("racy"), "flag/msg must be classified racy"
    assert not counts.get("protected")

    print()
    print("== linting the lock-protected program ==")
    locked_module = compile_source(LOCKED, name="tas_lock")
    report = lint_module(locked_module)
    print(report.render())
    counts = report.counts()
    assert counts.get("lock"), "lock_word accesses are the lock itself"
    assert counts.get("protected"), "counter accesses are protected"
    assert not counts.get("racy")

    print()
    print("== porting with and without prune_protected ==")
    plain, plain_report = port_module(locked_module, PortingLevel.ATOMIG)
    pruned, pruned_report = port_module(
        locked_module, PortingLevel.ATOMIG,
        config=AtoMigConfig(prune_protected=True),
    )
    print(f"  atomig:           {plain_report.summary()}")
    print(f"  atomig + pruning: {pruned_report.summary()}")
    print(f"  accesses exempted from atomization: "
          f"{pruned_report.pruned_protected}")
    assert pruned_report.ported_implicit_barriers < (
        plain_report.ported_implicit_barriers
    )

    print()
    print("== the pruned port is still correct under WMM ==")
    result = check_module(pruned, model="wmm")
    verdict = "correct" if result.ok else f"BUG: {result.violation}"
    print(f"  wmm: {verdict}  ({result.states_explored} states)")
    assert result.ok

    print()
    print("The volatile counter would have become an SC atomic (two")
    print("barriers per access on Arm); the lockset analysis proved the")
    print("TAS lock already protects it, so AtoMig leaves it plain and")
    print("keeps the barriers only on the lock word itself.")


if __name__ == "__main__":
    main()
