"""Porting an application-scale code base and measuring the cost.

Mirrors the paper's §4.2-4.3 workflow on the SQLite-like workload model:
compile, port with each strategy, compare detected patterns, inserted
barriers, and the modeled runtime cost of each ported binary.

Run:  python examples/port_database.py
"""

from repro import PortingLevel, compile_source, port_module, run_module
from repro.bench.corpus import get_benchmark
from repro.core.report import count_barriers


def main():
    benchmark = get_benchmark("sqlite")
    module = compile_source(benchmark.perf_source(), name="sqlite_like")

    print("== porting with every strategy ==")
    ported = {}
    for level in (PortingLevel.ORIGINAL, PortingLevel.ATOMIG,
                  PortingLevel.NAIVE, PortingLevel.LASAGNE):
        variant, report = port_module(module, level)
        explicit, implicit = count_barriers(variant)
        ported[level] = variant
        print(f"  {level.value:8}: {explicit:4} explicit, "
              f"{implicit:4} implicit barriers "
              f"({report.num_spinloops} spinloops, "
              f"{report.porting_seconds * 1000:.0f} ms to port)")

    print()
    print("== running each variant on the performance VM ==")
    base = run_module(ported[PortingLevel.ORIGINAL])
    print(f"  workload result: {base.exit_value} pages inserted")
    for level in (PortingLevel.ORIGINAL, PortingLevel.ATOMIG,
                  PortingLevel.NAIVE, PortingLevel.LASAGNE):
        result = run_module(ported[level])
        slowdown = result.cycles / base.cycles
        print(f"  {level.value:8}: {result.cycles:9} cycles "
              f"({slowdown:.2f}x)   [{result.stats.summary()}]")

    print()
    print("AtoMig protects the latch (the only synchronization variable)")
    print("and leaves the B-tree page traffic plain; the Naive port pays")
    print("an implicit barrier on every page access.")


if __name__ == "__main__":
    main()
