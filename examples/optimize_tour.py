"""A tour of oracle-guided barrier weakening (Table 9).

AtoMig's answer to "which accesses need ordering?" is *all of them*:
every marked access becomes an SC atomic.  That blanket is what keeps
the migration safe at millions-of-lines scale — and what makes the
ported code trail hand-tuned baselines on hot paths (Table 5).

``repro.opt`` closes that gap after the fact.  Starting from the
blanket-SC port it walks each barrier down a weakening ladder
(seq_cst -> release/acquire -> relaxed; porter fences -> deleted),
re-running the WMM model checker as an oracle after each batch of
steps, and reverting anything that changes the verdict.  The result is
certified: same checker verdict as the blanket port, strictly cheaper
barriers.

This tour runs the spinlock benchmark (ck_spinlock_cas) through the
ladder one certified batch at a time, printing the oracle's verdict on
every probe so the greedy/bisect loop is visible, then shows the final
Table 9 style summary.

Run:  python examples/optimize_tour.py
"""

from repro import PortingLevel, check_module, compile_source, port_module
from repro.bench.corpus import get_benchmark
from repro.ir.printer import print_function
from repro.opt import Oracle, enumerate_candidates, optimize_module
from repro.opt.candidates import apply_proposal
from repro.vm.costs import CostModel, estimate_cost


def walk_one_site(module, candidate, oracle, costs):
    """Weaken one site rung by rung, reporting each oracle verdict."""
    while True:
        proposal = candidate.proposal()
        if proposal is None:
            break
        label = "delete" if proposal == "delete" else proposal.name.lower()
        undo = apply_proposal(candidate)
        if oracle.matches(module):
            candidate.accept()
            print(f"      try {label:18} -> verdict unchanged, commit")
        else:
            undo()
            candidate.reject()
            print(f"      try {label:18} -> verdict CHANGED, revert")
    if candidate.frozen:
        kept = candidate.committed or candidate.original_order
        print(f"      frozen at {kept.name.lower()}")


def main():
    benchmark = get_benchmark("ck_spinlock_cas")
    module = compile_source(benchmark.mc_source(), name="spinlock")
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    costs = CostModel()

    print("== the blanket-SC port (every marked access is seq_cst) ==")
    print(print_function(ported.functions["lock"]))
    sc_cost = estimate_cost(ported, costs)
    print(f"estimated barrier cost: {sc_cost.barriers} cycles "
          f"over {sc_cost.barrier_sites} sites")
    print()

    # --- Step by step: one site at a time, one oracle check per rung.
    # This is the naive O(sites * rungs) loop; the real optimizer
    # batches and bisects, but the per-rung verdicts are easier to see
    # this way.
    work = ported.clone()
    oracle = Oracle()
    baseline = oracle.establish(work)
    print(f"== baseline verdict: {baseline.outcome} "
          f"({baseline.states_explored} states) ==")
    candidates = enumerate_candidates(work, costs)
    print(f"{len(candidates)} candidate sites, "
          f"most expensive first:")
    for candidate in candidates:
        function, block, index = candidate.position
        print(f"   {function}.{block}[{index}] "
              f"({candidate.kind}, saves up to "
              f"{candidate.savings(costs)} cycles):")
        walk_one_site(work, candidate, oracle, costs)
    naive_checks = oracle.checks_run
    print(f"naive ladder walk: {naive_checks} oracle checks")
    print()

    # --- The real thing: batched + bisected, same certificate.
    optimized, report = optimize_module(ported)
    print("== atomig optimize (batched bisection) ==")
    print(report.render())
    print()
    print(f"batched bisection used {report.checks_run} checks where the "
          f"one-site-at-a-time walk above used {naive_checks}.")
    print()

    print("== the lock function after weakening ==")
    print(print_function(optimized.functions["lock"]))

    # The oracle's word, independently re-checked.
    result = check_module(optimized, model="wmm", max_steps=2500)
    print(f"independent re-check under WMM: "
          f"{'correct' if result.ok else 'BUG'}")


if __name__ == "__main__":
    main()
