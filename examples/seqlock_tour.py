"""A tour of the seqlock transformation (paper Figure 6).

Sequence locks are the pattern that defeats both explicit annotations
and plain spinloop detection: even with an SC-atomic sequence counter,
the optimistic payload reads can escape the validation loop.  This
example walks the porting levels, printing the reader's IR after each,
and model-checks every step — reproducing the ck_sequence row of
Table 2.

Run:  python examples/seqlock_tour.py
"""

from repro import PortingLevel, check_module, compile_source, port_module
from repro.bench.corpus import get_benchmark
from repro.ir.printer import print_function


def main():
    benchmark = get_benchmark("ck_sequence")
    module = compile_source(benchmark.mc_source(), name="seqlock")

    print("== Figure 6: sequence count; reader validates a snapshot ==")
    print(print_function(module.functions["read_record"]))
    print()

    for level in (PortingLevel.ORIGINAL, PortingLevel.EXPL,
                  PortingLevel.SPIN, PortingLevel.ATOMIG):
        ported, report = port_module(module, level)
        result = check_module(ported, model="wmm")
        verdict = "correct" if result.ok else "BUG under WMM"
        print(f"-- {level.value:8}: {verdict:14} "
              f"(fences inserted: {report.fences_inserted})")

    print()
    print("== the reader after the full AtoMig pipeline ==")
    ported, _ = port_module(module, PortingLevel.ATOMIG)
    print(print_function(ported.functions["read_record"]))
    print()
    print("Note the FENCE before each sequence-counter load inside the")
    print("loop (pinning the optimistic payload reads) and, on the")
    print("writer side, the fence after each counter increment.")


if __name__ == "__main__":
    main()
