"""The MariaDB lf-hash bug (paper Figure 7, MDEV-27088), end to end.

One thread validates a hash node in l_find's retry loop; another
invalidates it in l_delete with a relaxed compare-exchange followed by a
plain key store.  Two Armv8-legal reorderings break the validation:

1. the find-side ``key`` load can be delayed past the validation loop;
2. the delete-side ``key = NULL`` store can become visible before the
   compare-exchange's store half (STLXR release semantics).

This example finds the bug with the model checker, prints the failing
schedule, and shows how AtoMig's optimistic-control transformation
(SC atomics on ``state`` plus explicit fences) repairs it — the same fix
that was merged into MariaDB.

Run:  python examples/mariadb_bug.py
"""

from repro import PortingLevel, check_module, compile_source, port_module
from repro.bench.corpus import get_benchmark
from repro.ir.printer import print_function


def main():
    benchmark = get_benchmark("lf_hash")
    module = compile_source(benchmark.mc_source(), name="lf_hash")

    print("== the original (TSO-era) code is fine on x86 ==")
    tso = check_module(module, model="tso")
    print(f"  tso: {'correct' if tso.ok else 'BUG'} "
          f"({tso.states_explored} states)")
    assert tso.ok

    print()
    print("== but breaks on a weak memory model ==")
    wmm = check_module(module, model="wmm")
    print(f"  wmm: {'correct' if wmm.ok else 'BUG: ' + wmm.violation}")
    print("  failing schedule (last steps):")
    for step in wmm.trace[-8:]:
        print(f"    {step}")
    assert not wmm.ok

    print()
    print("== intermediate porting levels do not catch it (Table 2) ==")
    for level in (PortingLevel.EXPL, PortingLevel.SPIN):
        ported, _ = port_module(module, level)
        result = check_module(ported, model="wmm")
        print(f"  {level.value:5}: {'correct' if result.ok else 'still buggy'}")

    print()
    print("== the full AtoMig pipeline fixes it ==")
    ported, report = port_module(module, PortingLevel.ATOMIG)
    fixed = check_module(ported, model="wmm")
    print(f"  wmm: {'correct' if fixed.ok else 'BUG'} "
          f"({fixed.states_explored} states)")
    print(f"  optimistic loops: {report.optimistic_loops}")
    print(f"  explicit fences inserted: {report.fences_inserted}")
    assert fixed.ok

    print()
    print("== the transformed deleter (compare with paper Figure 7) ==")
    print(print_function(ported.functions["l_delete"]))


if __name__ == "__main__":
    main()
