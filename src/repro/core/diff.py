"""Access-level diff between an original module and its port.

AtoMig is heuristic (§3.5): a human reviewing its output wants to see
*which* accesses were strengthened and *why*.  This module pairs the
instructions of an original module with those of its port (clone order
is stable) and reports every changed access with its provenance marks —
``annotation``, ``spin_control``, ``optimistic_control``, ``sticky`` —
plus all inserted fences.
"""

from dataclasses import dataclass, field

from repro.ir import instructions as ins


@dataclass
class AccessChange:
    """One strengthened memory access."""

    function: str
    block: str
    description: str
    old_order: str
    new_order: str
    reasons: tuple
    source_line: int = None

    def render(self):
        where = f"@{self.function}/{self.block}"
        if self.source_line:
            where += f" (line {self.source_line})"
        reasons = ", ".join(self.reasons) or "direct"
        return (
            f"{where}: {self.description}  "
            f"{self.old_order} -> {self.new_order}  [{reasons}]"
        )


@dataclass
class InsertedFence:
    function: str
    block: str
    reasons: tuple

    def render(self):
        reasons = ", ".join(self.reasons) or "unmarked"
        return f"@{self.function}/{self.block}: fence seq_cst  [{reasons}]"


@dataclass
class PortingDiff:
    """Everything that changed between original and ported module."""

    changes: list = field(default_factory=list)
    fences: list = field(default_factory=list)
    #: Instructions present only in the port (inlining artifacts etc.).
    structural_notes: list = field(default_factory=list)

    def render(self):
        lines = [f"{len(self.changes)} accesses strengthened, "
                 f"{len(self.fences)} fences inserted"]
        lines += [change.render() for change in self.changes]
        lines += [fence.render() for fence in self.fences]
        lines += self.structural_notes
        return "\n".join(lines)


_PROVENANCE_MARKS = (
    "annotation",
    "spin_control",
    "optimistic_control",
    "polling_control",
    "barrier_seed",
    "sticky",
    "naive",
    "optimistic",
    "lasagne",
)


def _reasons(instr):
    return tuple(mark for mark in _PROVENANCE_MARKS if mark in instr.marks)


def diff_modules(original, ported):
    """Compute the porting diff; modules must share function names.

    Pairing is positional per function when the instruction counts
    match (no inlining); otherwise the ported module is scanned alone
    and every marked access is reported (marks carry the provenance, so
    nothing is lost — only the "old order" column defaults to plain).
    """
    result = PortingDiff()
    for name, ported_fn in ported.functions.items():
        original_fn = original.functions.get(name)
        pairs = _pair_instructions(original_fn, ported_fn)
        if pairs is None:
            result.structural_notes.append(
                f"@{name}: restructured by inlining; reporting marks only"
            )
            pairs = [(None, instr) for instr in ported_fn.instructions()]
        for old, new in pairs:
            _collect(result, name, old, new)
    return result


def _pair_instructions(original_fn, ported_fn):
    if original_fn is None:
        return None
    original_instrs = [
        i for i in original_fn.instructions() if not isinstance(i, ins.Fence)
    ]
    ported_instrs = [
        i for i in ported_fn.instructions() if not isinstance(i, ins.Fence)
    ]
    if len(original_instrs) != len(ported_instrs):
        return None
    pairs = list(zip(original_instrs, ported_instrs))
    # Fences that exist only in the port are reported separately.
    pairs += [
        (None, instr)
        for instr in ported_fn.instructions()
        if isinstance(instr, ins.Fence) and _reasons(instr)
    ]
    return pairs


def _collect(result, function_name, old, new):
    if isinstance(new, ins.Fence):
        if old is None and _reasons(new):
            result.fences.append(
                InsertedFence(function_name, new.block.label, _reasons(new))
            )
        return
    if not new.is_memory_access():
        return
    old_order = getattr(old, "order", None) if old is not None else None
    new_order = getattr(new, "order", None)
    if new_order is None:
        return
    changed = old_order is not None and old_order is not new_order
    marked = old is None and _reasons(new)
    if changed or marked:
        result.changes.append(
            AccessChange(
                function=function_name,
                block=new.block.label,
                description=repr(new),
                old_order=(old_order.name.lower()
                           if old_order is not None else "?"),
                new_order=new_order.name.lower(),
                reasons=_reasons(new),
                source_line=new.source_line,
            )
        )
