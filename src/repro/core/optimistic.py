"""Optimistic-loop detection (§3.3, "Optimistic Accesses").

A spinloop is an *optimistic loop* when it reads some non-local location
that is not one of its spin controls and that value is used after the
loop (sequence locks, MariaDB's lf-hash validation loops, ...).  The
loop's spin controls are then promoted to *optimistic controls*, which
the transformation protects with explicit barriers in addition to the
SC-atomic conversion.
"""

from dataclasses import dataclass, field

from repro.analysis.nonlocal_ import pointer_root
from repro.ir import instructions as ins


@dataclass
class OptimisticLoopInfo:
    """One optimistic loop: the spinloop plus promoted controls."""

    spinloop: object  # SpinloopInfo
    #: The optimistic (uncontrolled) reads that leak out of the loop.
    optimistic_reads: set = field(default_factory=set)

    @property
    def loop(self):
        return self.spinloop.loop

    @property
    def function_name(self):
        return self.spinloop.function_name

    @property
    def control_instructions(self):
        return self.spinloop.spin_controls

    @property
    def control_keys(self):
        return self.spinloop.control_keys


@dataclass
class OptimisticResult:
    optimistic_loops: list = field(default_factory=list)
    control_instructions: set = field(default_factory=set)
    control_keys: set = field(default_factory=set)


def detect_optimistic_loops(module, spinloop_result, cache=None, jobs=1):
    """Classify each detected spinloop as optimistic or plain.

    Classification is intra-procedural (one use-map and nonlocal-info
    per function), so with ``jobs > 1`` the per-function groups of
    spinloops are classified in parallel; results merge in spinloop
    order, and the (idempotent) ``optimistic_control`` marking happens
    serially during the merge.
    """
    from repro.analysis.nonlocal_ import NonLocalInfo
    from repro.core.funcjobs import map_items

    # Group the spinloops by function, preserving detection order.
    groups = {}
    for info in spinloop_result.spinloops:
        groups.setdefault(info.function_name, []).append(info)

    def classify_group(item):
        function_name, infos = item
        function = module.functions[function_name]
        uses = _build_use_map(function)
        nonlocal_info = (cache.nonlocal_info(function) if cache is not None
                         else NonLocalInfo(function))
        classified = []
        for info in infos:
            optimistic_reads = set()
            control_keys = info.control_keys
            for instr in info.loop.instructions():
                if not isinstance(instr, ins.Load):
                    continue
                if instr in info.spin_controls:
                    continue
                # Only non-local reads can be "optimistic" accesses to
                # shared data; local slots are invisible to peers.
                if not nonlocal_info.is_nonlocal_pointer(instr.pointer):
                    continue
                key = nonlocal_info.location_key(instr.pointer)
                if key is not None and key in control_keys:
                    continue  # reads of the controls themselves
                if _value_used_outside(instr, info.loop, uses):
                    optimistic_reads.add(instr)
            if optimistic_reads:
                classified.append(OptimisticLoopInfo(info, optimistic_reads))
        return classified

    result = OptimisticResult()
    for classified in map_items(groups.items(), classify_group, jobs=jobs):
        for opt in classified:
            for control in opt.spinloop.spin_controls:
                control.marks.add("optimistic_control")
            result.optimistic_loops.append(opt)
            result.control_instructions |= opt.spinloop.spin_controls
            result.control_keys |= opt.spinloop.control_keys
    return result


def _build_use_map(function):
    uses = {}
    for instr in function.instructions():
        for operand in instr.operands:
            uses.setdefault(id(operand), []).append(instr)
    return uses


def _value_used_outside(load, loop, uses):
    """Forward slice: does the loaded value flow to code after the loop?

    Follows direct value uses, plus flows through local stack slots
    (store inside the loop, load anywhere else in the function).
    """
    worklist = [load]
    visited = set()
    while worklist:
        value = worklist.pop()
        if id(value) in visited:
            continue
        visited.add(id(value))
        for user in uses.get(id(value), ()):
            if user.block not in loop.body:
                return True
            if isinstance(user, ins.Store):
                if user.value is value:
                    target = pointer_root(user.pointer)
                    if isinstance(target, ins.Alloca):
                        # Track the slot's readers.
                        for reader in uses.get(id(target), ()):
                            if isinstance(reader, ins.Load):
                                if reader.block not in loop.body:
                                    return True
                                worklist.append(reader)
                            elif isinstance(reader, ins.Gep):
                                worklist.append(reader)
                    else:
                        # Written to non-local memory: observable later.
                        return True
                continue
            if isinstance(user, (ins.CondBr, ins.Ret, ins.AssertInst)):
                if isinstance(user, ins.Ret):
                    return True
                continue
            worklist.append(user)
    return False
