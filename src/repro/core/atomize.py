"""The transformation stage: SC atomics and explicit barriers.

Turns every marked access into an SC atomic (an *implicit* barrier:
LDAR/STLR-class instructions on Arm) and, for optimistic controls, adds
the *explicit* SC fences of Figure 6 / Figure 7:

- a fence before every optimistic-control load inside an optimistic
  loop (forces the loop's uncontrolled reads to complete before exit);
- a fence after every store to an optimistic-control location anywhere
  in the module (keeps writer-side publication ordered).
"""

from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


def atomize_accesses(instructions, force_explicit=False):
    """Upgrade ``instructions`` to SC atomics; returns conversion count.

    With ``force_explicit`` (ablation knob) accesses stay plain and are
    bracketed by explicit fences instead, emulating an explicit-barrier
    porting style.
    """
    converted = 0
    for instr in instructions:
        if force_explicit:
            if _wrap_with_fences(instr):
                converted += 1
            continue
        if getattr(instr, "order", None) is None:
            continue
        if instr.order is not MemoryOrder.SEQ_CST:
            instr.order = MemoryOrder.SEQ_CST
            converted += 1
    return converted


def _wrap_with_fences(instr):
    block = instr.block
    index = block.instructions.index(instr)
    before = ins.Fence(MemoryOrder.SEQ_CST)
    after = ins.Fence(MemoryOrder.SEQ_CST)
    before.marks.add("explicit_ablation")
    after.marks.add("explicit_ablation")
    block.insert(index, before)
    block.insert(index + 2, after)
    return True


def insert_optimistic_fences(module, optimistic_result, sticky_marked,
                             cache=None, touched=None):
    """Insert the explicit barriers required by optimistic controls.

    ``sticky_marked`` is the set of accesses added by alias exploration;
    stores among them that hit optimistic-control locations also get the
    writer-side fence (the paper: "sticky buddies of optimistic controls
    additionally get explicit barriers depending on where they are").

    When ``touched`` is a set, the names of functions that received a
    fence are added to it (for incremental re-verification).
    """
    fences = 0
    opt_keys = set(optimistic_result.control_keys)
    info_cache = {}

    def info_for(function):
        if cache is not None:
            return cache.nonlocal_info(function)
        if function not in info_cache:
            info_cache[function] = NonLocalInfo(function)
        return info_cache[function]

    control_loads_in_loops = set()
    for opt in optimistic_result.optimistic_loops:
        function = module.functions[opt.function_name]
        info = info_for(function)
        for instr in opt.loop.instructions():
            if not isinstance(instr, (ins.Load, ins.Cmpxchg, ins.AtomicRMW)):
                continue
            key = info.location_key(instr.accessed_pointer())
            if instr in opt.control_instructions or (
                key is not None and key in opt_keys
            ):
                control_loads_in_loops.add(instr)

    # Reader side: fence before each optimistic-control load inside an
    # optimistic loop.
    for instr in control_loads_in_loops:
        if isinstance(instr, ins.Load):
            _insert_before(instr)
            fences += 1
            if touched is not None:
                touched.add(instr.block.function.name)

    # Writer side: fence after every store/RMW to an optimistic-control
    # location, module-wide.
    for function in module.functions.values():
        info = info_for(function)
        for block in function.blocks:
            for instr in list(block.instructions):
                if not isinstance(instr, (ins.Store, ins.Cmpxchg, ins.AtomicRMW)):
                    continue
                key = info.location_key(instr.accessed_pointer())
                if key is None or key not in opt_keys:
                    continue
                _insert_after(instr)
                fences += 1
                if touched is not None:
                    touched.add(function.name)
    return fences


def _insert_before(instr):
    block = instr.block
    index = block.instructions.index(instr)
    fence = ins.Fence(MemoryOrder.SEQ_CST)
    fence.marks.add("optimistic")
    block.insert(index, fence)


def _insert_after(instr):
    block = instr.block
    index = block.instructions.index(instr)
    fence = ins.Fence(MemoryOrder.SEQ_CST)
    fence.marks.add("optimistic")
    block.insert(index + 1, fence)
