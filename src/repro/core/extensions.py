"""Extension detectors from the paper's discussion section (§6).

Two additional synchronization entry points AtoMig's authors propose as
future work, implemented here behind configuration flags (both default
off, preserving the paper's evaluated configuration):

1. **Polling loops** (``detect_polling_loops``): "shared memory accesses
   mixed with timing-based polling or asynchronous methods ...  Locating
   code segments around specific system calls or external library
   functions that offer wait semantics can help in their detection."  A
   loop containing a wait-semantics operation (``usleep`` /
   ``sched_yield``) whose exit conditions read non-local memory is
   treated like a spinloop even when it also has a local timeout
   counter — exactly the shape the strict spinloop definition rejects.

2. **Compiler-barrier seeds** (``compiler_barrier_seeds``): "use the
   placement of compiler barriers (which are turned into NOPs in the
   generated assembly code) as additional entry points."  The non-local
   accesses adjacent to an ``__asm__("" ::: "memory")`` are marked as
   synchronization accesses.
"""

from dataclasses import dataclass, field

from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.loops import find_loops
from repro.ir import instructions as ins


@dataclass
class ExtensionResult:
    """Accesses found by the §6 extension detectors."""

    polling_loops: list = field(default_factory=list)
    control_instructions: set = field(default_factory=set)
    control_keys: set = field(default_factory=set)


def detect_polling_loops(module, result=None, cache=None):
    """Mark the non-local exit dependencies of timing-polling loops.

    Unlike plain spinloop detection, condition (1) is weakened — only
    *some* exit condition needs a non-local dependency — and condition
    (2) is dropped: the whole point of a polling loop is that a local
    timeout counter also influences the exit.  The sleep call is the
    evidence of intent that makes this precise enough (the paper's
    false-positive concern does not apply: plain search loops do not
    sleep).
    """
    result = result or ExtensionResult()
    for function in module.functions.values():
        influence = InfluenceAnalysis(
            function,
            nonlocal_info=(cache.nonlocal_info(function)
                           if cache is not None else None),
        )
        for loop in find_loops(function):
            if not _contains_sleep(loop):
                continue
            conditions = loop.exit_conditions()
            if not conditions:
                continue
            nonlocal_reads = set()
            for condition in conditions:
                closure = influence.closure(condition, loop.body)
                nonlocal_reads |= closure.nonlocal_accesses
            if not nonlocal_reads:
                continue
            result.polling_loops.append((function.name, loop.header.label))
            for access in nonlocal_reads:
                access.marks.add("polling_control")
                result.control_instructions.add(access)
                key = influence.nonlocal_info.location_key(
                    access.accessed_pointer()
                )
                if key is not None:
                    result.control_keys.add(key)
    return result


def _contains_sleep(loop):
    for instr in loop.instructions():
        if isinstance(instr, ins.Sleep):
            return True
    return False


def detect_compiler_barrier_seeds(module, result=None, window=3, cache=None):
    """Mark non-local accesses adjacent to compiler barriers.

    ``window`` bounds how many instructions on each side of the barrier
    are inspected — the barrier expresses an ordering intent between its
    immediate neighbours.
    """
    from repro.analysis.nonlocal_ import NonLocalInfo

    result = result or ExtensionResult()
    for function in module.functions.values():
        info = (cache.nonlocal_info(function) if cache is not None
                else NonLocalInfo(function))
        for block in function.blocks:
            barrier_positions = [
                index
                for index, instr in enumerate(block.instructions)
                if isinstance(instr, ins.CompilerBarrier)
            ]
            for position in barrier_positions:
                low = max(0, position - window)
                high = min(len(block.instructions), position + window + 1)
                for instr in block.instructions[low:high]:
                    if not instr.is_memory_access():
                        continue
                    pointer = instr.accessed_pointer()
                    if not info.is_nonlocal_pointer(pointer):
                        continue
                    instr.marks.add("barrier_seed")
                    result.control_instructions.add(instr)
                    key = info.location_key(pointer)
                    if key is not None:
                        result.control_keys.add(key)
    return result
