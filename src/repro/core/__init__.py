"""AtoMig's core: configuration, detection passes and transformations."""

from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.report import PortingReport

__all__ = ["AtoMigConfig", "PortingLevel", "PortingReport"]
