"""Spinloop detection (§3.3).

A loop is a spinloop iff:

1. every exit condition has a non-local dependency, and
2. every in-loop store *without* non-local dependencies does not
   influence any exit condition — with the paper's refinement that a
   store of a constant value never disqualifies a loop (Figure 3,
   Spinloop 2: the store can't change the condition across iterations).

For each spinloop, all non-local accesses that influence its exit
conditions are marked as *spin controls*.
"""

from dataclasses import dataclass, field

from repro.analysis.influence import InfluenceAnalysis
from repro.analysis.loops import find_loops
from repro.core.funcjobs import map_functions
from repro.ir import instructions as ins


@dataclass
class SpinloopInfo:
    """One detected spinloop and its spin controls."""

    function_name: str
    loop: object
    #: Non-local access instructions controlling the exits.
    spin_controls: set = field(default_factory=set)
    #: Location keys of the spin controls (buddy-propagation seeds).
    control_keys: set = field(default_factory=set)

    @property
    def header_label(self):
        return self.loop.header.label


@dataclass
class SpinloopResult:
    """All spinloops detected in a module."""

    spinloops: list = field(default_factory=list)
    #: Union of all spin-control instructions.
    control_instructions: set = field(default_factory=set)
    #: Union of all spin-control location keys.
    control_keys: set = field(default_factory=set)


def detect_spinloops(module, strict=False, cache=None, jobs=1):
    """Detect spinloops in every function of ``module``.

    ``strict`` switches to the more restrictive literature definition
    (no stores inside the loop body at all) — the ablation the paper
    argues against in §3.5.

    Detection is intra-procedural, so with ``jobs > 1`` functions are
    classified in parallel; per-function results merge in module order.
    """

    def worker(function):
        influence = InfluenceAnalysis(
            function,
            nonlocal_info=(cache.nonlocal_info(function)
                           if cache is not None else None),
        )
        infos = []
        for loop in find_loops(function):
            info = _classify_loop(function, loop, influence, strict)
            if info is not None:
                infos.append(info)
        return infos

    result = SpinloopResult()
    intern = cache.intern if cache is not None else (lambda key: key)
    for infos in map_functions(module, worker, jobs=jobs):
        for info in infos:
            info.control_keys = {intern(key) for key in info.control_keys}
            result.spinloops.append(info)
            result.control_instructions |= info.spin_controls
            result.control_keys |= info.control_keys
    return result


def _classify_loop(function, loop, influence, strict):
    conditions = loop.exit_conditions()
    if not conditions:
        return None  # no exits: nothing observes other threads

    if strict and _has_store(loop):
        return None

    closures = [influence.closure(cond, loop.body) for cond in conditions]

    # Condition (1): every exit condition needs a non-local dependency.
    for closure in closures:
        if not closure.has_nonlocal:
            return None

    # Condition (2): local-only stores must not influence the exits.
    feeding_stores = set()
    nonlocal_reads = set()
    for closure in closures:
        feeding_stores |= closure.local_stores
        nonlocal_reads |= closure.nonlocal_accesses
    for store in feeding_stores:
        if influence.stored_value_is_constant(store):
            continue
        value_closure = influence.closure(store.value, loop.body)
        if not value_closure.has_nonlocal:
            return None
    # The same rule applied to in-loop writes hitting the locations the
    # conditions read (e.g. ``while (flag != i) flag = compute();``).
    for store in influence.nonlocal_stores_matching(nonlocal_reads, loop.body):
        if isinstance(store, (ins.AtomicRMW, ins.Cmpxchg)):
            continue  # RMWs read memory: they carry a non-local dep
        if influence.stored_value_is_constant(store):
            continue
        value_closure = influence.closure(store.value, loop.body)
        if not value_closure.has_nonlocal:
            return None

    info = SpinloopInfo(function.name, loop)
    for access in nonlocal_reads:
        access.marks.add("spin_control")
        info.spin_controls.add(access)
        key = influence.nonlocal_info.location_key(access.accessed_pointer())
        if key is not None:
            info.control_keys.add(key)
    return info


def _has_store(loop):
    for instr in loop.instructions():
        if isinstance(instr, (ins.Store, ins.AtomicRMW, ins.Cmpxchg)):
            return True
    return False
