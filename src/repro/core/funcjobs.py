"""Function-parallel execution of intra-procedural pipeline stages.

The detection stages (annotations, spinloops, optimistic loops) are
per-function by construction: each worker reads and mutates only one
function's instructions, and the per-function partial results merge
into sets.  ``map_functions`` fans those workers out over a thread
pool and returns the partials **in module function order**, so merged
results are independent of scheduling.

Threads, not processes: the workers mutate live IR objects in place,
which cannot cross a process boundary.  Under CPython's GIL this is a
modest win (the analyses are pure Python), so the pipeline default is
``jobs=1`` — process-level parallelism across *ports* is where the
real speedup lives (:mod:`repro.core.parallel`).

Memoized analyses shared between workers (``AnalysisCache``) are safe
here: dict get/set are atomic under the GIL, and a lost race merely
recomputes a per-function analysis once.
"""

from concurrent.futures import ThreadPoolExecutor


def map_items(items, worker, jobs=1):
    """Apply ``worker`` to every item; results in input order."""
    items = list(items)
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        # executor.map preserves input order, so the caller's merge
        # loop sees partials exactly as the serial path would.
        return list(pool.map(worker, items))


def map_functions(module, worker, jobs=1):
    """Apply ``worker`` to every function; partials in module order."""
    return map_items(module.functions.values(), worker, jobs=jobs)
