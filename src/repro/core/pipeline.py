"""The end-to-end porting pipeline (Figure 2 of the paper).

``run_porting`` clones the input module, applies the strategy selected
by :class:`PortingLevel`, verifies the result and returns it together
with a :class:`PortingReport` describing what was detected and changed.

Every stage is timed into ``report.stats`` (:class:`PipelineStats`);
``report.porting_seconds`` covers the transformation proper, while
post-port verification and barrier recounting live in their own stats
buckets.  With ``AtoMigConfig.incremental_verify`` (the default) only
the functions a port actually touched are re-verified: a clone of a
verified module is verified by construction, so an untouched function
cannot have become malformed.
"""

import time

from repro.analysis.cache import AnalysisCache
from repro.core.alias import explore_aliases
from repro.core.annotations import analyze_annotations
from repro.core.atomize import atomize_accesses, insert_optimistic_fences
from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.optimistic import detect_optimistic_loops
from repro.core.profile import notify_event
from repro.core.prune import (
    prune_protected_accesses,
    prune_thread_local_accesses,
)
from repro.core.report import PortingReport, count_barriers
from repro.core.spinloops import detect_spinloops
from repro.ir.verifier import verify_module
from repro.transform.inline import inline_module
from repro.transform.lasagne import lasagne_port
from repro.transform.naive import naive_port


def run_porting(module, level=PortingLevel.ATOMIG, config=None,
                optimize=False, optimize_kwargs=None):
    """Port ``module`` according to ``level``; returns (ported, report).

    ``optimize=True`` appends the oracle-guided barrier-weakening stage
    (:func:`repro.opt.optimize_module`): after porting, memory orders
    are relaxed as far as the model checker certifies the verdict
    unchanged.  The weakened module is returned and the
    ``OptimizationReport`` dict lands in ``report.optimization``.
    ``optimize_kwargs`` forwards knobs (``model``, ``jobs``,
    ``counts``...) to the optimizer.
    """
    started = time.perf_counter()
    config = config or AtoMigConfig.for_level(level)
    report = PortingReport(module_name=module.name, level=level.value)
    stats = report.stats
    with stats.stage("count_barriers"):
        report.original_explicit_barriers, report.original_implicit_barriers = (
            count_barriers(module)
        )

    with stats.stage("clone"):
        ported = module.clone()
    ported.name = f"{module.name}.{level.value}"

    #: Names of functions this port modified; ``None`` means "assume
    #: everything" (module-wide rewrites without touch tracking).
    touched = None
    if level is PortingLevel.ORIGINAL:
        touched = set()
    elif level is PortingLevel.NAIVE:
        with stats.stage("naive"):
            report.naive_conversions = naive_port(ported)
    elif level is PortingLevel.LASAGNE:
        with stats.stage("lasagne"):
            inserted, removed = lasagne_port(ported)
        report.fences_inserted = inserted - removed
        report.notes.append(
            f"lasagne: inserted {inserted} fences, eliminated {removed}"
        )
    else:
        touched = _run_atomig(ported, level, config, report)

    if config.repair_mode:
        from repro.analysis.repair import repair_module

        with stats.stage("repair"):
            _, repair_report = repair_module(
                ported, model=config.repair_model,
                arch=config.repair_arch, clone=False,
            )
        report.repair = repair_report.to_dict()
        if repair_report.rounds:
            # Repaired functions carry new fences / orders: make sure
            # the incremental verifier re-checks them.
            if touched is not None:
                touched |= {a.function for a in repair_report.actions}
            report.notes.append(repair_report.summary())
        if not repair_report.robust_after:
            report.notes.append(
                f"repair: module still non-robust under "
                f"{config.repair_model} after repair"
            )

    with stats.stage("verify"):
        if touched is None or not config.incremental_verify:
            verify_module(ported)
            stats.count("verified_functions", len(ported.functions))
        else:
            verify_module(ported, functions=touched)
            stats.count("verified_functions", len(touched))
            stats.count(
                "verify_skipped_functions",
                len(ported.functions) - len(touched),
            )
    with stats.stage("count_barriers"):
        report.ported_explicit_barriers, report.ported_implicit_barriers = (
            count_barriers(ported)
        )

    if config.check_robustness:
        from repro.analysis.robustness import analyze_robustness

        with stats.stage("robustness"):
            robust = analyze_robustness(ported)
        report.robustness = robust.to_dict()
        if robust.robust:
            report.notes.append(
                "robustness: statically robust under wmm — verdict "
                "equals the SC verdict, no model checking needed"
            )
        else:
            report.notes.append(
                f"robustness: potentially non-robust under wmm "
                f"({robust.delayable_pairs} delayable pairs)"
            )

    if optimize:
        from repro.opt import optimize_module  # lazy: opt pulls in mc

        with stats.stage("optimize"):
            ported, opt_report = optimize_module(
                ported, clone=False, **(optimize_kwargs or {})
            )
        report.optimization = opt_report.to_dict()
        if opt_report.baseline_outcome and not opt_report.verdict_preserved:
            report.notes.append(
                f"optimize: verdict NOT preserved "
                f"({opt_report.baseline_outcome} -> "
                f"{opt_report.final_outcome})"
            )

    stats.total_seconds = time.perf_counter() - started
    report.porting_seconds = stats.transform_seconds
    ported.metadata["porting_report"] = report
    notify_event(
        "port_done", module=module.name, level=level.value,
        seconds=stats.total_seconds,
        barriers=[report.ported_explicit_barriers,
                  report.ported_implicit_barriers],
    )
    return ported, report


def _run_atomig(ported, level, config, report):
    """Run the AtoMig stages on ``ported`` in place.

    Returns the set of names of functions the port modified (for the
    incremental verifier).
    """
    report.alias_mode = config.alias_mode
    stats = report.stats
    touched = set()

    if config.inline_before_analysis:
        with stats.stage("inline"):
            inlined = inline_module(
                ported, config.inline_size_limit, touched=touched
            )
        if inlined:
            report.notes.append(f"inlined {inlined} call sites before analysis")

    # One analysis cache for every stage below.  Built after inlining —
    # the per-function analyses hold references into the final IR.
    cache = AnalysisCache(ported)

    seed_keys = set()
    marked = set()

    if config.analyze_annotations:
        with stats.stage("annotations"):
            annotations = analyze_annotations(
                ported, config.volatile_blacklist, cache=cache,
                jobs=config.function_jobs,
            )
        seed_keys |= annotations.location_keys
        marked |= annotations.marked_instructions
        report.annotation_conversions = annotations.conversions

    spinloops = None
    if config.detect_spinloops:
        with stats.stage("spinloops"):
            spinloops = detect_spinloops(
                ported, strict=config.strict_spinloop_definition, cache=cache,
                jobs=config.function_jobs,
            )
        seed_keys |= spinloops.control_keys
        marked |= spinloops.control_instructions
        report.spinloops = [
            (info.function_name, info.header_label)
            for info in spinloops.spinloops
        ]
        report.spin_controls = sorted(map(str, spinloops.control_keys))

    if config.detect_polling_loops or config.compiler_barrier_seeds:
        from repro.core.extensions import (
            detect_compiler_barrier_seeds,
            detect_polling_loops,
        )

        extensions = None
        with stats.stage("extensions"):
            if config.detect_polling_loops:
                extensions = detect_polling_loops(ported, cache=cache)
                if extensions.polling_loops:
                    report.notes.append(
                        f"polling loops detected: {extensions.polling_loops}"
                    )
            if config.compiler_barrier_seeds:
                extensions = detect_compiler_barrier_seeds(
                    ported, extensions, cache=cache
                )
        if extensions is not None:
            seed_keys |= extensions.control_keys
            marked |= extensions.control_instructions

    optimistic = None
    if config.detect_optimistic and spinloops is not None:
        with stats.stage("optimistic"):
            optimistic = detect_optimistic_loops(
                ported, spinloops, cache=cache, jobs=config.function_jobs
            )
        seed_keys |= optimistic.control_keys
        marked |= optimistic.control_instructions
        report.optimistic_loops = [
            (info.function_name, info.spinloop.header_label)
            for info in optimistic.optimistic_loops
        ]
        report.optimistic_controls = sorted(map(str, optimistic.control_keys))

    sticky = set()
    index = None
    if config.alias_exploration:
        # points_to mode also re-seeds from the already-marked accesses:
        # a marked access that is keyless under the type scheme can be
        # keyed by its points-to class, pulling its true aliases in.
        seed_instructions = marked if config.alias_mode == "points_to" else ()
        with stats.stage("alias"):
            sticky, index = explore_aliases(
                ported, seed_keys, cache=cache, mode=config.alias_mode,
                seed_instructions=seed_instructions,
            )
        report.sticky_conversions = len(sticky - marked)

    # Every access whose order or marks may change lives in one of
    # these sets — record their functions before pruning shrinks them.
    for instr in marked | sticky:
        touched.add(instr.block.function.name)

    to_atomize = marked | sticky
    if config.prune_protected:
        with stats.stage("prune_protected"):
            pruned = prune_protected_accesses(ported, to_atomize, cache=cache)
        to_atomize -= pruned
        report.pruned_protected = len(pruned)
        if pruned:
            report.notes.append(
                f"lint pruning: {len(pruned)} lock-protected accesses "
                f"left plain"
            )

    if config.alias_mode == "points_to":
        with stats.stage("prune_thread_local"):
            local_pruned = prune_thread_local_accesses(
                ported, to_atomize, cache
            )
        to_atomize -= local_pruned
        report.pruned_thread_local = len(local_pruned)
        if local_pruned:
            report.notes.append(
                f"escape pruning: {len(local_pruned)} thread-local "
                f"accesses left plain"
            )
        with stats.stage("provenance"):
            report.alias_provenance = _alias_provenance(
                index, to_atomize, local_pruned
            )

    with stats.stage("atomize"):
        atomize_accesses(
            to_atomize, force_explicit=config.force_explicit_barriers
        )

    if optimistic is not None and optimistic.optimistic_loops:
        with stats.stage("fences"):
            report.fences_inserted = insert_optimistic_fences(
                ported, optimistic, sticky, cache=cache, touched=touched
            )

    warnings = ported.metadata.get("lowering_warnings")
    if warnings:
        report.notes.extend(warnings)
    return touched


def _alias_provenance(index, to_atomize, local_pruned):
    """String-only per-access provenance for the porting report.

    One entry per interesting access: atomized accesses whose key came
    from the points-to analysis (the precision *gain*) and accesses
    pruned as thread-local (the over-atomization *removed*).

    O(interesting accesses): positions come from the
    :class:`AccessIndex` built during alias exploration (it already
    walks every memory access once), and ordering uses the stable
    (function, block, ordinal) identity recorded there — ``repr`` of an
    unnamed instruction is ``id()``-based and unstable across runs.
    """
    if index is None:
        return []
    positions = index.position_of
    unknown = ("?", "?", -1)
    entries = []
    for instr in sorted(
        to_atomize | local_pruned,
        key=lambda i: positions.get(i, unknown),
    ):
        keyed = index.key_of.get(instr)
        pruned = "pruned_thread_local" in instr.marks
        if not pruned and (keyed is None or keyed[1] == "type"):
            continue
        function_name, block_label, _ = positions.get(instr, unknown)
        entries.append({
            "function": function_name,
            "block": block_label,
            "instr": repr(instr),
            "key": repr(keyed[0]) if keyed else None,
            "origin": keyed[1] if keyed else "none",
            "action": "pruned_thread_local" if pruned else "atomized",
        })
    return entries
