"""The end-to-end porting pipeline (Figure 2 of the paper).

``run_porting`` clones the input module, applies the strategy selected
by :class:`PortingLevel`, verifies the result and returns it together
with a :class:`PortingReport` describing what was detected and changed.
"""

import time

from repro.analysis.cache import AnalysisCache
from repro.core.alias import explore_aliases
from repro.core.annotations import analyze_annotations
from repro.core.atomize import atomize_accesses, insert_optimistic_fences
from repro.core.config import AtoMigConfig, PortingLevel
from repro.core.optimistic import detect_optimistic_loops
from repro.core.prune import (
    prune_protected_accesses,
    prune_thread_local_accesses,
)
from repro.core.report import PortingReport, count_barriers
from repro.core.spinloops import detect_spinloops
from repro.ir.verifier import verify_module
from repro.transform.inline import inline_module
from repro.transform.lasagne import lasagne_port
from repro.transform.naive import naive_port


def run_porting(module, level=PortingLevel.ATOMIG, config=None):
    """Port ``module`` according to ``level``; returns (ported, report)."""
    started = time.perf_counter()
    report = PortingReport(module_name=module.name, level=level.value)
    report.original_explicit_barriers, report.original_implicit_barriers = (
        count_barriers(module)
    )

    ported = module.clone()
    ported.name = f"{module.name}.{level.value}"

    if level is PortingLevel.ORIGINAL:
        pass
    elif level is PortingLevel.NAIVE:
        report.sticky_conversions = naive_port(ported)
    elif level is PortingLevel.LASAGNE:
        inserted, removed = lasagne_port(ported)
        report.fences_inserted = inserted - removed
        report.notes.append(
            f"lasagne: inserted {inserted} fences, eliminated {removed}"
        )
    else:
        _run_atomig(ported, level, config, report)

    verify_module(ported)
    report.ported_explicit_barriers, report.ported_implicit_barriers = (
        count_barriers(ported)
    )
    report.porting_seconds = time.perf_counter() - started
    ported.metadata["porting_report"] = report
    return ported, report


def _run_atomig(ported, level, config, report):
    config = config or AtoMigConfig.for_level(level)
    report.alias_mode = config.alias_mode

    if config.inline_before_analysis:
        inlined = inline_module(ported, config.inline_size_limit)
        if inlined:
            report.notes.append(f"inlined {inlined} call sites before analysis")

    # One analysis cache for every stage below.  Built after inlining —
    # the per-function analyses hold references into the final IR.
    cache = AnalysisCache(ported)

    seed_keys = set()
    marked = set()

    if config.analyze_annotations:
        annotations = analyze_annotations(
            ported, config.volatile_blacklist, cache=cache
        )
        seed_keys |= annotations.location_keys
        marked |= annotations.marked_instructions
        report.annotation_conversions = annotations.conversions

    spinloops = None
    if config.detect_spinloops:
        spinloops = detect_spinloops(
            ported, strict=config.strict_spinloop_definition, cache=cache
        )
        seed_keys |= spinloops.control_keys
        marked |= spinloops.control_instructions
        report.spinloops = [
            (info.function_name, info.header_label)
            for info in spinloops.spinloops
        ]
        report.spin_controls = sorted(map(str, spinloops.control_keys))

    if config.detect_polling_loops or config.compiler_barrier_seeds:
        from repro.core.extensions import (
            detect_compiler_barrier_seeds,
            detect_polling_loops,
        )

        extensions = None
        if config.detect_polling_loops:
            extensions = detect_polling_loops(ported, cache=cache)
            if extensions.polling_loops:
                report.notes.append(
                    f"polling loops detected: {extensions.polling_loops}"
                )
        if config.compiler_barrier_seeds:
            extensions = detect_compiler_barrier_seeds(
                ported, extensions, cache=cache
            )
        if extensions is not None:
            seed_keys |= extensions.control_keys
            marked |= extensions.control_instructions

    optimistic = None
    if config.detect_optimistic and spinloops is not None:
        optimistic = detect_optimistic_loops(ported, spinloops, cache=cache)
        seed_keys |= optimistic.control_keys
        marked |= optimistic.control_instructions
        report.optimistic_loops = [
            (info.function_name, info.spinloop.header_label)
            for info in optimistic.optimistic_loops
        ]
        report.optimistic_controls = sorted(map(str, optimistic.control_keys))

    sticky = set()
    index = None
    if config.alias_exploration:
        # points_to mode also re-seeds from the already-marked accesses:
        # a marked access that is keyless under the type scheme can be
        # keyed by its points-to class, pulling its true aliases in.
        seed_instructions = marked if config.alias_mode == "points_to" else ()
        sticky, index = explore_aliases(
            ported, seed_keys, cache=cache, mode=config.alias_mode,
            seed_instructions=seed_instructions,
        )
        report.sticky_conversions = len(sticky - marked)

    to_atomize = marked | sticky
    if config.prune_protected:
        pruned = prune_protected_accesses(ported, to_atomize, cache=cache)
        to_atomize -= pruned
        report.pruned_protected = len(pruned)
        if pruned:
            report.notes.append(
                f"lint pruning: {len(pruned)} lock-protected accesses "
                f"left plain"
            )

    if config.alias_mode == "points_to":
        local_pruned = prune_thread_local_accesses(ported, to_atomize, cache)
        to_atomize -= local_pruned
        report.pruned_thread_local = len(local_pruned)
        if local_pruned:
            report.notes.append(
                f"escape pruning: {len(local_pruned)} thread-local "
                f"accesses left plain"
            )
        report.alias_provenance = _alias_provenance(
            ported, index, to_atomize, local_pruned
        )

    atomize_accesses(
        to_atomize, force_explicit=config.force_explicit_barriers
    )

    if optimistic is not None and optimistic.optimistic_loops:
        report.fences_inserted = insert_optimistic_fences(
            ported, optimistic, sticky, cache=cache
        )

    warnings = ported.metadata.get("lowering_warnings")
    if warnings:
        report.notes.extend(warnings)


def _alias_provenance(ported, index, to_atomize, local_pruned):
    """String-only per-access provenance for the porting report.

    One entry per interesting access: atomized accesses whose key came
    from the points-to analysis (the precision *gain*) and accesses
    pruned as thread-local (the over-atomization *removed*).
    """
    if index is None:
        return []
    positions = {}
    for function in ported.functions.values():
        for block in function.blocks:
            for instr in block.instructions:
                positions[instr] = (function.name, block.label)
    entries = []
    for instr in sorted(
        to_atomize | local_pruned,
        key=lambda i: (positions.get(i, ("?", "?")), repr(i)),
    ):
        keyed = index.key_of.get(instr)
        pruned = "pruned_thread_local" in instr.marks
        if not pruned and (keyed is None or keyed[1] == "type"):
            continue
        function_name, block_label = positions.get(instr, ("?", "?"))
        entries.append({
            "function": function_name,
            "block": block_label,
            "instr": repr(instr),
            "key": repr(keyed[0]) if keyed else None,
            "origin": keyed[1] if keyed else "none",
            "action": "pruned_thread_local" if pruned else "atomized",
        })
    return entries
