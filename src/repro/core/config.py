"""Configuration of the AtoMig porting pipeline.

The knobs correspond to the ablations evaluated in the paper's Table 2
(Expl. / Spin / AtoMig columns) and to the design decisions discussed in
§3.5 and §6.
"""

import enum
from dataclasses import dataclass


class PortingLevel(enum.Enum):
    """Which porting strategy to apply to a module."""

    #: No transformation; compile as-is (the paper's "Original").
    ORIGINAL = "original"
    #: Only the explicit-annotation analysis (§3.2).
    EXPL = "expl"
    #: Explicit annotations + spinloop detection (§3.3, without
    #: optimistic-loop handling).
    SPIN = "spin"
    #: The full AtoMig pipeline (annotations + spinloops + optimistic
    #: loops + alias exploration).
    ATOMIG = "atomig"
    #: The naive strategy: every shared access becomes SC atomic.
    NAIVE = "naive"
    #: The Lasagne-like baseline: explicit fences everywhere, then
    #: provably-redundant fence elimination.
    LASAGNE = "lasagne"


@dataclass
class AtoMigConfig:
    """Tuning knobs for the AtoMig pipeline.

    The defaults reproduce the paper's configuration; individual flags
    exist so the ablation benchmarks can switch parts off.
    """

    #: Handle explicit annotations: C11 atomics, ``volatile``, inline asm.
    analyze_annotations: bool = True
    #: Detect spinloops and mark spin controls.
    detect_spinloops: bool = True
    #: Detect optimistic loops and add explicit barriers.
    detect_optimistic: bool = True
    #: Run module-wide alias exploration ("once atomic, always atomic").
    alias_exploration: bool = True
    #: Inline small functions before analysis so loops spanning function
    #: boundaries become visible (§3.5 "Loops Spanning Multiple Functions").
    inline_before_analysis: bool = True
    #: Maximum callee size (in instructions) eligible for pre-inlining.
    inline_size_limit: int = 80
    #: Use the stricter literature definition of a spinloop (no stores in
    #: the loop body at all).  Ablation knob; the paper argues (§3.5)
    #: this detects fewer synchronization points.
    strict_spinloop_definition: bool = False
    #: Globals excluded from the volatile conversion (the paper's
    #: blacklist for device/signal-handler volatiles; never needed in
    #: their experiments, §3.2).
    volatile_blacklist: tuple = ()
    #: Use explicit fences instead of implicit barriers at every marked
    #: access (ablation: quantifies the implicit-vs-explicit design
    #: decision against Liu et al. [48]).
    force_explicit_barriers: bool = False
    #: §6 extension: treat timing-based polling loops (loops that call
    #: usleep/sched_yield) as synchronization entry points.  Off by
    #: default to match the paper's evaluated configuration.
    detect_polling_loops: bool = False
    #: §6 extension: use compiler-barrier placements
    #: (``__asm__("" ::: "memory")``) as additional detection seeds.
    compiler_barrier_seeds: bool = False
    #: Lint-based pruning: exempt accesses the static race linter proves
    #: consistently lock-protected (structural lock idioms only) from
    #: atomization.  They are race-free under any memory model, so the
    #: SC promotion is pure overhead.  Off by default to match the
    #: paper's evaluated configuration.
    prune_protected: bool = False
    #: After porting, run the static Shasha-Snir robustness analysis
    #: on the result and attach the classification to the report
    #: (``report.robustness``).  A robust port provably needs no
    #: model checking: its WMM verdict equals its SC verdict.  Off by
    #: default — ``atomig check`` runs the same pre-pass on demand.
    check_robustness: bool = False
    #: After porting, statically repair any remaining non-robustness:
    #: enumerate critical cycles and break every one with a min-cost set
    #: of fence insertions / order strengthenings
    #: (:mod:`repro.analysis.repair`).  The repair runs *before* the
    #: post-port verify so inserted fences are re-verified, and its
    #: :class:`RepairReport` lands in ``report.repair``.  Off by
    #: default — ``atomig repair`` / ``--repair`` switch it on.
    repair_mode: bool = False
    #: Memory model the repair targets (matches ``atomig check -m``).
    repair_model: str = "wmm"
    #: Cost-model name weighting the repair (``armv8`` / ``power``).
    repair_arch: str = "armv8"
    #: Location-key precision for alias exploration.  ``type_based`` is
    #: the paper's scheme (global names + struct-field signatures);
    #: ``points_to`` additionally keys pointers by their Andersen
    #: points-to equivalence class — buddy propagation works through
    #: plain pointer arguments — and prunes sticky buddies whose every
    #: aliased object is provably thread-local.
    alias_mode: str = "type_based"
    #: Worker threads for the per-function detection stages
    #: (annotations, spinloops, optimistic).  These stages are
    #: intra-procedural by construction, so splitting by function is
    #: safe; results are merged in deterministic function order.  The
    #: workers are threads (the analyses are pure Python, so this is a
    #: latency win only where the GIL is released), default 1 = serial.
    function_jobs: int = 1
    #: Re-verify only the functions the port actually touched.  A clone
    #: of a verified module is verified by construction; only functions
    #: with changed memory orders, inserted fences, or inlined bodies
    #: need re-checking.  Disable to force a full post-port verify.
    incremental_verify: bool = True

    @classmethod
    def for_level(cls, level):
        """Build the configuration matching a :class:`PortingLevel`."""
        if level is PortingLevel.EXPL:
            return cls(
                detect_spinloops=False,
                detect_optimistic=False,
                alias_exploration=True,
            )
        if level is PortingLevel.SPIN:
            return cls(detect_optimistic=False)
        return cls()
