"""Porting report: what AtoMig found and changed in a module.

This is the data behind the paper's Table 3 columns: number of
spinloops, optimistic loops, implicit barriers (SC atomic accesses) and
explicit barriers (fences) before and after porting.
"""

from dataclasses import dataclass, field

from repro.ir.instructions import AtomicRMW, Cmpxchg, Fence, Load, Store


@dataclass
class PortingReport:
    """Statistics collected while porting one module."""

    module_name: str = ""
    level: str = "atomig"
    #: Spinloops detected, as (function, header-label) pairs.
    spinloops: list = field(default_factory=list)
    #: Optimistic loops detected, as (function, header-label) pairs.
    optimistic_loops: list = field(default_factory=list)
    #: Locations marked as spin controls (location keys).
    spin_controls: list = field(default_factory=list)
    #: Locations marked as optimistic controls (location keys).
    optimistic_controls: list = field(default_factory=list)
    #: Accesses converted by the explicit-annotation pass.
    annotation_conversions: int = 0
    #: Accesses converted via sticky-buddy alias exploration.
    sticky_conversions: int = 0
    #: Explicit fences inserted by the optimistic-loop transformation.
    fences_inserted: int = 0
    #: Barrier counts before the transformation.
    original_explicit_barriers: int = 0
    original_implicit_barriers: int = 0
    #: Barrier counts after the transformation.
    ported_explicit_barriers: int = 0
    ported_implicit_barriers: int = 0
    #: Wall-clock seconds spent inside the porting pipeline.
    porting_seconds: float = 0.0
    #: Diagnostic notes (e.g. unknown inline asm).
    notes: list = field(default_factory=list)

    @property
    def num_spinloops(self):
        return len(self.spinloops)

    @property
    def num_optimistic_loops(self):
        return len(self.optimistic_loops)

    def summary(self):
        """Human-readable one-paragraph summary."""
        return (
            f"module {self.module_name} [{self.level}]: "
            f"{self.num_spinloops} spinloops, "
            f"{self.num_optimistic_loops} optimistic loops, "
            f"barriers {self.original_explicit_barriers} expl / "
            f"{self.original_implicit_barriers} impl -> "
            f"{self.ported_explicit_barriers} expl / "
            f"{self.ported_implicit_barriers} impl"
        )


def count_barriers(module):
    """Count (explicit, implicit) barriers in ``module``.

    Explicit barriers are stand-alone fences; implicit barriers are
    atomic memory accesses (loads, stores and RMWs with any atomic
    order), matching the paper's BExpl / BImpl columns.
    """
    explicit = 0
    implicit = 0
    for instr in module.instructions():
        if isinstance(instr, Fence):
            explicit += 1
        elif isinstance(instr, (Load, Store)):
            if instr.order.is_atomic:
                implicit += 1
        elif isinstance(instr, (AtomicRMW, Cmpxchg)):
            implicit += 1
    return explicit, implicit
