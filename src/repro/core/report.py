"""Porting report: what AtoMig found and changed in a module.

This is the data behind the paper's Table 3 columns: number of
spinloops, optimistic loops, implicit barriers (SC atomic accesses) and
explicit barriers (fences) before and after porting.
"""

from dataclasses import dataclass, field

from repro.core.profile import PipelineStats
from repro.ir.instructions import AtomicRMW, Cmpxchg, Fence, Load, Store


@dataclass
class PortingReport:
    """Statistics collected while porting one module."""

    module_name: str = ""
    level: str = "atomig"
    #: Spinloops detected, as (function, header-label) pairs.
    spinloops: list = field(default_factory=list)
    #: Optimistic loops detected, as (function, header-label) pairs.
    optimistic_loops: list = field(default_factory=list)
    #: Locations marked as spin controls (location keys).
    spin_controls: list = field(default_factory=list)
    #: Locations marked as optimistic controls (location keys).
    optimistic_controls: list = field(default_factory=list)
    #: Accesses converted by the explicit-annotation pass.
    annotation_conversions: int = 0
    #: Accesses converted via sticky-buddy alias exploration.
    sticky_conversions: int = 0
    #: Accesses converted by the Naïve porter (level ``naive`` only).
    #: Historically this count was stored in ``sticky_conversions``;
    #: the JSON output keeps that key as a deprecated alias.
    naive_conversions: int = 0
    #: Marked accesses exempted by lock-protection pruning.
    pruned_protected: int = 0
    #: Location-key scheme used by alias exploration.
    alias_mode: str = "type_based"
    #: Sticky buddies exempted because every aliased object is
    #: provably thread-local (points_to mode only).
    pruned_thread_local: int = 0
    #: Per-access alias provenance (points_to mode): one dict per keyed
    #: access whose key came from the points-to analysis or that was
    #: pruned, with string-only values so reports stay picklable.
    alias_provenance: list = field(default_factory=list)
    #: Explicit fences inserted by the optimistic-loop transformation.
    fences_inserted: int = 0
    #: Barrier counts before the transformation.
    original_explicit_barriers: int = 0
    original_implicit_barriers: int = 0
    #: Barrier counts after the transformation.
    ported_explicit_barriers: int = 0
    ported_implicit_barriers: int = 0
    #: Wall-clock seconds spent inside the porting *transformation*.
    #: Post-port verification and barrier recounting used to be folded
    #: in silently; they now live in their own ``stats`` buckets
    #: (``verify``, ``count_barriers``) and are excluded here.
    porting_seconds: float = 0.0
    #: Per-stage wall-clock profile of this port.
    stats: PipelineStats = field(default_factory=PipelineStats)
    #: Barrier-weakening results when the port ran with ``optimize``
    #: (a :class:`repro.opt.report.OptimizationReport` dict), else {}.
    optimization: dict = field(default_factory=dict)
    #: Static robustness classification of the ported module when the
    #: config enables ``check_robustness`` (a
    #: :class:`repro.analysis.robustness.RobustnessResult` dict), else {}.
    robustness: dict = field(default_factory=dict)
    #: Static fence-repair results when the config enables
    #: ``repair_mode`` (a :class:`repro.analysis.repair.RepairReport`
    #: dict), else {}.
    repair: dict = field(default_factory=dict)
    #: Diagnostic notes (e.g. unknown inline asm).
    notes: list = field(default_factory=list)

    @property
    def num_spinloops(self):
        return len(self.spinloops)

    @property
    def num_optimistic_loops(self):
        return len(self.optimistic_loops)

    @property
    def total_seconds(self):
        """Full wall-clock of the port, verification included."""
        return self.stats.total_seconds or self.porting_seconds

    def to_dict(self):
        """JSON-ready structure (``atomig port``/``tables`` payloads).

        ``sticky_conversions`` historically also carried the Naïve
        porter's conversion count; that spelling is kept as a
        deprecated alias of ``naive_conversions`` for ``naive``-level
        reports so existing consumers keep working.
        """
        sticky = self.sticky_conversions
        if self.level == "naive":
            sticky = self.naive_conversions  # deprecated alias
        return {
            "module": self.module_name,
            "level": self.level,
            "spinloops": list(self.spinloops),
            "optimistic_loops": list(self.optimistic_loops),
            "spin_controls": list(self.spin_controls),
            "optimistic_controls": list(self.optimistic_controls),
            "annotation_conversions": self.annotation_conversions,
            "sticky_conversions": sticky,
            "naive_conversions": self.naive_conversions,
            "pruned_protected": self.pruned_protected,
            "alias_mode": self.alias_mode,
            "pruned_thread_local": self.pruned_thread_local,
            "fences_inserted": self.fences_inserted,
            "original_explicit_barriers": self.original_explicit_barriers,
            "original_implicit_barriers": self.original_implicit_barriers,
            "ported_explicit_barriers": self.ported_explicit_barriers,
            "ported_implicit_barriers": self.ported_implicit_barriers,
            "porting_seconds": self.porting_seconds,
            "stats": self.stats.to_dict(),
            "optimization": dict(self.optimization),
            "robustness": dict(self.robustness),
            "repair": dict(self.repair),
            "notes": list(self.notes),
        }

    def summary(self):
        """Human-readable one-paragraph summary."""
        return (
            f"module {self.module_name} [{self.level}]: "
            f"{self.num_spinloops} spinloops, "
            f"{self.num_optimistic_loops} optimistic loops, "
            f"barriers {self.original_explicit_barriers} expl / "
            f"{self.original_implicit_barriers} impl -> "
            f"{self.ported_explicit_barriers} expl / "
            f"{self.ported_implicit_barriers} impl"
        )


#: Version of the ``atomig lint --json`` payload.  Bump on any change
#: to the structure below; the lint-corpus snapshot test asserts it so
#: consumers notice schema drift loudly instead of silently.  Versioned
#: in lockstep with
#: :data:`repro.analysis.robustness.ROBUSTNESS_SCHEMA_VERSION` (4: the
#: robustness payload gained ``schema_version`` + deterministic witness
#: ordering, and porting reports gained ``repair``).
LINT_SCHEMA_VERSION = 4


@dataclass
class LintReport:
    """Rendering wrapper around a :class:`repro.analysis.races.RaceReport`.

    This is what ``atomig lint`` prints: one line per non-local access
    with provenance, classification, the locks held, and a suggested
    remediation — plus the lock inventory and a class histogram.
    """

    races: object = None
    #: Dead-fence lint findings (fences not adjacent to any shared
    #: access on any path), from repro.analysis.robustness.
    dead_fences: list = None

    @property
    def module_name(self):
        return self.races.module_name

    @property
    def findings(self):
        return self.races.findings

    def counts(self):
        return self.races.counts()

    def summary(self):
        counts = self.counts()
        parts = ", ".join(
            f"{counts[k]} {k}" for k in sorted(counts)
        ) or "no non-local accesses"
        dead = ""
        if self.dead_fences:
            dead = f", {len(self.dead_fences)} dead fences"
        return (
            f"lint {self.module_name}: {len(self.races.locks)} locks, "
            f"{parts}{dead}"
        )

    def render(self, show=("racy", "unknown", "protected", "lock")):
        """Multi-line human-readable report."""
        lines = [self.summary()]
        for key, lock in sorted(
            self.races.locks.items(), key=lambda item: repr(item[0])
        ):
            kind = "heuristic" if lock.heuristic else "structural"
            lines.append(
                f"  lock {lock.describe()} [{kind}]: "
                f"{len(lock.acquire_sites)} acquire / "
                f"{len(lock.release_sites)} release sites"
            )
        for finding in self.findings:
            if finding.classification.value not in show:
                continue
            held = f" holding {{{', '.join(finding.lockset)}}}" if (
                finding.lockset
            ) else ""
            lines.append(
                f"  [{finding.classification.value}] {finding.location()} "
                f"{finding.instr!r}{held}"
            )
            lines.append(f"      -> {finding.remediation}")
        for fence in self.dead_fences or ():
            lines.append(
                f"  [dead-fence] {fence['function']}:{fence['block']}"
                f"[{fence['index']}] fence({fence['order']})"
            )
            lines.append(f"      -> {fence['reason']}; safe to delete")
        return "\n".join(lines)

    def to_dict(self):
        """JSON-ready structure (used by ``atomig lint --json``)."""
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "module": self.module_name,
            "counts": self.counts(),
            "locks": [
                {
                    "key": list(lock.key),
                    "heuristic": lock.heuristic,
                    "acquire_sites": lock.acquire_sites,
                    "release_sites": lock.release_sites,
                }
                for lock in self.races.locks.values()
            ],
            "findings": [
                {
                    "function": finding.function,
                    "block": finding.block_label,
                    "line": finding.source_line,
                    "instr": repr(finding.instr),
                    "key": list(finding.key) if finding.key else None,
                    "class": finding.classification.value,
                    "lockset": list(finding.lockset),
                    "confidence": finding.confidence,
                    "concurrent": finding.concurrent,
                    "remediation": finding.remediation,
                }
                for finding in self.findings
            ],
            "dead_fences": list(self.dead_fences or ()),
        }


def format_exploration_stats(stats):
    """Render an :class:`repro.mc.explorer.ExplorationStats` record.

    Multi-line, aligned — what ``atomig check --stats`` prints under
    each model's verdict line.
    """
    rows = []
    if getattr(stats, "engine", "") or getattr(stats, "por", ""):
        backend = f"{stats.engine or '?'} engine, por={stats.por or '?'}"
        if getattr(stats, "macro", ""):
            backend += f", macro={stats.macro}"
        rows.append(("backend", backend))
    rows += [
        ("scheduling decisions", f"{stats.states_explored}"),
        ("states visited", f"{stats.states_visited}"),
        ("transitions", f"{stats.transitions}"),
        ("macro steps", f"{stats.macro_steps}"),
        ("ample steps", f"{stats.ample_steps}"),
        ("sleep-set prunes", f"{stats.sleep_prunes}"),
        ("self-loop prunes", f"{stats.loop_prunes}"),
        ("dedup hits", f"{stats.dedup_hits}"),
    ]
    if getattr(stats, "por", "") == "dpor":
        rows += [
            ("races detected", f"{stats.races_detected}"),
            ("backtrack points", f"{stats.backtrack_points}"),
            ("wakeup re-explorations", f"{stats.wakeup_reexplorations}"),
            ("equivalence classes", f"{stats.equivalence_classes}"),
            ("cycle expansions", f"{stats.cycle_expansions}"),
        ]
    rows += [
        ("peak frontier", f"{stats.peak_frontier}"),
        ("compression", f"{stats.compression_ratio:.1f}x"),
        ("throughput", f"{stats.states_per_second:,.0f} states/s"),
        ("wall time", f"{stats.wall_seconds:.3f}s"),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join(
        f"      {label.ljust(width)}  {value}" for label, value in rows
    )


def count_barriers(module):
    """Count (explicit, implicit) barriers in ``module``.

    Explicit barriers are stand-alone fences; implicit barriers are
    atomic memory accesses (loads, stores and RMWs with any atomic
    order), matching the paper's BExpl / BImpl columns.
    """
    explicit = 0
    implicit = 0
    for instr in module.instructions():
        if isinstance(instr, Fence):
            explicit += 1
        elif isinstance(instr, (Load, Store)):
            if instr.order.is_atomic:
                implicit += 1
        elif isinstance(instr, (AtomicRMW, Cmpxchg)):
            implicit += 1
    return explicit, implicit
