"""Parallel porting harness: fan independent port jobs across cores.

The Table 3/5/6 harnesses and ``atomig tables --jobs`` are batches of
*independent* (module, level) ports — different applications, different
porting levels, disjoint cloned modules — so they parallelize
embarrassingly, exactly like the model-checking batches of
:mod:`repro.mc.parallel`.  A :class:`PortTask` is a picklable
description of one job; :func:`run_port_tasks` executes a batch either
sequentially (``jobs`` unset or 1, the deterministic default) or on a
``multiprocessing`` pool.

Tasks carry source text (or a synthetic-codebase spec) rather than IR
modules, so the same task list works under both the ``fork`` and
``spawn`` start methods; each worker compiles — or pulls from the
frontend cache (:mod:`repro.modcache`) — inside its own process and
times its own build and port, keeping per-row build/port ratios honest
under parallelism.  Outcomes return :class:`PortingReport` objects
(picklable, including their per-stage profile) instead of live IR;
callers that need the ported IR itself request ``emit_ir`` and get the
printed text, which doubles as the bit-identity witness in the
serial-vs-parallel CI check.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PortTask:
    """One porting job, self-contained and picklable."""

    #: Module name (also the compile name; diagnostics).
    name: str
    #: Mini-C source text; ``None`` when ``synth`` supplies it.
    source: str = None
    #: (app_name, scale, seed) generating the source via
    #: :func:`repro.bench.synth.generate_codebase` — cheaper to pickle
    #: than a multi-megabyte synthetic source text.
    synth: tuple = None
    #: PortingLevel value ("original", ..., "atomig"), or ``None`` to
    #: just compile and count barriers.
    level: str = None
    #: Optional AtoMigConfig for the porting pipeline.
    config: object = None
    #: Return the printed IR of the ported module.
    emit_ir: bool = False
    #: VM schedule seeds to execute the ported module under
    #: (Tables 5/6); one cycle count per seed in the outcome.
    run_seeds: tuple = ()
    #: Frontend-cache override (None = honor ATOMIG_FRONTEND_CACHE).
    frontend_cache: bool = None


@dataclass
class PortOutcome:
    """What one :class:`PortTask` produced (picklable)."""

    name: str
    level: str = None
    #: The :class:`repro.core.report.PortingReport` (None when the task
    #: only compiled).
    report: object = None
    #: (explicit, implicit) barriers of the final module.
    barriers: tuple = (0, 0)
    #: Wall-clock of the in-worker compile (or cache load).
    build_seconds: float = 0.0
    #: Wall-clock of the in-worker ``port_module`` call.
    port_seconds: float = 0.0
    #: Modeled cycle count per requested schedule seed.
    cycles: tuple = ()
    #: Printed IR of the final module (``emit_ir`` tasks only).
    ir_text: str = None


def run_port_task(task):
    """Compile, port, and optionally run one task.

    Top-level (not a closure) so it pickles under every multiprocessing
    start method.
    """
    import time

    from repro.api import compile_source, port_module, run_module
    from repro.core.config import PortingLevel
    from repro.core.report import count_barriers

    source = task.source
    if source is None:
        from repro.bench.synth import generate_codebase

        app_name, scale, seed = task.synth
        source = generate_codebase(app_name, scale=scale, seed=seed)

    started = time.perf_counter()
    module = compile_source(source, task.name, cache=task.frontend_cache)
    build_seconds = time.perf_counter() - started

    ported = module
    report = None
    port_seconds = 0.0
    if task.level is not None:
        started = time.perf_counter()
        ported, report = port_module(
            module, PortingLevel(task.level), config=task.config
        )
        port_seconds = time.perf_counter() - started

    outcome = PortOutcome(
        name=task.name, level=task.level, report=report,
        barriers=count_barriers(ported),
        build_seconds=build_seconds, port_seconds=port_seconds,
    )
    if task.run_seeds:
        outcome.cycles = tuple(
            run_module(ported, schedule_seed=seed).cycles
            for seed in task.run_seeds
        )
    if task.emit_ir:
        from repro.ir.printer import print_module

        outcome.ir_text = print_module(ported)
    return outcome


def run_port_tasks(tasks, jobs=None):
    """Run a batch of port tasks; results align with the input order.

    ``jobs=None`` or ``jobs<=1`` runs sequentially in-process.  Larger
    values use the persistent pool for that worker count
    (:func:`repro.core.workers.get_pool`): forked once per process
    lifetime and reused across batches, so a sweep that ports every
    application at every level pays pool setup exactly once, and
    per-worker busy time lands in the pool's ``worker_stats`` (surfaced
    by the BENCH_port harness).

    ``chunksize=1``: tasks are few and lumpy (a mariadb-sized port must
    not strand a prefetched batch of small ones behind it).
    """
    tasks = list(tasks)
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [run_port_task(task) for task in tasks]

    from repro.core.workers import get_pool

    pool = get_pool(jobs)
    return pool.map(run_port_task, tasks, chunksize=1)
