"""Per-stage profiling of the porting pipeline.

The paper's headline scalability claim (Table 3: analysis cost is a
small constant factor over the build) is only checkable if the porter
can say where its time goes.  :class:`PipelineStats` records wall-clock
seconds per pipeline stage — clone, inline, annotations, spinloops,
extensions, optimistic, alias, prune, atomize, fences — plus the
bookkeeping the porter does around the transformation proper
(``verify``, ``count_barriers``), which PR 4 moved *out* of
``PortingReport.porting_seconds`` into their own buckets.

Stats objects are plain data: picklable (they ride inside
:class:`repro.core.report.PortingReport` across the process pool of
``repro.core.parallel``) and mergeable (``atomig tables --profile``
aggregates one stats object per port into a per-stage total).
"""

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Canonical stage order for rendering; unknown stages print after
#: these, in insertion order.
STAGE_ORDER = (
    "clone",
    "inline",
    "annotations",
    "spinloops",
    "extensions",
    "optimistic",
    "alias",
    "prune_protected",
    "prune_thread_local",
    "provenance",
    "atomize",
    "fences",
    "naive",
    "lasagne",
    "verify",
    "count_barriers",
)

#: Thread-local stack of progress observers (see :func:`stage_observer`).
#: Thread-local on purpose: the serve daemon runs concurrent ports on
#: separate worker threads, and each job must only see its own stages.
_OBSERVERS = threading.local()


@contextmanager
def stage_observer(callback):
    """Receive pipeline progress events on this thread.

    While the context is active, every :meth:`PipelineStats.stage`
    boundary on this thread calls ``callback`` with an event dict —
    ``{"type": "stage_start", "stage": name}`` on entry and
    ``{"type": "stage_end", "stage": name, "seconds": s}`` on exit —
    plus whatever :func:`notify_event` emits (e.g. the pipeline's
    final ``port_done``).  This is how ``GET /jobs/<id>/events``
    streams per-stage NDJSON without the pipeline knowing about HTTP.
    Observers nest; every active one sees every event.
    """
    stack = getattr(_OBSERVERS, "stack", None)
    if stack is None:
        stack = _OBSERVERS.stack = []
    stack.append(callback)
    try:
        yield
    finally:
        stack.pop()


def notify_event(type_, **fields):
    """Send one progress event to this thread's active observers.

    A no-op without observers (the common, non-serve case); observer
    exceptions are swallowed so a broken progress consumer can never
    fail a port.
    """
    stack = getattr(_OBSERVERS, "stack", None)
    if not stack:
        return
    event = {"type": type_, **fields}
    for callback in stack:
        try:
            callback(dict(event))
        except Exception:
            pass


@dataclass
class PipelineStats:
    """Wall-clock seconds and counters for one ``run_porting`` call."""

    #: stage name -> seconds (missing: stage did not run).
    stage_seconds: dict = field(default_factory=dict)
    #: free-form integer counters (e.g. ``verified_functions``).
    counters: dict = field(default_factory=dict)
    #: total wall-clock of the whole ``run_porting`` call, including
    #: verification and barrier recounting.
    total_seconds: float = 0.0
    #: number of ports merged into this record (1 for a single port).
    ports: int = 1

    @contextmanager
    def stage(self, name):
        """Time a stage; additive when the same stage runs twice."""
        notify_event("stage_start", stage=name)
        started = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - started
            self.add(name, seconds)
            notify_event("stage_end", stage=name, seconds=seconds)

    def add(self, name, seconds):
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    def count(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value

    @property
    def transform_seconds(self):
        """Time inside the transformation itself (no verify/recount)."""
        overhead = (self.stage_seconds.get("verify", 0.0)
                    + self.stage_seconds.get("count_barriers", 0.0))
        return max(self.total_seconds - overhead, 0.0)

    def merge(self, other):
        """Fold another stats record into this one (for aggregation)."""
        for name, seconds in other.stage_seconds.items():
            self.add(name, seconds)
        for name, value in other.counters.items():
            self.count(name, value)
        self.total_seconds += other.total_seconds
        self.ports += other.ports
        return self

    def ordered_stages(self):
        """(stage, seconds) pairs in canonical order."""
        seen = [s for s in STAGE_ORDER if s in self.stage_seconds]
        seen += [s for s in self.stage_seconds if s not in STAGE_ORDER]
        return [(name, self.stage_seconds[name]) for name in seen]

    def to_dict(self):
        return {
            "stage_seconds": dict(self.stage_seconds),
            "counters": dict(self.counters),
            "total_seconds": self.total_seconds,
            "transform_seconds": self.transform_seconds,
            "ports": self.ports,
        }

    @classmethod
    def from_dict(cls, payload):
        stats = cls(
            stage_seconds=dict(payload.get("stage_seconds", {})),
            counters=dict(payload.get("counters", {})),
            total_seconds=payload.get("total_seconds", 0.0),
            ports=payload.get("ports", 1),
        )
        return stats


def format_pipeline_stats(stats, indent="  "):
    """Aligned multi-line rendering (``atomig port --profile``)."""
    total = stats.total_seconds or sum(
        s for _, s in stats.ordered_stages()
    ) or 1.0
    rows = [
        (name, f"{seconds:.4f}s", f"{100.0 * seconds / total:5.1f}%")
        for name, seconds in stats.ordered_stages()
    ]
    rows.append(("total", f"{stats.total_seconds:.4f}s", "100.0%"))
    if stats.ports > 1:
        rows.append(("ports merged", str(stats.ports), ""))
    for name in sorted(stats.counters):
        rows.append((name, str(stats.counters[name]), ""))
    width = max(len(name) for name, _, _ in rows)
    vwidth = max(len(value) for _, value, _ in rows)
    return "\n".join(
        f"{indent}{name.ljust(width)}  {value.rjust(vwidth)}  {pct}".rstrip()
        for name, value, pct in rows
    )
