"""Persistent worker pools with seeded module caches (DESIGN.md §6f).

The batch harnesses (:mod:`repro.mc.parallel`, :mod:`repro.core.parallel`,
the optimizer's bisection probes) used to build a fresh
``multiprocessing.Pool`` per call: the Oracle's half-probing pays pool
setup for every bisection round, and every worker recompiles sources it
has already seen.  This module replaces that with three mechanisms:

- **Persistent pools.**  :func:`get_pool` keeps one pool per worker
  count alive for the whole process (closed via ``atexit``), so a
  bisection loop that probes dozens of batches forks exactly once.
- **Worker-side module caches.**  :func:`cached_module` memoizes
  compiled/parsed modules by source digest inside each worker (and in
  the serial in-process path).  Pools can additionally be *seeded*:
  the initializer pre-compiles a list of sources once per worker, so a
  sweep that checks the same program under ``sc``/``tso``/``wmm``
  compiles it once, not once per (model, task).  Cache hits hand out
  ``Module.clone()`` copies — the porting pipeline may mutate its
  input, so the cached master is never exposed.
- **Interned location keys + per-worker timing.**  Seeding interns the
  module's global/function name strings (the location keys every
  report row repeats), and every task runs through a timing wrapper;
  :attr:`WorkerPool.worker_stats` maps worker pid to cumulative busy
  seconds and task count, making pool skew visible to the perf
  harnesses (``BENCH_port.json``).

The serial path (``jobs`` unset or 1) never touches multiprocessing:
callers fall back to a plain in-process loop that still benefits from
:func:`cached_module`.
"""

import atexit
import hashlib
import os
import sys
import time
from functools import partial

# -- worker-side state (one copy per worker process) ------------------------

#: Sources the pool initializer compiled: digest -> master module.
#: Never evicted — seeds are few and chosen by the caller.
_SEEDED = {}
#: Opportunistic memo for sources first seen inside a task.  Bounded:
#: a long bisection streams thousands of one-shot variants through a
#: worker, and caching them all would only grow memory.
_MEMO = {}
_MEMO_LIMIT = 128


def _source_key(source, is_ir):
    tag = b"ir|" if is_ir else b"c|"
    return hashlib.blake2b(tag + source.encode(), digest_size=16).digest()


def _compile(source, name, is_ir):
    if is_ir:
        from repro.ir.parser import parse_module

        return parse_module(source)
    from repro.api import compile_source

    return compile_source(source, name)


def _intern_location_keys(module):
    """Intern the name strings repeated in every result row.

    Global and function names are the "location keys" that reports,
    access sets and barrier tables key on; interning them once per
    worker makes every later comparison a pointer check and dedups the
    copies a pickled result would otherwise carry.
    """
    for name in list(module.globals):
        sys.intern(name)
    for name in list(module.functions):
        sys.intern(name)


def seed_worker(seeds):
    """Pool initializer: pre-compile ``(name, source, is_ir)`` triples."""
    for name, source, is_ir in seeds:
        key = _source_key(source, is_ir)
        if key not in _SEEDED:
            module = _compile(source, name, is_ir)
            _intern_location_keys(module)
            _SEEDED[key] = module


def cached_module(source, name, is_ir=False):
    """A private module for ``source``: cloned from this worker's cache.

    Misses compile (or parse) and memoize; hits — seeded or memoized —
    return ``Module.clone()`` so callers may mutate freely.
    """
    key = _source_key(source, is_ir)
    master = _SEEDED.get(key)
    if master is None:
        master = _MEMO.get(key)
    if master is None:
        master = _compile(source, name, is_ir)
        _intern_location_keys(master)
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        _MEMO[key] = master
    return master.clone()


def timed_call(worker, task):
    """Run one task, tagging the result with (pid, busy seconds)."""
    started = time.perf_counter()
    result = worker(task)
    return (os.getpid(), time.perf_counter() - started, result)


# -- the pool ---------------------------------------------------------------


class WorkerPool:
    """A persistent process pool with per-worker accounting."""

    def __init__(self, jobs, seeds=()):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork (e.g. Windows)
            context = multiprocessing.get_context("spawn")
        self.jobs = jobs
        self._pool = context.Pool(
            processes=jobs, initializer=seed_worker,
            initargs=(tuple(seeds),),
        )
        #: pid -> {"tasks": int, "busy_seconds": float}
        self.worker_stats = {}
        self.batches = 0

    def map(self, worker, tasks, chunksize=None):
        """Run ``tasks`` through ``worker``; results keep input order.

        ``chunksize=None`` shards the batch into ~4 chunks per worker —
        large enough to amortize IPC, small enough that one slow shard
        cannot strand a quarter of the batch.  Lumpy batches (a
        mariadb-sized port among litmus rows) should pass
        ``chunksize=1`` explicitly.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if chunksize is None:
            chunksize = max(1, len(tasks) // (self.jobs * 4))
        rows = self._pool.map(
            partial(timed_call, worker), tasks, chunksize=chunksize
        )
        self.batches += 1
        results = []
        for pid, busy, result in rows:
            stats = self.worker_stats.setdefault(
                pid, {"tasks": 0, "busy_seconds": 0.0}
            )
            stats["tasks"] += 1
            stats["busy_seconds"] += busy
            results.append(result)
        return results

    def close(self, terminate=False):
        """Shut the pool down; ``terminate=True`` skips draining."""
        if terminate:
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()


# -- persistent registry ----------------------------------------------------

_POOLS = {}


def get_pool(jobs, seeds=()):
    """The process-wide pool for ``jobs`` workers, created on first use.

    ``seeds`` only takes effect when this call creates the pool; later
    callers share the existing workers (their own sources still get
    memoized on first use via :func:`cached_module`).
    """
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = _POOLS[jobs] = WorkerPool(jobs, seeds=seeds)
    return pool


def pool_stats():
    """{jobs: {"batches": n, "workers": worker_stats}} for live pools."""
    return {
        jobs: {"batches": pool.batches, "workers": pool.worker_stats}
        for jobs, pool in _POOLS.items()
    }


def shutdown_pools(terminate=False):
    """Close every persistent pool.

    Registered with ``atexit`` for normal interpreter exit, but
    ``atexit`` does not fire on signal death — long-lived daemons
    (:mod:`repro.serve`) call this explicitly from their SIGTERM path.
    ``terminate=True`` kills workers without draining in-flight tasks
    (the non-graceful shutdown).  Idempotent.
    """
    for pool in _POOLS.values():
        try:
            pool.close(terminate=terminate)
        except Exception:  # pragma: no cover - teardown best-effort
            pass
    _POOLS.clear()


atexit.register(shutdown_pools)
