"""Lock-protection pruning of over-atomization (``prune_protected``).

AtoMig deliberately over-approximates (§3.5): volatile promotion and
sticky-buddy alias exploration mark every type-compatible access, so
consistently lock-protected plain accesses get promoted to SC atomics —
pure overhead.  By the reduction argument for well-locked programs,
accesses that hold a common lock at every concurrent occurrence are
race-free under *any* memory model; this stage exempts exactly those
from atomization.

Never pruned, regardless of what the linter says:

- lock-word accesses themselves (class ``lock``);
- spin and optimistic controls (the WMM repair depends on them);
- source-level C11 atomics (``annotation_atomic``): the programmer
  asked for atomicity, only its *order* was AtoMig's doing;
- RMW instructions (atomic by construction, nothing to demote);
- accesses proven protected only by the name-pair heuristic.
"""

from repro.analysis.races import classify_module
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder

#: Provenance marks that veto pruning.
_VETO_MARKS = frozenset(
    ("spin_control", "optimistic_control", "annotation_atomic")
)


def prune_protected_accesses(module, candidates, race_report=None, cache=None):
    """Demote protected ``candidates`` back to plain accesses.

    ``candidates`` is the set of marked instructions about to be
    atomized.  Returns the pruned subset; each pruned access gets a
    ``pruned_protected`` provenance mark and its order reset to plain.
    The race report used for the decision is stored in
    ``module.metadata["lint_report"]`` for downstream reporting.
    """
    report = race_report or classify_module(module, cache=cache)
    module.metadata["lint_report"] = report
    protected = report.protected_instructions(structural_only=True)

    pruned = set()
    for instr in candidates:
        if instr not in protected:
            continue
        if not isinstance(instr, (ins.Load, ins.Store)):
            continue
        if instr.marks & _VETO_MARKS:
            continue
        instr.order = MemoryOrder.NOT_ATOMIC
        instr.marks.add("pruned_protected")
        pruned.add(instr)
    return pruned


def prune_thread_local_accesses(module, candidates, cache):
    """Demote ``candidates`` whose memory is provably thread-local.

    The points-to counterpart of :func:`prune_protected_accesses`: a
    sticky buddy acquired through type-based matching (same struct
    field, same global array) may target an object no other thread can
    ever reach — a stack snapshot, a private accumulator.  The
    thread-escape analysis proves it, so the SC promotion is dropped.
    The same veto list applies: spin/optimistic controls and
    source-level atomics are never demoted, and RMWs have nothing to
    demote.
    """
    escape = cache.thread_escape()
    pruned = set()
    for instr in candidates:
        if not isinstance(instr, (ins.Load, ins.Store)):
            continue
        if instr.marks & _VETO_MARKS:
            continue
        if not escape.pointer_is_thread_local(instr.accessed_pointer()):
            continue
        instr.order = MemoryOrder.NOT_ATOMIC
        instr.marks.add("pruned_thread_local")
        pruned.add(instr)
    return pruned
