"""Lock-protection pruning of over-atomization (``prune_protected``).

AtoMig deliberately over-approximates (§3.5): volatile promotion and
sticky-buddy alias exploration mark every type-compatible access, so
consistently lock-protected plain accesses get promoted to SC atomics —
pure overhead.  By the reduction argument for well-locked programs,
accesses that hold a common lock at every concurrent occurrence are
race-free under *any* memory model; this stage exempts exactly those
from atomization.

Never pruned, regardless of what the linter says:

- lock-word accesses themselves (class ``lock``);
- spin and optimistic controls (the WMM repair depends on them);
- source-level C11 atomics (``annotation_atomic``): the programmer
  asked for atomicity, only its *order* was AtoMig's doing;
- RMW instructions (atomic by construction, nothing to demote);
- accesses proven protected only by the name-pair heuristic.
"""

from repro.analysis.races import classify_module
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder

#: Provenance marks that veto pruning.
_VETO_MARKS = frozenset(
    ("spin_control", "optimistic_control", "annotation_atomic")
)


def prune_protected_accesses(module, candidates, race_report=None):
    """Demote protected ``candidates`` back to plain accesses.

    ``candidates`` is the set of marked instructions about to be
    atomized.  Returns the pruned subset; each pruned access gets a
    ``pruned_protected`` provenance mark and its order reset to plain.
    The race report used for the decision is stored in
    ``module.metadata["lint_report"]`` for downstream reporting.
    """
    report = race_report or classify_module(module)
    module.metadata["lint_report"] = report
    protected = report.protected_instructions(structural_only=True)

    pruned = set()
    for instr in candidates:
        if instr not in protected:
            continue
        if not isinstance(instr, (ins.Load, ins.Store)):
            continue
        if instr.marks & _VETO_MARKS:
            continue
        instr.order = MemoryOrder.NOT_ATOMIC
        instr.marks.add("pruned_protected")
        pruned.add(instr)
    return pruned
