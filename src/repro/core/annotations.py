"""Explicit-annotation analysis (§3.2).

Three annotation kinds hint at shared-memory synchronization:

1. C11 atomics — already atomic, but TSO-era code habitually uses
   insufficient memory orders, so every atomic order is raised to SC;
2. ``volatile`` — suppresses compiler optimizations but gives no
   hardware ordering; all volatile accesses become SC atomics;
3. x86 inline assembly — already mapped to portable fences by the
   frontend pass (:mod:`repro.lower.asm_map`), so it arrives here as
   marked ``fence`` instructions.

The pass returns the set of location keys it touched so alias
exploration can propagate "once atomic, always atomic" to their buddies.

The pass is per-function by construction (it only reads and mutates one
function's instructions at a time), so with ``jobs > 1`` functions are
analyzed by a thread pool and the per-function partial results merged
in deterministic module order.
"""

from repro.analysis.nonlocal_ import NonLocalInfo
from repro.core.funcjobs import map_functions
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import GlobalVar


class AnnotationResult:
    """Outcome of the explicit-annotation pass."""

    def __init__(self):
        #: Memory-access instructions strengthened or confirmed atomic.
        self.marked_instructions = set()
        #: Location keys of those accesses (seed for alias exploration).
        self.location_keys = set()
        #: Number of accesses whose order was changed.
        self.conversions = 0


def analyze_annotations(module, blacklist=(), cache=None, jobs=1):
    """Run the explicit-annotation pass on ``module`` in place."""
    blacklist = set(blacklist)

    def worker(function):
        info = (cache.nonlocal_info(function) if cache is not None
                else NonLocalInfo(function))
        partial = AnnotationResult()
        _analyze_function(function, info, blacklist, partial)
        return partial

    result = AnnotationResult()
    intern = cache.intern if cache is not None else (lambda key: key)
    for partial in map_functions(module, worker, jobs=jobs):
        result.marked_instructions |= partial.marked_instructions
        result.location_keys.update(
            intern(key) for key in partial.location_keys
        )
        result.conversions += partial.conversions
    return result


def _analyze_function(function, info, blacklist, result):
    for instr in function.instructions():
        if isinstance(instr, (ins.Load, ins.Store)):
            if instr.order.is_atomic:
                _mark(instr, info, result, "annotation_atomic")
            elif instr.volatile and not _blacklisted(instr, blacklist):
                _mark(instr, info, result, "annotation_volatile")
        elif isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
            # RMW operations are atomic by construction; raise to SC.
            _mark(instr, info, result, "annotation_atomic")


def _blacklisted(instr, blacklist):
    """True for accesses to blacklisted volatiles (devices, signals)."""
    if not blacklist:
        return False
    pointer = instr.accessed_pointer()
    from repro.analysis.nonlocal_ import pointer_root

    root = pointer_root(pointer)
    return isinstance(root, GlobalVar) and root.name in blacklist


def _mark(instr, info, result, kind):
    if instr.order is not MemoryOrder.SEQ_CST:
        instr.order = MemoryOrder.SEQ_CST
        result.conversions += 1
    # ``annotation`` is the public provenance mark; the ``kind`` sub-mark
    # distinguishes volatile promotions (prunable when lock-protected)
    # from source-level atomics (never prunable).
    instr.marks.add("annotation")
    instr.marks.add(kind)
    result.marked_instructions.add(instr)
    key = info.location_key(instr.accessed_pointer())
    if key is not None:
        result.location_keys.add(key)
