"""Alias exploration: sticky buddies (§3.4).

For every marked access we find all other accesses in the module to the
same memory location and mark them too ("once atomic, always atomic").
Globals match by name; pointer-based struct accesses match by type and
field offset via the ``gep`` signature — the scalable, type-based scheme
the paper chooses over inter-procedural alias analysis.

``alias_mode="points_to"`` swaps in a :class:`PointsToKeyProvider`: the
type-based keys stay authoritative where they exist, and pointers that
are keyless under the type scheme (plain ``int*`` arguments, loaded
pointers) are keyed by their points-to equivalence class instead — so
a store through a pointer parameter that provably targets ``@flag``
joins ``@flag``'s buddy group rather than silently dropping out of
propagation.

The module-wide access map is built once; lookups are constant time, and
already-stickied accesses are skipped, exactly as §3.5 describes.
"""

from repro.analysis.cache import AnalysisCache


class AccessIndex:
    """Module-wide map from location key to memory-access instructions."""

    def __init__(self, module, cache=None, mode="type_based"):
        self.module = module
        self.cache = cache if cache is not None else AnalysisCache(module)
        self.mode = mode
        self.provider = self.cache.key_provider(mode)
        self.by_key = {}
        #: instr -> (key, origin) for every keyed access (provenance).
        self.key_of = {}
        #: instr -> (function, block-label, ordinal) for every memory
        #: access — a stable identity for deterministic provenance
        #: ordering (``repr(instr)`` is id()-based for unnamed values).
        self.position_of = {}
        self._build()

    def _build(self):
        intern = self.cache.intern
        for function in self.module.functions.values():
            for block in function.blocks:
                for ordinal, instr in enumerate(block.instructions):
                    if not instr.is_memory_access():
                        continue
                    self.position_of[instr] = (
                        function.name, block.label, ordinal
                    )
                    key, origin = self.provider.key_with_origin(
                        function, instr.accessed_pointer()
                    )
                    if key is not None:
                        key = intern(key)
                        self.by_key.setdefault(key, []).append(instr)
                        self.key_of[instr] = (key, origin)

    def accesses_for(self, key):
        return self.by_key.get(key, ())


def explore_aliases(module, seed_keys, index=None, *, cache=None,
                    mode="type_based", seed_instructions=()):
    """Mark every access matching ``seed_keys`` as a sticky buddy.

    ``seed_instructions`` are already-marked accesses whose own keys
    should join the seed set — under the type-based provider a keyless
    marked access contributes nothing, but the points-to provider can
    often key it, pulling its true aliases into the buddy closure.

    Returns ``(marked_instructions, index)``; the index is reusable
    across calls on the same module.
    """
    index = index or AccessIndex(module, cache=cache, mode=mode)
    keys = set(seed_keys)
    for instr in seed_instructions:
        keyed = index.key_of.get(instr)
        if keyed is not None:
            keys.add(keyed[0])
    marked = set()
    for key in keys:
        for instr in index.accesses_for(key):
            if "sticky" in instr.marks:
                continue  # once stickied, always stickied
            instr.marks.add("sticky")
            marked.add(instr)
    return marked, index
