"""Alias exploration: sticky buddies (§3.4).

For every marked access we find all other accesses in the module to the
same memory location and mark them too ("once atomic, always atomic").
Globals match by name; pointer-based struct accesses match by type and
field offset via the ``gep`` signature — the scalable, type-based scheme
the paper chooses over inter-procedural alias analysis.

The module-wide access map is built once; lookups are constant time, and
already-stickied accesses are skipped, exactly as §3.5 describes.
"""

from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins


class AccessIndex:
    """Module-wide map from location key to memory-access instructions."""

    def __init__(self, module):
        self.module = module
        self.by_key = {}
        self._build()

    def _build(self):
        for function in self.module.functions.values():
            info = NonLocalInfo(function)
            for instr in function.instructions():
                if not instr.is_memory_access():
                    continue
                key = info.location_key(instr.accessed_pointer())
                if key is not None:
                    self.by_key.setdefault(key, []).append(instr)

    def accesses_for(self, key):
        return self.by_key.get(key, ())


def explore_aliases(module, seed_keys, index=None):
    """Mark every access matching ``seed_keys`` as a sticky buddy.

    Returns ``(marked_instructions, index)``; the index is reusable
    across calls on the same module.
    """
    index = index or AccessIndex(module)
    marked = set()
    for key in seed_keys:
        for instr in index.accesses_for(key):
            if "sticky" in instr.marks:
                continue  # once stickied, always stickied
            instr.marks.add("sticky")
            marked.add(instr)
    return marked, index
