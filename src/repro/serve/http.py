"""Stdlib-only HTTP API for the job daemon (no new dependencies).

Routes, all JSON unless noted:

- ``POST /jobs`` — submit a job.  Body: ``{"kind": "port"|"check"|
  "optimize"|"repair", "modules": [{"name", "source", "is_ir"?}],
  "level"?, "model"?/"models"?, "options"?, "config"?, "priority"?}``.
  A single module may also be given inline as top-level ``name``/
  ``source``.  Returns ``201`` with the job record (sans result);
  an identical earlier submission returns instantly with
  ``cache_hit: true``.
- ``GET /jobs`` — job summaries, oldest first.
- ``GET /jobs/<id>`` — one record (sans result; ``has_result`` says
  whether ``/result`` will answer).
- ``GET /jobs/<id>/result`` — ``200`` with the full record including
  ``result`` once terminal, ``202`` with the pending record before.
- ``GET /jobs/<id>/events`` — NDJSON progress stream wired off the
  pipeline's stage boundaries; follows until the job is terminal
  (``?follow=0`` dumps the buffer and closes).
- ``DELETE /jobs/<id>`` — cancel a queued job / delete a terminal one.
- ``GET /healthz`` — liveness + state histogram.
- ``GET /stats`` — queue depth, cache-hit rate, worker busy time.
"""

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

MAX_BODY_BYTES = 32 * 1024 * 1024


class ServeHandler(BaseHTTPRequestHandler):
    """One request; the daemon hangs off the server instance."""

    server_version = "atomig-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self):
        return self.server.job_daemon

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            sys.stderr.write(
                f"serve: {self.address_string()} {format % args}\n"
            )

    # -- verbs -------------------------------------------------------------

    def do_POST(self):  # noqa: N802 - stdlib casing
        path = urlparse(self.path).path.rstrip("/")
        if path != "/jobs":
            return self._json(404, {"error": f"no such route {path!r}"})
        try:
            body = self._read_body()
            record = self.daemon.submit(
                body["kind"], body["payload"],
                priority=body.get("priority", 0),
            )
        except (ValueError, KeyError) as exc:
            return self._json(400, {"error": str(exc)})
        except RuntimeError as exc:  # shutting down
            return self._json(503, {"error": str(exc)})
        return self._json(201, _public(record))

    def do_GET(self):  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if path == "/healthz":
            stats = self.daemon.stats()
            return self._json(200, {
                "ok": True,
                "draining": stats["draining"],
                "states": stats["states"],
            })
        if path == "/stats":
            return self._json(200, self.daemon.stats())
        if path == "/jobs":
            return self._json(200, {"jobs": self.daemon.list_jobs()})
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            record = self.daemon.get(job_id)
            if record is None:
                return self._json(404, {"error": f"no job {job_id!r}"})
            if len(parts) == 2:
                return self._json(200, _public(record))
            if parts[2] == "result":
                from repro.serve.store import TERMINAL_STATES

                status = 200 if record["state"] in TERMINAL_STATES else 202
                payload = _public(record)
                if status == 200:
                    payload["result"] = record.get("result")
                return self._json(status, payload)
            if parts[2] == "events":
                query = parse_qs(parsed.query)
                follow = query.get("follow", ["1"])[0] not in ("0", "false")
                return self._stream_events(job_id, follow)
        return self._json(404, {"error": f"no such route {path!r}"})

    def do_DELETE(self):  # noqa: N802 - stdlib casing
        path = urlparse(self.path).path.rstrip("/")
        parts = path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "jobs":
            return self._json(404, {"error": f"no such route {path!r}"})
        job_id = parts[1]
        record = self.daemon.get(job_id)
        if record is None:
            return self._json(404, {"error": f"no job {job_id!r}"})
        if record["state"] == "queued":
            cancelled = self.daemon.cancel(job_id)
            return self._json(200, _public(cancelled or record))
        if record["state"] == "running":
            return self._json(409, {
                "error": "job is running and cannot be interrupted",
                "id": job_id, "state": "running",
            })
        self.daemon.delete(job_id)
        return self._json(200, {"id": job_id, "deleted": True})

    # -- plumbing ----------------------------------------------------------

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        if length > MAX_BODY_BYTES:
            raise ValueError("request body too large")
        try:
            body = json.loads(self.rfile.read(length))
        except ValueError:
            raise ValueError("request body is not valid JSON")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        kind = body.get("kind")
        modules = body.get("modules")
        if modules is None and body.get("source"):
            modules = [{
                "name": body.get("name") or "module",
                "source": body["source"],
                "is_ir": bool(body.get("is_ir")),
            }]
        payload = {"modules": modules or []}
        for key in ("level", "model", "models", "options", "config"):
            if key in body:
                payload[key] = body[key]
        return {
            "kind": kind,
            "payload": payload,
            "priority": body.get("priority", 0),
        }

    def _json(self, status, payload):
        blob = json.dumps(payload, default=repr).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _stream_events(self, job_id, follow):
        """NDJSON event stream; closes when the job is terminal."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # Stream length is unknown: close the connection to end it.
        self.send_header("Connection", "close")
        self.end_headers()
        index = 0
        while True:
            events, terminal = self.daemon.events_since(job_id, index)
            if events is None:
                break
            for event in events:
                self.wfile.write(
                    json.dumps(event, default=repr).encode() + b"\n"
                )
            index += len(events)
            self.wfile.flush()
            if terminal or not follow:
                break
            self.daemon.wait_events(timeout=0.5)
        self.close_connection = True


def _public(record):
    """A record as served over HTTP: result elided, presence flagged."""
    public = {
        key: value for key, value in record.items() if key != "result"
    }
    public["has_result"] = record.get("result") is not None
    return public


def make_server(daemon, host="127.0.0.1", port=0, verbose=False):
    """A :class:`ThreadingHTTPServer` bound to ``daemon``.

    ``port=0`` binds an ephemeral port; read the final address off
    ``server.server_address``.  The caller owns the accept loop
    (``serve_forever``) and shutdown ordering.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.job_daemon = daemon
    server.verbose = verbose
    server.daemon_threads = True
    return server
