"""Durable on-disk job store: one JSON record per job, atomic writes.

The store is the daemon's source of truth.  Every state transition is
persisted with the same tempfile-and-rename discipline as
:mod:`repro.modcache`, so a job record is always either the previous
complete version or the new complete version — never a torn write —
and a daemon killed at any point can :meth:`JobStore.recover` on the
next start: ``running`` jobs (their worker died with the process) go
back to ``queued`` and are re-executed from the stored payload.

States move ``queued → running → done/failed/cancelled``; the three
right-hand states are terminal.  Records are plain JSON dicts (see
DESIGN.md §6i for the schema) so they can be served over HTTP verbatim.

``ATOMIG_JOB_DIR`` overrides the default ``~/.cache/atomig/jobs``
directory.
"""

import json
import os
import tempfile
import time
import uuid

#: Legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Version of the on-disk record format; bump on incompatible changes
#: (old records are still loaded — unknown fields are preserved).
STORE_SCHEMA_VERSION = 1

_ENV_DIR = "ATOMIG_JOB_DIR"


def default_job_dir():
    """Job directory: ``ATOMIG_JOB_DIR`` or ``~/.cache/atomig/jobs``."""
    configured = os.environ.get(_ENV_DIR, "").strip()
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "atomig", "jobs")


def new_job_id():
    """Unique, time-sortable job id (creation-order ties in the queue)."""
    return f"{int(time.time() * 1000):013x}-{uuid.uuid4().hex[:8]}"


class JobStore:
    """Directory of ``<job_id>.json`` records with atomic persistence."""

    def __init__(self, directory=None):
        self.directory = directory or default_job_dir()
        os.makedirs(self.directory, exist_ok=True)

    # -- record lifecycle --------------------------------------------------

    def create(self, kind, payload, priority=0, dedup_key=None):
        """Build and persist a fresh ``queued`` record."""
        record = {
            "schema_version": STORE_SCHEMA_VERSION,
            "id": new_job_id(),
            "kind": kind,
            "state": "queued",
            "priority": int(priority),
            "dedup_key": dedup_key,
            "created": time.time(),
            "started": None,
            "finished": None,
            "seconds": None,
            "cache_hit": False,
            "cached_from": None,
            "error": None,
            "payload": payload,
            "events": [],
            "result": None,
        }
        self.save(record)
        return record

    def save(self, record):
        """Persist ``record`` atomically (tempfile + rename)."""
        blob = json.dumps(record, default=_jsonable).encode()
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(blob)
            os.replace(temp_path, self._path(record["id"]))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def load(self, job_id):
        """The record for ``job_id``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(job_id), "rb") as handle:
                return json.loads(handle.read())
        except (OSError, ValueError):
            return None

    def delete(self, job_id):
        """Remove the record; True when a file was deleted."""
        try:
            os.unlink(self._path(job_id))
        except OSError:
            return False
        return True

    def list_jobs(self):
        """Every loadable record, oldest first (corrupt files skipped)."""
        records = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            record = self.load(name[:-len(".json")])
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.get("created") or 0, r.get("id", "")))
        return records

    # -- daemon restart support --------------------------------------------

    def recover(self):
        """Re-queue jobs orphaned by a dead daemon.

        ``running`` records belong to a worker that no longer exists —
        the state is only ever on disk while a live worker holds the
        job — so they go back to ``queued`` with a note event.  Returns
        ``(requeued_ids, queued_records)`` where the second element is
        every record now waiting to run, oldest first.
        """
        requeued = []
        queued = []
        for record in self.list_jobs():
            if record["state"] == "running":
                record["state"] = "queued"
                record["started"] = None
                record.setdefault("events", []).append({
                    "ts": round(time.time(), 3),
                    "type": "requeued",
                    "reason": "daemon restarted while the job was running",
                })
                self.save(record)
                requeued.append(record["id"])
            if record["state"] == "queued":
                queued.append(record)
        return requeued, queued

    def dedup_index(self):
        """``{dedup_key: job_id}`` over completed jobs (newest wins).

        Only ``done`` jobs that carry a result participate — a failed
        or cancelled job must not satisfy a later identical submission.
        """
        index = {}
        for record in self.list_jobs():  # oldest first: newest wins below
            if (record["state"] == "done" and record.get("dedup_key")
                    and record.get("result") is not None):
                index[record["dedup_key"]] = record["id"]
        return index

    def counts(self):
        """``{state: number_of_jobs}`` histogram over the store."""
        histogram = {state: 0 for state in JOB_STATES}
        for record in self.list_jobs():
            histogram[record["state"]] = histogram.get(record["state"], 0) + 1
        return histogram

    def _path(self, job_id):
        return os.path.join(self.directory, f"{job_id}.json")


def _jsonable(value):
    """JSON fallback: tuples/sets become lists, everything else reprs."""
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    return repr(value)
