"""Priority job queue + daemon: execute stored jobs on worker threads.

A job is a ``(kind, payload)`` pair persisted by
:class:`repro.serve.store.JobStore`.  Kinds map onto the existing batch
harnesses — ``port`` through :mod:`repro.core.parallel`, ``check``
through :mod:`repro.mc.parallel`, ``optimize`` through
:mod:`repro.opt.parallel`, ``repair`` through
:func:`repro.analysis.repair.repair_module` — so one daemon process
serves every report type the one-shot CLI can produce.  Multi-module
("tree") jobs fan out across the persistent process pools of
:mod:`repro.core.workers` when the daemon is configured with
``fanout > 1``.

Dedup is content-addressed: :func:`job_dedup_key` hashes the blake2b
modcache digest of every module's source together with a canonical
JSON fingerprint of everything else in the payload (kind, level,
model, options, config).  Re-submitting an unchanged source+config is
answered instantly from the stored result of the earlier job — zero
porting seconds, ``cache_hit: true`` — never a re-port.

Progress streams off the pipeline's stage boundaries: serial jobs run
under :func:`repro.core.profile.stage_observer`, so every
``stage_start``/``stage_end`` of :func:`repro.core.pipeline.run_porting`
becomes an NDJSON event on ``GET /jobs/<id>/events``.
"""

import hashlib
import heapq
import itertools
import json
import threading
import time
import traceback

from repro.serve.store import TERMINAL_STATES, JobStore, _jsonable

#: Supported job kinds (HTTP 400 for anything else).
JOB_KINDS = ("port", "check", "optimize", "repair")

#: Events kept per job before truncation (streaming clients see all of
#: them live; the record keeps a bounded replay buffer).
MAX_EVENTS = 512


# -- dedup -------------------------------------------------------------------


def job_dedup_key(kind, payload):
    """Content-addressed key for one job: sources + config fingerprint.

    Module sources enter through :func:`repro.modcache.source_digest`
    (which already covers the cache format version and the running
    Python), everything else through canonical JSON, so two submissions
    collide exactly when the service would do identical work.
    """
    from repro import modcache

    fingerprint = {
        key: payload[key]
        for key in sorted(payload)
        if key != "modules"
    }
    hasher = hashlib.blake2b(digest_size=20)
    hasher.update(f"serve1|{kind}|".encode())
    hasher.update(
        json.dumps(fingerprint, sort_keys=True, default=str).encode()
    )
    for module in payload.get("modules", ()):
        digest = modcache.source_digest(
            module.get("source", ""), module.get("name", "module")
        )
        tag = "ir" if module.get("is_ir") else "c"
        hasher.update(f"|{tag}:{digest}".encode())
    return hasher.hexdigest()


# -- payload execution -------------------------------------------------------


def _build_config(payload):
    """AtoMigConfig from the payload's ``config`` dict (None if empty)."""
    from dataclasses import fields

    from repro.core.config import AtoMigConfig

    knobs = payload.get("config") or {}
    if not knobs:
        return None
    legal = {field.name for field in fields(AtoMigConfig)}
    unknown = sorted(set(knobs) - legal)
    if unknown:
        raise ValueError(f"unknown config knobs: {', '.join(unknown)}")
    config = AtoMigConfig(**knobs)
    # JSON turns the tuple default into a list; normalize back.
    config.volatile_blacklist = tuple(config.volatile_blacklist or ())
    return config


def _modules(payload):
    modules = payload.get("modules") or ()
    if not modules:
        raise ValueError("payload has no modules")
    for module in modules:
        if not module.get("source"):
            raise ValueError("module without source text")
    return [
        (module.get("name") or f"module{i}", module["source"],
         bool(module.get("is_ir")))
        for i, module in enumerate(modules)
    ]


def check_to_dict(result):
    """JSON-ready view of a :class:`repro.mc.explorer.CheckResult`."""
    payload = {
        "model": result.model,
        "ok": result.ok,
        "outcome": result.outcome,
        "violation": result.violation,
        "deadlock": result.deadlock,
        "truncated": result.truncated,
        "states_explored": result.states_explored,
        "verdict_source": getattr(result, "verdict_source", "exploration"),
        "notes": list(result.notes),
    }
    if result.stats is not None:
        payload["stats"] = result.stats.to_json()
    return payload


def _pick(options, allowed):
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(f"unknown options: {', '.join(unknown)}")
    return {key: options[key] for key in options}


def _emit_noop(type_, **fields):
    pass


def execute_payload(kind, payload, fanout=1, emit=None):
    """Run one job's work; returns the JSON-ready result dict.

    Raises on malformed payloads or pipeline errors — the daemon turns
    exceptions into ``failed`` records.  ``emit(type, **fields)``
    receives progress events; serial single-module jobs additionally
    stream the porting pipeline's per-stage boundaries through it.
    ``fanout > 1`` fans multi-module jobs across the persistent process
    pools (stage events then stay inside the workers).
    """
    emit = emit or _emit_noop
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r}")
    modules = _modules(payload)
    config = _build_config(payload)
    level = payload.get("level") or "atomig"
    options = dict(payload.get("options") or {})
    emit("job_start", kind=kind, modules=len(modules), level=level)

    if kind == "port":
        return _execute_port(modules, level, config, options, fanout, emit)
    if kind == "check":
        models = list(payload.get("models") or [payload.get("model", "wmm")])
        return _execute_check(
            modules, level, config, models, options, fanout, emit
        )
    if kind == "optimize":
        model = payload.get("model", "wmm")
        return _execute_optimize(
            modules, level, config, model, options, fanout, emit
        )
    model = payload.get("model", "wmm")
    return _execute_repair(modules, level, config, model, options, emit)


def _observed(emit, name):
    """Stage-observer context forwarding pipeline events for ``name``."""
    from repro.core.profile import stage_observer

    def forward(event):
        type_ = event.pop("type")
        # Pipeline events like ``port_done`` already carry a module
        # field; only tag the bare per-stage ones.
        event.setdefault("module", name)
        emit(type_, **event)

    return stage_observer(forward)


def _execute_port(modules, level, config, options, fanout, emit):
    from repro.core.parallel import PortTask, run_port_task, run_port_tasks

    options = _pick(options, ("emit_ir",))
    if any(is_ir for _name, _source, is_ir in modules):
        raise ValueError("port jobs take Mini-C sources, not IR text")
    tasks = [
        PortTask(name=name, source=source, level=level, config=config,
                 emit_ir=bool(options.get("emit_ir")))
        for name, source, _is_ir in modules
    ]
    if len(tasks) > 1 and fanout > 1:
        emit("fanout", jobs=fanout, tasks=len(tasks))
        outcomes = run_port_tasks(tasks, jobs=fanout)
    else:
        outcomes = []
        for task in tasks:
            with _observed(emit, task.name):
                outcomes.append(run_port_task(task))
    rows = []
    for outcome in outcomes:
        rows.append({
            "name": outcome.name,
            "level": outcome.level,
            "report": outcome.report.to_dict() if outcome.report else None,
            "barriers": list(outcome.barriers),
            "build_seconds": outcome.build_seconds,
            "port_seconds": outcome.port_seconds,
            "ir": outcome.ir_text,
        })
        emit("module_done", module=outcome.name,
             port_seconds=outcome.port_seconds)
    return {"kind": "port", "modules": rows}


def _execute_check(modules, level, config, models, options, fanout, emit):
    from repro.mc.parallel import CheckTask, run_task, run_tasks

    options = _pick(options, ("max_steps", "max_states", "por", "macro",
                              "engine", "robustness", "entry"))
    options.setdefault("robustness", True)
    task_level = None if level in (None, "original") else level
    tasks = [
        CheckTask(name=name, source=source, model=model, level=task_level,
                  config=config, is_ir=is_ir, **options)
        for name, source, is_ir in modules
        for model in models
    ]
    if len(tasks) > 1 and fanout > 1:
        emit("fanout", jobs=fanout, tasks=len(tasks))
        results = run_tasks(tasks, jobs=fanout)
    else:
        results = []
        for task in tasks:
            with _observed(emit, task.name):
                results.append(run_task(task))
    rows = []
    for task, result in zip(tasks, results):
        row = {"name": task.name, **check_to_dict(result)}
        rows.append(row)
        emit("module_done", module=task.name, model=task.model,
             outcome=row["outcome"])
    return {"kind": "check", "checks": rows}


def _execute_optimize(modules, level, config, model, options, fanout, emit):
    from repro.opt.parallel import (
        OptimizeTask,
        run_optimize_task,
        run_optimize_tasks,
    )

    options = _pick(options, ("max_steps", "max_states", "require_marks",
                              "robustness", "engine", "repair_seed", "arch",
                              "entry"))
    task_level = None if level in (None, "original") else level
    tasks = [
        OptimizeTask(name=name, source=source, model=model, level=task_level,
                     config=config, is_ir=is_ir, **options)
        for name, source, is_ir in modules
    ]
    if len(tasks) > 1 and fanout > 1:
        emit("fanout", jobs=fanout, tasks=len(tasks))
        reports = run_optimize_tasks(tasks, jobs=fanout)
    else:
        reports = []
        for task in tasks:
            with _observed(emit, task.name):
                reports.append(run_optimize_task(task))
    rows = []
    for task, report in zip(tasks, reports):
        rows.append({"name": task.name, "report": report})
        emit("module_done", module=task.name,
             verdict_preserved=report.get("verdict_preserved"))
    return {"kind": "optimize", "modules": rows}


def _execute_repair(modules, level, config, model, options, emit):
    from repro.analysis.repair import repair_module
    from repro.api import port_module
    from repro.core.config import PortingLevel
    from repro.core.workers import cached_module

    options = _pick(options, ("arch", "verify", "max_steps", "max_states"))
    rows = []
    for name, source, is_ir in modules:
        module = cached_module(source, name, is_ir=is_ir)
        with _observed(emit, name):
            if level not in (None, "original"):
                module, _report = port_module(
                    module, PortingLevel(level), config=config
                )
            _repaired, report = repair_module(
                module, model=model, clone=False, **options
            )
        rows.append({"name": name, "report": report.to_dict()})
        emit("module_done", module=name,
             robust_after=report.robust_after)
    return {"kind": "repair", "modules": rows}


# -- the daemon --------------------------------------------------------------


class JobDaemon:
    """Worker threads draining a persistent priority queue of jobs.

    ``workers=0`` is accept-only mode: submissions are validated,
    deduped and persisted but nothing executes until a daemon with
    workers picks the store up (used by maintenance windows and the
    restart-resume tests).  ``fanout`` is the process-pool width
    multi-module jobs fan out with (1 = everything in the worker
    thread, where per-stage progress events are available).
    """

    def __init__(self, store=None, workers=None, fanout=1):
        import os

        self.store = store or JobStore()
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        self.workers = max(0, int(workers))
        self.fanout = max(1, int(fanout))
        self._cond = threading.Condition()
        self._heap = []  # (-priority, created, seq, job_id)
        self._seq = itertools.count()
        self._records = {}
        self._dedup = {}
        self._threads = []
        self._stop = threading.Event()
        self._started = False
        self.started_at = None
        self.counters = {
            "submitted": 0, "completed": 0, "failed": 0,
            "cancelled": 0, "cache_hits": 0, "requeued": 0,
        }
        #: thread name -> {"jobs": n, "busy_seconds": s}
        self.worker_stats = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Recover the store, enqueue waiting jobs, spawn workers."""
        requeued, queued = self.store.recover()
        self.counters["requeued"] += len(requeued)
        with self._cond:
            for record in self.store.list_jobs():
                self._records[record["id"]] = record
            self._dedup.update(self.store.dedup_index())
            for record in queued:
                self._push(self._records[record["id"]])
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"atomig-job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._started = True
        self.started_at = time.time()
        return requeued

    def shutdown(self, drain=True, timeout=None):
        """Stop the workers and the process pools.

        ``drain=True`` (the SIGTERM path) lets each worker finish the
        job it is currently running; jobs still queued stay ``queued``
        on disk and resume on the next start.  The persistent process
        pools of :mod:`repro.core.workers` are closed explicitly here —
        ``atexit`` does not fire on signal death, so a daemon must not
        rely on it.
        """
        from repro.core.workers import shutdown_pools

        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout if drain else 0.1)
        self._threads = []
        shutdown_pools(terminate=not drain)

    # -- submission and inspection ----------------------------------------

    def submit(self, kind, payload, priority=0):
        """Validate, dedup, persist and enqueue one job.

        Returns the job record.  An identical earlier ``done`` job
        (same :func:`job_dedup_key`) answers instantly: the new record
        is created already ``done`` with the stored result,
        ``cache_hit: true`` and zero seconds — no queue, no port.
        """
        if self._stop.is_set():
            raise RuntimeError("daemon is shutting down")
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r} (expected one of "
                f"{', '.join(JOB_KINDS)})"
            )
        _modules(payload)  # validate early: HTTP 400, not a failed job
        _build_config(payload)
        key = job_dedup_key(kind, payload)
        with self._cond:
            cached = self._records.get(self._dedup.get(key))
            if (cached is not None and cached["state"] == "done"
                    and cached.get("result") is not None):
                record = self.store.create(
                    kind, payload, priority=priority, dedup_key=key
                )
                now = time.time()
                record.update(
                    state="done", cache_hit=True,
                    cached_from=cached["id"], seconds=0.0,
                    started=now, finished=now,
                    result=json.loads(json.dumps(
                        cached["result"], default=repr
                    )),
                )
                record["events"].append({
                    "ts": round(now, 3), "type": "cache_hit",
                    "cached_from": cached["id"],
                })
                self.store.save(record)
                self._records[record["id"]] = record
                self.counters["submitted"] += 1
                self.counters["cache_hits"] += 1
                self._cond.notify_all()
                return dict(record)
            record = self.store.create(
                kind, payload, priority=priority, dedup_key=key
            )
            self._records[record["id"]] = record
            self._push(record)
            self.counters["submitted"] += 1
            self._cond.notify_all()
        return dict(record)

    def get(self, job_id):
        """A snapshot of the record, or ``None``."""
        with self._cond:
            record = self._records.get(job_id)
            if record is None:
                record = self.store.load(job_id)
                if record is not None:
                    self._records[job_id] = record
            return dict(record) if record is not None else None

    def list_jobs(self):
        """Summaries of every known job, oldest first."""
        with self._cond:
            records = sorted(
                self._records.values(),
                key=lambda r: (r.get("created") or 0, r["id"]),
            )
            return [
                {key: record[key] for key in (
                    "id", "kind", "state", "priority", "created",
                    "finished", "seconds", "cache_hit", "error",
                )}
                for record in records
            ]

    def cancel(self, job_id):
        """Cancel a queued job; returns the updated record or ``None``.

        Running jobs cannot be interrupted (the worker owns them);
        terminal jobs are left as-is.  Callers distinguish the cases by
        the returned state.
        """
        with self._cond:
            record = self._records.get(job_id)
            if record is None or record["state"] != "queued":
                return dict(record) if record is not None else None
            record["state"] = "cancelled"
            record["finished"] = time.time()
            self._append_event(record, "state", state="cancelled")
            self.store.save(record)
            self.counters["cancelled"] += 1
            self._cond.notify_all()
            return dict(record)

    def delete(self, job_id):
        """Drop a terminal job's record entirely; False otherwise."""
        with self._cond:
            record = self._records.get(job_id) or self.store.load(job_id)
            if record is None or record["state"] not in TERMINAL_STATES:
                return False
            self._records.pop(job_id, None)
            if self._dedup.get(record.get("dedup_key")) == job_id:
                self._dedup.pop(record.get("dedup_key"), None)
            return self.store.delete(job_id)

    def wait(self, job_id, timeout=None):
        """Block until the job is terminal; returns the final record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    return None
                if record["state"] in TERMINAL_STATES:
                    return dict(record)
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return dict(record)
                self._cond.wait(timeout=remaining)

    def events_since(self, job_id, start=0):
        """``(events[start:], terminal)`` for the streaming endpoint."""
        with self._cond:
            record = self._records.get(job_id)
            if record is None:
                return None, True
            events = record.get("events") or []
            return (
                [dict(event) for event in events[start:]],
                record["state"] in TERMINAL_STATES,
            )

    def wait_events(self, timeout=0.5):
        """Park an events streamer until something changes."""
        with self._cond:
            self._cond.wait(timeout=timeout)

    def stats(self):
        """Queue depth, cache-hit rate, worker busy time (GET /stats)."""
        from repro.core.workers import pool_stats

        with self._cond:
            depth = sum(
                1 for *_rest, job_id in self._heap
                if self._records.get(job_id, {}).get("state") == "queued"
            )
            states = {}
            for record in self._records.values():
                states[record["state"]] = states.get(record["state"], 0) + 1
            submitted = self.counters["submitted"]
            hits = self.counters["cache_hits"]
            return {
                "queue_depth": depth,
                "states": states,
                "counters": dict(self.counters),
                "cache_hit_rate": (hits / submitted) if submitted else 0.0,
                "workers": self.workers,
                "fanout": self.fanout,
                "worker_stats": {
                    name: dict(stats)
                    for name, stats in self.worker_stats.items()
                },
                "pool_stats": pool_stats(),
                "uptime_seconds": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
                "draining": self._stop.is_set(),
            }

    # -- internals ---------------------------------------------------------

    def _push(self, record):
        heapq.heappush(self._heap, (
            -record.get("priority", 0), record.get("created") or 0,
            next(self._seq), record["id"],
        ))

    def _next_job(self):
        """Pop the highest-priority queued record (lock held by caller)."""
        while self._heap:
            *_rest, job_id = heapq.heappop(self._heap)
            record = self._records.get(job_id)
            if record is not None and record["state"] == "queued":
                return record
        return None

    def _worker_loop(self):
        name = threading.current_thread().name
        stats = self.worker_stats.setdefault(
            name, {"jobs": 0, "busy_seconds": 0.0}
        )
        while True:
            with self._cond:
                record = None
                while record is None:
                    if self._stop.is_set():
                        return
                    record = self._next_job()
                    if record is None:
                        self._cond.wait(timeout=0.5)
                record["state"] = "running"
                record["started"] = time.time()
                self._append_event(record, "state", state="running")
                self.store.save(record)
                self._cond.notify_all()
            started = time.perf_counter()
            self._execute(record)
            stats["jobs"] += 1
            stats["busy_seconds"] += time.perf_counter() - started

    def _execute(self, record):
        emit = lambda type_, **fields: self._append_event(  # noqa: E731
            record, type_, locked=False, **fields
        )
        try:
            result = execute_payload(
                record["kind"], record["payload"],
                fanout=self.fanout, emit=emit,
            )
            # Canonicalize to JSON-clean data (tuples -> lists) so the
            # in-memory record, the on-disk record and a cache-hit copy
            # are all bit-for-bit identical.
            result = json.loads(json.dumps(result, default=_jsonable))
            error = None
        except Exception:
            result = None
            error = traceback.format_exc(limit=8)
        with self._cond:
            now = time.time()
            record["finished"] = now
            record["seconds"] = now - (record["started"] or now)
            if error is None:
                record["state"] = "done"
                record["result"] = result
                self.counters["completed"] += 1
                if record.get("dedup_key"):
                    self._dedup[record["dedup_key"]] = record["id"]
            else:
                record["state"] = "failed"
                record["error"] = error.strip().splitlines()[-1]
                record.setdefault("events", []).append({
                    "ts": round(now, 3), "type": "traceback",
                    "text": error,
                })
                self.counters["failed"] += 1
            self._append_event(record, "state", state=record["state"])
            self.store.save(record)
            self._cond.notify_all()

    def _append_event(self, record, type_, locked=True, **fields):
        event = {"ts": round(time.time(), 3), "type": type_, **fields}
        if locked:
            self._do_append(record, event)
            return
        with self._cond:
            self._do_append(record, event)
            self._cond.notify_all()

    def _do_append(self, record, event):
        events = record.setdefault("events", [])
        if len(events) >= MAX_EVENTS:
            if events[-1].get("type") != "events_truncated":
                events.append({
                    "ts": event["ts"], "type": "events_truncated",
                })
            return
        events.append(event)
