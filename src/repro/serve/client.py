"""urllib client for the serve API (``atomig submit/status/result``).

Stdlib-only, mirroring the routes of :mod:`repro.serve.http`.  All
methods raise :class:`ServeError` on transport failures and non-2xx
responses (except the documented 202-pending answer of ``result``),
carrying the HTTP status so the CLI can map it onto its documented
exit codes.
"""

import json
import os
import time
import urllib.error
import urllib.request

DEFAULT_URL = "http://127.0.0.1:8337"
_ENV_URL = "ATOMIG_SERVE_URL"


def default_url():
    """Service URL: ``ATOMIG_SERVE_URL`` or ``http://127.0.0.1:8337``."""
    return os.environ.get(_ENV_URL, "").strip() or DEFAULT_URL


class ServeError(Exception):
    """Transport failure or error response from the service."""

    def __init__(self, message, status=None):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Thin JSON client over one service URL."""

    def __init__(self, url=None, timeout=60.0):
        self.url = (url or default_url()).rstrip("/")
        self.timeout = timeout

    # -- raw transport -----------------------------------------------------

    def request(self, method, path, body=None):
        """One JSON request; returns ``(status, payload)``.

        4xx/5xx responses that carry JSON are returned, not raised —
        callers decide what a 202 or 409 means; plumbing failures
        (connection refused, timeouts, non-JSON bodies) raise
        :class:`ServeError`.
        """
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                raise ServeError(
                    f"{method} {path}: HTTP {exc.code}", status=exc.code
                ) from exc
            return exc.code, payload
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ServeError(
                f"cannot reach {self.url}: {exc}", status=None
            ) from exc

    def _expect(self, method, path, body=None, ok=(200,)):
        status, payload = self.request(method, path, body=body)
        if status not in ok:
            raise ServeError(
                f"{method} {path}: HTTP {status}: "
                f"{payload.get('error', payload)}", status=status
            )
        return payload

    # -- API surface -------------------------------------------------------

    def healthz(self):
        return self._expect("GET", "/healthz")

    def stats(self):
        return self._expect("GET", "/stats")

    def submit(self, kind, modules, level=None, model=None, models=None,
               options=None, config=None, priority=0):
        """POST /jobs; returns the created job record."""
        body = {"kind": kind, "modules": modules, "priority": priority}
        for key, value in (("level", level), ("model", model),
                           ("models", models), ("options", options),
                           ("config", config)):
            if value is not None:
                body[key] = value
        return self._expect("POST", "/jobs", body=body, ok=(201,))

    def jobs(self):
        return self._expect("GET", "/jobs")["jobs"]

    def status(self, job_id):
        return self._expect("GET", f"/jobs/{job_id}")

    def result(self, job_id, wait=False, timeout=300.0, poll=0.2):
        """The job record with its result once terminal.

        ``wait=False`` returns the pending record as-is (state tells
        the caller it is not done yet); ``wait=True`` polls until the
        job is terminal or ``timeout`` elapses (:class:`ServeError`
        with ``status=None`` on timeout).
        """
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.request("GET", f"/jobs/{job_id}/result")
            if status == 200:
                return payload
            if status == 202:
                if not wait:
                    return payload
                if time.monotonic() >= deadline:
                    raise ServeError(
                        f"timed out waiting for job {job_id}", status=None
                    )
                time.sleep(poll)
                continue
            raise ServeError(
                f"GET /jobs/{job_id}/result: HTTP {status}: "
                f"{payload.get('error', payload)}", status=status
            )

    def events(self, job_id, follow=True):
        """Yield NDJSON progress events; ends when the job is terminal."""
        suffix = "" if follow else "?follow=0"
        request = urllib.request.Request(
            f"{self.url}/jobs/{job_id}/events{suffix}"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                if response.status != 200:
                    raise ServeError(
                        f"events: HTTP {response.status}",
                        status=response.status,
                    )
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServeError(
                f"events: HTTP {exc.code}", status=exc.code
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"cannot reach {self.url}: {exc}", status=None
            ) from exc

    def delete(self, job_id):
        """Cancel a queued job / delete a terminal one."""
        return self._expect("DELETE", f"/jobs/{job_id}")


def result_exit_code(record):
    """Documented CLI exit code for a finished job record.

    0 — ``done`` and every verdict in the result is clean;
    1 — the job ``failed``/``cancelled``, or the result carries a bug
    verdict: a ``check`` violation/deadlock, an ``optimize`` run whose
    verdict was not preserved, a ``repair`` that left a module
    non-robust.
    """
    state = record.get("state")
    if state != "done":
        return 1
    result = record.get("result") or {}
    kind = result.get("kind")
    if kind == "check":
        bad = any(
            row.get("violation") is not None or row.get("deadlock")
            for row in result.get("checks", ())
        )
        return 1 if bad else 0
    if kind == "optimize":
        bad = any(
            not row.get("report", {}).get("verdict_preserved", True)
            for row in result.get("modules", ())
        )
        return 1 if bad else 0
    if kind == "repair":
        bad = any(
            not row.get("report", {}).get("robust_after", True)
            for row in result.get("modules", ())
        )
        return 1 if bad else 0
    return 0
