"""Porting-as-a-service: a long-lived job daemon over the pipeline.

The one-shot CLI re-parses, re-ports and re-verifies from scratch on
every invocation.  This package turns the same machinery into a
persistent service:

- :mod:`repro.serve.store` — a durable on-disk job store (one JSON
  record per job under ``ATOMIG_JOB_DIR``, atomic writes) whose
  ``queued``/``running`` jobs survive a daemon restart;
- :mod:`repro.serve.queue` — a priority job queue whose workers fan
  out through the existing :mod:`repro.core.parallel` /
  :mod:`repro.opt.parallel` harnesses and the persistent pools of
  :mod:`repro.core.workers`, with content-addressed dedup on the
  blake2b modcache key plus the task's config fingerprint;
- :mod:`repro.serve.http` — a stdlib-only REST-ish HTTP API
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/result``,
  streaming ``GET /jobs/<id>/events``, ``DELETE /jobs/<id>``,
  ``GET /healthz``, ``GET /stats``);
- :mod:`repro.serve.client` — the urllib client behind
  ``atomig submit`` / ``status`` / ``result``.

:func:`start_service` wires the three together in-process and is what
``atomig serve`` and the tests use.
"""

from dataclasses import dataclass

from repro.serve.client import ServeClient, ServeError, result_exit_code
from repro.serve.queue import JobDaemon, execute_payload, job_dedup_key
from repro.serve.store import TERMINAL_STATES, JobStore, default_job_dir


@dataclass
class ServiceHandle:
    """A running daemon + HTTP server pair (see :func:`start_service`)."""

    daemon: object
    server: object
    thread: object
    url: str

    def stop(self, drain=True):
        """Shut the service down: HTTP first, then the job daemon.

        ``drain=True`` lets running jobs finish and persists the queue
        (the graceful SIGTERM path); ``drain=False`` abandons running
        jobs (their records are re-queued on the next start).
        """
        self.server.shutdown()
        self.server.server_close()
        self.daemon.shutdown(drain=drain)
        self.thread.join(timeout=5)


def start_service(host="127.0.0.1", port=0, job_dir=None, workers=None,
                  fanout=1):
    """Start the job daemon and its HTTP API in this process.

    Non-blocking: the HTTP server runs on a daemon thread and job
    execution on the daemon's worker threads.  Returns a
    :class:`ServiceHandle`; ``port=0`` binds an ephemeral port (the
    bound address is in ``handle.url``).
    """
    import threading

    from repro.serve.http import make_server

    daemon = JobDaemon(store=JobStore(job_dir), workers=workers,
                       fanout=fanout)
    daemon.start()
    server = make_server(daemon, host, port)
    thread = threading.Thread(
        target=server.serve_forever, name="atomig-serve-http", daemon=True
    )
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return ServiceHandle(
        daemon=daemon, server=server, thread=thread,
        url=f"http://{bound_host}:{bound_port}",
    )


__all__ = [
    "JobDaemon",
    "JobStore",
    "ServeClient",
    "ServeError",
    "ServiceHandle",
    "TERMINAL_STATES",
    "default_job_dir",
    "execute_payload",
    "job_dedup_key",
    "result_exit_code",
    "start_service",
]
