"""Mapping of x86 inline-assembly templates to portable IR.

The paper's frontend pass (§3.2) replaces x86 inline assembly that
implements synchronization with compiler builtins so the IR-level
analyses can see (and the backend can re-target) those barriers.  This
table captures the x86 synchronization idioms that appear in the corpus
and in the real code bases the paper ports.
"""

import re

#: Classification results.
FENCE_SC = "fence_sc"  # full barrier -> IR `fence seq_cst`
COMPILER_BARRIER = "compiler_barrier"  # ordering for the compiler only
PAUSE = "pause"  # spin-wait hint, no ordering
RMW_PREFIX = "rmw"  # `lock`-prefixed RMW -> already-atomic builtin
UNKNOWN = "unknown"

_FULL_FENCES = ("mfence", "lfence", "sfence", "lock; addl $0", "lock addl $0")
_PAUSE_HINTS = ("pause", "rep; nop", "rep nop", "nop")


def classify_asm(template):
    """Classify an x86 inline-asm ``template`` string.

    Returns one of :data:`FENCE_SC`, :data:`COMPILER_BARRIER`,
    :data:`PAUSE`, :data:`RMW_PREFIX` or :data:`UNKNOWN`.
    """
    text = template.strip().lower()
    if text == "":
        # ``__asm__("" ::: "memory")`` — pure compiler barrier.
        return COMPILER_BARRIER
    for fence in _FULL_FENCES:
        if fence in text:
            return FENCE_SC
    for hint in _PAUSE_HINTS:
        if text == hint or text.startswith(hint + "\n"):
            return PAUSE
    if re.match(r"^lock[\s;]", text) or text.startswith("xchg"):
        # ``lock xadd``, ``lock cmpxchg``, bare ``xchg`` (implicitly
        # locked): an atomic RMW.  On TSO these act as full barriers,
        # so the safe portable translation is an SC fence; the corpus
        # uses the atomic builtins directly for value-producing RMWs.
        return RMW_PREFIX
    if "dmb" in text or "dsb" in text or "isb" in text:
        # Already-ported Arm barrier (appears in expert WMM variants).
        return FENCE_SC
    return UNKNOWN
