"""Lowers a sema-annotated Mini-C AST to IR.

The lowering mirrors clang at ``-O0`` — exactly what AtoMig's initial
compilation step uses (§3.1): every source variable (including formal
parameters) gets an ``alloca`` and is accessed through loads and stores,
short-circuit operators become control flow, and member/array accesses
become ``gep`` instructions that record struct types and field offsets.
"""

from repro.errors import LoweringError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import C11_ORDER_BY_VALUE, MemoryOrder
from repro.ir.module import Function, Module
from repro.ir.values import Constant, GlobalVar
from repro.lang import ast_nodes as ast
from repro.lang.ctypes import INT, ArrayType, PointerType, StructType
from repro.lower.asm_map import (
    COMPILER_BARRIER,
    FENCE_SC,
    PAUSE,
    RMW_PREFIX,
    UNKNOWN,
    classify_asm,
)


class _Scope:
    """Lowering-time scope: name -> (pointer, ctype, volatile, atomic)."""

    def __init__(self, parent=None):
        self.parent = parent
        self.entries = {}

    def declare(self, name, pointer, ctype, volatile=False, atomic=False):
        self.entries[name] = (pointer, ctype, volatile, atomic)

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


class Lowerer:
    """Lowers one :class:`Program` into a fresh :class:`Module`."""

    def __init__(self, program, module_name="module"):
        self.program = program
        self.module = Module(module_name)
        self.builder = None
        self.function = None
        self.scope = None
        self.break_targets = []
        self.continue_targets = []
        self.labels = {}
        self.warnings = []

    # -- entry point -------------------------------------------------------

    def lower(self):
        self.module.struct_types = dict(self.program.struct_types)
        for decl in self.program.globals:
            initializer = self._flatten_init(decl.ctype, decl.init)
            self.module.add_global(
                GlobalVar(
                    decl.name,
                    decl.ctype,
                    initializer,
                    volatile=decl.volatile,
                    atomic=decl.atomic,
                )
            )
        # Create function shells first so calls can reference them.
        for fn in self.program.functions:
            shell = Function(
                fn.name,
                fn.return_type,
                [param.name for param in fn.params],
                fn.param_types,
            )
            self.module.add_function(shell)
        for fn in self.program.functions:
            self._lower_function(fn)
        if self.warnings:
            self.module.metadata["lowering_warnings"] = list(self.warnings)
        return self.module

    # -- globals --------------------------------------------------------------

    def _flatten_init(self, ctype, init):
        size = max(ctype.size, 1)
        slots = [0] * size
        if init is None:
            return slots
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                element_size = ctype.element.size
                for index, item in enumerate(init):
                    sub = self._flatten_init(ctype.element, item)
                    slots[index * element_size : (index + 1) * element_size] = sub
            elif isinstance(ctype, StructType):
                offset = 0
                for (fname, ftype), item in zip(ctype.fields, init):
                    sub = self._flatten_init(ftype, item)
                    slots[offset : offset + ftype.size] = sub
                    offset += ftype.size
            else:
                raise LoweringError("aggregate initializer for scalar global")
        else:
            slots[0] = self._const_eval(init)
        return slots

    def _const_eval(self, expr):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.NullLiteral):
            return 0
        if isinstance(expr, ast.Identifier) and expr.binding == "enum":
            return expr.enum_value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.SizeOf):
            return expr.size_value
        raise LoweringError(f"non-constant initializer at line {expr.line}")

    # -- functions ---------------------------------------------------------------

    def _lower_function(self, fn_ast):
        function = self.module.functions[fn_ast.name]
        self.function = function
        self.builder = IRBuilder(function)
        self.scope = _Scope()
        self.labels = {}
        entry = function.new_block("entry")
        self.builder.position_at_end(entry)

        # clang -O0 style: spill every parameter to a stack slot.
        for argument, param in zip(function.arguments, fn_ast.params):
            slot = self.builder.alloca(param.ctype, name=f"{param.name}.addr")
            self.builder.store(slot, argument)
            self.scope.declare(param.name, slot, param.ctype)

        self._lower_stmt(fn_ast.body)

        if not self.builder.is_terminated():
            self._emit_default_return()
        self._cleanup(function)
        self.function = None
        self.builder = None
        self.scope = None

    def _emit_default_return(self):
        if self.function.return_type.is_void():
            self.builder.ret()
        else:
            self.builder.ret(Constant(0, self.function.return_type))

    def _cleanup(self, function):
        """Drop unreachable blocks; terminate stragglers with a return."""
        reachable = set()
        worklist = [function.entry]
        while worklist:
            block = worklist.pop()
            if block in reachable:
                continue
            reachable.add(block)
            if block.terminator is None:
                # Fell off the end of a reachable block (e.g. label at
                # the end of a function body).
                saved = self.builder.block
                self.builder.position_at_end(block)
                self._emit_default_return()
                self.builder.position_at_end(saved)
            worklist.extend(block.successors())
        function.blocks = [b for b in function.blocks if b in reachable]

    # -- statements -----------------------------------------------------------------

    def _lower_stmt(self, stmt):
        handler = {
            ast.Block: self._lower_block,
            ast.LocalDecl: self._lower_local_decl,
            ast.ExprStmt: self._lower_expr_stmt,
            ast.If: self._lower_if,
            ast.While: self._lower_while,
            ast.DoWhile: self._lower_do_while,
            ast.For: self._lower_for,
            ast.Break: self._lower_break,
            ast.Continue: self._lower_continue,
            ast.Return: self._lower_return,
            ast.Goto: self._lower_goto,
            ast.Label: self._lower_label,
            ast.InlineAsm: self._lower_asm,
            ast.Switch: self._lower_switch,
        }.get(type(stmt))
        if handler is None:
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")
        handler(stmt)

    def _lower_block(self, block):
        outer = self.scope
        self.scope = _Scope(outer)
        for stmt in block.statements:
            self._lower_stmt(stmt)
        self.scope = outer

    def _lower_local_decl(self, decl):
        slot = self.builder.alloca(decl.ctype, name=decl.name)
        slot.source_line = decl.line
        self.scope.declare(
            decl.name, slot, decl.ctype, volatile=decl.volatile, atomic=decl.atomic
        )
        if decl.init is None:
            return
        if isinstance(decl.init, list):
            self._lower_aggregate_init(slot, decl.ctype, decl.init)
        else:
            value = self._rvalue(decl.init)
            self._emit_store(slot, value, decl.volatile, decl.atomic, decl.line)

    def _lower_aggregate_init(self, base, ctype, items):
        if isinstance(ctype, ArrayType):
            for index, item in enumerate(items):
                element_ptr = self.builder.gep(
                    base,
                    [("index", ctype.element, Constant(index, INT))],
                    ctype.element,
                )
                if isinstance(item, list):
                    self._lower_aggregate_init(element_ptr, ctype.element, item)
                else:
                    self.builder.store(element_ptr, self._rvalue(item))
        elif isinstance(ctype, StructType):
            for field_index, item in enumerate(items):
                _, ftype = ctype.fields[field_index]
                field_ptr = self.builder.gep(
                    base, [("field", ctype, field_index)], ftype
                )
                if isinstance(item, list):
                    self._lower_aggregate_init(field_ptr, ftype, item)
                else:
                    self.builder.store(field_ptr, self._rvalue(item))
        else:
            raise LoweringError("aggregate initializer for scalar local")

    def _lower_expr_stmt(self, stmt):
        self._rvalue(stmt.expr, want_value=False)

    def _lower_if(self, stmt):
        then_block = self.function.new_block("if.then")
        merge_block = self.function.new_block("if.end")
        else_block = (
            self.function.new_block("if.else")
            if stmt.else_body is not None
            else merge_block
        )
        self._lower_condition(stmt.cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self._lower_stmt(stmt.then_body)
        if not self.builder.is_terminated():
            self.builder.br(merge_block)
        if stmt.else_body is not None:
            self.builder.position_at_end(else_block)
            self._lower_stmt(stmt.else_body)
            if not self.builder.is_terminated():
                self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)

    def _lower_while(self, stmt):
        header = self.function.new_block("while.cond")
        body = self.function.new_block("while.body")
        exit_block = self.function.new_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        self._lower_condition(stmt.cond, body, exit_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(header)
        self.builder.position_at_end(body)
        self._lower_stmt(stmt.body)
        if not self.builder.is_terminated():
            self.builder.br(header)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.position_at_end(exit_block)

    def _lower_do_while(self, stmt):
        body = self.function.new_block("do.body")
        header = self.function.new_block("do.cond")
        exit_block = self.function.new_block("do.end")
        self.builder.br(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(header)
        self.builder.position_at_end(body)
        self._lower_stmt(stmt.body)
        if not self.builder.is_terminated():
            self.builder.br(header)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.position_at_end(header)
        self._lower_condition(stmt.cond, body, exit_block)
        self.builder.position_at_end(exit_block)

    def _lower_for(self, stmt):
        outer = self.scope
        self.scope = _Scope(outer)
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.function.new_block("for.cond")
        body = self.function.new_block("for.body")
        step_block = self.function.new_block("for.step")
        exit_block = self.function.new_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            self._lower_condition(stmt.cond, body, exit_block)
        else:
            self.builder.br(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        self.builder.position_at_end(body)
        self._lower_stmt(stmt.body)
        if not self.builder.is_terminated():
            self.builder.br(step_block)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._rvalue(stmt.step, want_value=False)
        self.builder.br(header)
        self.builder.position_at_end(exit_block)
        self.scope = outer

    def _lower_switch(self, stmt):
        """Lower a switch with C fallthrough: a compare chain dispatches
        into per-arm blocks; each arm falls through to the next."""
        subject = self._rvalue(stmt.subject)
        end_block = self.function.new_block("switch.end")
        arm_blocks = [
            self.function.new_block(f"switch.case{index}")
            for index in range(len(stmt.cases))
        ]

        # Dispatch chain.
        default_target = end_block
        for index, (label, _body) in enumerate(stmt.cases):
            if label is None:
                default_target = arm_blocks[index]
        for index, (label, _body) in enumerate(stmt.cases):
            if label is None:
                continue
            value = self._const_eval(label)
            compare = self.builder.binop("==", subject, Constant(value, INT))
            compare.source_line = stmt.line
            next_test = self.function.new_block("switch.next")
            self.builder.cond_br(compare, arm_blocks[index], next_test)
            self.builder.position_at_end(next_test)
        self.builder.br(default_target)

        # Arm bodies, with fallthrough and `break` -> end.
        self.break_targets.append(end_block)
        outer = self.scope
        for index, (_label, body) in enumerate(stmt.cases):
            self.builder.position_at_end(arm_blocks[index])
            self.scope = _Scope(outer)
            for inner in body:
                self._lower_stmt(inner)
            if not self.builder.is_terminated():
                fall = (
                    arm_blocks[index + 1]
                    if index + 1 < len(arm_blocks)
                    else end_block
                )
                self.builder.br(fall)
        self.scope = outer
        self.break_targets.pop()
        self.builder.position_at_end(end_block)

    def _lower_break(self, stmt):
        if not self.break_targets:
            raise LoweringError("break outside loop")
        self.builder.br(self.break_targets[-1])
        self.builder.position_at_end(self.function.new_block("dead"))

    def _lower_continue(self, stmt):
        if not self.continue_targets:
            raise LoweringError("continue outside loop")
        self.builder.br(self.continue_targets[-1])
        self.builder.position_at_end(self.function.new_block("dead"))

    def _lower_return(self, stmt):
        if stmt.value is not None:
            self.builder.ret(self._rvalue(stmt.value))
        else:
            self.builder.ret()
        self.builder.position_at_end(self.function.new_block("dead"))

    def _lower_goto(self, stmt):
        self.builder.br(self._label_block(stmt.label))
        self.builder.position_at_end(self.function.new_block("dead"))

    def _lower_label(self, stmt):
        block = self._label_block(stmt.name)
        if not self.builder.is_terminated():
            self.builder.br(block)
        self.builder.position_at_end(block)

    def _label_block(self, name):
        if name not in self.labels:
            self.labels[name] = self.function.new_block(f"label.{name}")
        return self.labels[name]

    def _lower_asm(self, stmt):
        kind = classify_asm(stmt.template)
        if kind in (FENCE_SC, RMW_PREFIX):
            fence = self.builder.fence(MemoryOrder.SEQ_CST)
            fence.marks.add("annotation")
            fence.source_line = stmt.line
        elif kind is COMPILER_BARRIER:
            barrier = self.builder.compiler_barrier()
            barrier.source_line = stmt.line
        elif kind is PAUSE:
            pass  # spin hint: no ordering at all
        elif kind is UNKNOWN:
            self.warnings.append(
                f"line {stmt.line}: unrecognized inline asm {stmt.template!r}; "
                "conservatively inserting an SC fence"
            )
            fence = self.builder.fence(MemoryOrder.SEQ_CST)
            fence.source_line = stmt.line

    # -- conditions ------------------------------------------------------------

    def _lower_condition(self, expr, true_block, false_block):
        """Emit a branch on ``expr`` with C short-circuit semantics."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.function.new_block("land.rhs")
            self._lower_condition(expr.left, mid, false_block)
            self.builder.position_at_end(mid)
            self._lower_condition(expr.right, true_block, false_block)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.function.new_block("lor.rhs")
            self._lower_condition(expr.left, true_block, mid)
            self.builder.position_at_end(mid)
            self._lower_condition(expr.right, true_block, false_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._lower_condition(expr.operand, false_block, true_block)
            return
        if isinstance(expr, ast.IntLiteral):
            self.builder.br(true_block if expr.value else false_block)
            return
        value = self._rvalue(expr)
        if not (isinstance(expr, ast.Binary) and expr.op in (
            "==", "!=", "<", ">", "<=", ">="
        )):
            value = self.builder.binop("!=", value, Constant(0, INT))
            value.source_line = expr.line
        self.builder.cond_br(value, true_block, false_block)

    # -- lvalues -----------------------------------------------------------------

    def _lvalue(self, expr):
        """Lower ``expr`` to (pointer, ctype, volatile, atomic)."""
        if isinstance(expr, ast.Identifier):
            entry = self.scope.lookup(expr.name)
            if entry is not None:
                return entry
            gvar = self.module.globals.get(expr.name)
            if gvar is not None:
                return gvar, gvar.value_type, gvar.volatile, gvar.atomic
            raise LoweringError(f"unbound identifier {expr.name!r}")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._rvalue(expr.operand)
            pointee = expr.ctype
            return pointer, pointee, False, False
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        raise LoweringError(
            f"expression is not an lvalue: {type(expr).__name__}"
        )

    def _index_lvalue(self, expr):
        base_type = expr.base.ctype
        if isinstance(base_type, ArrayType):
            base_ptr, _, volatile, atomic = self._lvalue(expr.base)
            element = base_type.element
        else:
            base_ptr = self._rvalue(expr.base)
            element = base_type.pointee
            volatile = atomic = False
        index = self._rvalue(expr.index)
        pointer = self.builder.gep(
            base_ptr, [("index", element, index)], element
        )
        pointer.source_line = expr.line
        return pointer, element, volatile, atomic

    def _member_lvalue(self, expr):
        struct = expr.struct_type
        field_index = struct.field_index(expr.field)
        field_type = struct.fields[field_index][1]
        if expr.arrow:
            base_ptr = self._rvalue(expr.base)
            volatile = atomic = False
        else:
            base_ptr, _, volatile, atomic = self._lvalue(expr.base)
        pointer = self.builder.gep(
            base_ptr, [("field", struct, field_index)], field_type
        )
        pointer.source_line = expr.line
        return pointer, field_type, volatile, atomic

    # -- loads and stores ----------------------------------------------------------

    def _emit_load(self, pointer, volatile, atomic, line):
        order = MemoryOrder.SEQ_CST if atomic else MemoryOrder.NOT_ATOMIC
        load = self.builder.load(pointer, order=order, volatile=volatile)
        load.source_line = line
        if atomic:
            load.marks.add("annotation")
        return load

    def _emit_store(self, pointer, value, volatile, atomic, line):
        order = MemoryOrder.SEQ_CST if atomic else MemoryOrder.NOT_ATOMIC
        store = self.builder.store(pointer, value, order=order, volatile=volatile)
        store.source_line = line
        if atomic:
            store.marks.add("annotation")
        return store

    # -- rvalues -----------------------------------------------------------------------

    def _rvalue(self, expr, want_value=True):
        if isinstance(expr, ast.IntLiteral):
            return Constant(expr.value, INT)
        if isinstance(expr, ast.NullLiteral):
            return Constant(0, expr.ctype)
        if isinstance(expr, ast.StringLiteral):
            # Strings only appear in asm/diagnostics; value is unused.
            return Constant(0, INT)
        if isinstance(expr, ast.SizeOf):
            return Constant(expr.size_value, INT)
        if isinstance(expr, ast.Identifier):
            return self._identifier_rvalue(expr)
        if isinstance(expr, ast.Unary):
            return self._unary_rvalue(expr, want_value)
        if isinstance(expr, ast.Binary):
            return self._binary_rvalue(expr, want_value)
        if isinstance(expr, ast.Conditional):
            return self._conditional_rvalue(expr)
        if isinstance(expr, ast.Assign):
            return self._assign_rvalue(expr, want_value)
        if isinstance(expr, (ast.Index, ast.Member)):
            pointer, ctype, volatile, atomic = self._lvalue(expr)
            if isinstance(ctype, ArrayType):
                return self._decay(pointer, ctype)
            return self._emit_load(pointer, volatile, atomic, expr.line)
        if isinstance(expr, ast.Call):
            return self._call_rvalue(expr, want_value)
        if isinstance(expr, ast.Cast):
            value = self._rvalue(expr.operand)
            cast = self.builder.cast(value, expr.ctype)
            cast.source_line = expr.line
            return cast
        raise LoweringError(f"unhandled expression {type(expr).__name__}")

    def _identifier_rvalue(self, expr):
        if expr.binding == "enum":
            return Constant(expr.enum_value, INT)
        if expr.binding == "function":
            raise LoweringError(
                f"function {expr.name!r} used as a value (only thread_create "
                "accepts function names)"
            )
        pointer, ctype, volatile, atomic = self._lvalue(expr)
        if isinstance(ctype, ArrayType):
            return self._decay(pointer, ctype)
        if isinstance(ctype, StructType):
            return pointer  # struct rvalues are handled via their address
        return self._emit_load(pointer, volatile, atomic, expr.line)

    def _decay(self, pointer, array_type):
        decayed = self.builder.gep(
            pointer,
            [("index", array_type.element, Constant(0, INT))],
            array_type.element,
        )
        return decayed

    def _unary_rvalue(self, expr, want_value):
        op = expr.op
        if op == "&":
            pointer, _, _, _ = self._lvalue(expr.operand)
            return pointer
        if op == "*":
            pointer, ctype, volatile, atomic = self._lvalue(expr)
            if isinstance(ctype, (ArrayType, StructType)):
                return pointer
            return self._emit_load(pointer, volatile, atomic, expr.line)
        if op in ("++", "--"):
            return self._incdec_rvalue(expr, want_value)
        operand = self._rvalue(expr.operand)
        if op == "-":
            result = self.builder.binop("-", Constant(0, INT), operand)
        elif op == "~":
            result = self.builder.binop("^", operand, Constant(-1, INT))
        elif op == "!":
            result = self.builder.binop("==", operand, Constant(0, INT))
        else:
            raise LoweringError(f"unhandled unary {op!r}")
        result.source_line = expr.line
        return result

    def _incdec_rvalue(self, expr, want_value):
        pointer, ctype, volatile, atomic = self._lvalue(expr.operand)
        delta = 1 if expr.op == "++" else -1
        if atomic:
            rmw_op = "add" if delta > 0 else "sub"
            old = self.builder.atomicrmw(
                rmw_op, pointer, Constant(1, INT), MemoryOrder.SEQ_CST
            )
            old.source_line = expr.line
            old.marks.add("annotation")
            if not want_value:
                return old
            if expr.postfix:
                return old
            return self.builder.binop("+", old, Constant(delta, INT))
        old = self._emit_load(pointer, volatile, atomic, expr.line)
        if isinstance(ctype, PointerType):
            new = self.builder.gep(
                old, [("index", ctype.pointee, Constant(delta, INT))], ctype.pointee
            )
        else:
            new = self.builder.binop("+", old, Constant(delta, INT))
        new.source_line = expr.line
        self._emit_store(pointer, new, volatile, atomic, expr.line)
        return old if expr.postfix else new

    def _binary_rvalue(self, expr, want_value):
        op = expr.op
        if op == ",":
            self._rvalue(expr.left, want_value=False)
            return self._rvalue(expr.right, want_value)
        if op in ("&&", "||"):
            return self._logical_rvalue(expr)
        left = self._rvalue(expr.left)
        right = self._rvalue(expr.right)
        left_type = expr.left.ctype
        right_type = expr.right.ctype
        # Pointer arithmetic lowers to gep so the unit-slot VM scales
        # offsets by the pointee size.
        if op in ("+", "-") and isinstance(left_type, (PointerType, ArrayType)):
            element = (
                left_type.pointee
                if isinstance(left_type, PointerType)
                else left_type.element
            )
            if isinstance(right_type, (PointerType, ArrayType)):
                # Pointer difference: (a - b) / sizeof(element).
                left_int = self.builder.cast(left, INT)
                right_int = self.builder.cast(right, INT)
                diff = self.builder.binop("-", left_int, right_int)
                if element.size != 1:
                    diff = self.builder.binop(
                        "/", diff, Constant(element.size, INT)
                    )
                return diff
            offset = right
            if op == "-":
                offset = self.builder.binop("-", Constant(0, INT), right)
            return self.builder.gep(left, [("index", element, offset)], element)
        if op == "+" and isinstance(right_type, (PointerType, ArrayType)):
            element = (
                right_type.pointee
                if isinstance(right_type, PointerType)
                else right_type.element
            )
            return self.builder.gep(right, [("index", element, left)], element)
        result = self.builder.binop(op, left, right)
        result.source_line = expr.line
        return result

    def _logical_rvalue(self, expr):
        result = self.builder.alloca(INT, name="logtmp")
        true_block = self.function.new_block("log.true")
        false_block = self.function.new_block("log.false")
        join = self.function.new_block("log.end")
        self._lower_condition(expr, true_block, false_block)
        self.builder.position_at_end(true_block)
        self.builder.store(result, Constant(1, INT))
        self.builder.br(join)
        self.builder.position_at_end(false_block)
        self.builder.store(result, Constant(0, INT))
        self.builder.br(join)
        self.builder.position_at_end(join)
        return self.builder.load(result)

    def _conditional_rvalue(self, expr):
        result = self.builder.alloca(expr.ctype, name="condtmp")
        then_block = self.function.new_block("cond.then")
        else_block = self.function.new_block("cond.else")
        join = self.function.new_block("cond.end")
        self._lower_condition(expr.cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self.builder.store(result, self._rvalue(expr.then_expr))
        self.builder.br(join)
        self.builder.position_at_end(else_block)
        self.builder.store(result, self._rvalue(expr.else_expr))
        self.builder.br(join)
        self.builder.position_at_end(join)
        return self.builder.load(result)

    def _assign_rvalue(self, expr, want_value):
        pointer, ctype, volatile, atomic = self._lvalue(expr.target)
        if expr.op is None:
            value = self._rvalue(expr.value)
            self._emit_store(pointer, value, volatile, atomic, expr.line)
            return value
        # Compound assignment: load, combine, store.  Legacy TSO code
        # does exactly this (e.g. `flag++` on a volatile), which is why
        # AtoMig must strengthen both halves.
        old = self._emit_load(pointer, volatile, atomic, expr.line)
        rhs = self._rvalue(expr.value)
        if expr.op in ("+", "-") and isinstance(ctype, PointerType):
            offset = rhs
            if expr.op == "-":
                offset = self.builder.binop("-", Constant(0, INT), rhs)
            new = self.builder.gep(
                old, [("index", ctype.pointee, offset)], ctype.pointee
            )
        else:
            new = self.builder.binop(expr.op, old, rhs)
        new.source_line = expr.line
        self._emit_store(pointer, new, volatile, atomic, expr.line)
        return new

    # -- calls --------------------------------------------------------------------------

    def _call_rvalue(self, expr, want_value):
        if expr.is_builtin:
            return self._builtin_rvalue(expr, want_value)
        callee = self.module.functions.get(expr.name)
        if callee is None:
            raise LoweringError(f"call to unknown function {expr.name!r}")
        args = []
        for arg in expr.args:
            value = self._rvalue(arg)
            args.append(value)
        call = self.builder.call(callee, args)
        call.source_line = expr.line
        return call

    def _builtin_rvalue(self, expr, want_value):
        name = expr.name
        line = expr.line

        if name in ("atomic_thread_fence", "atomic_fence"):
            order = self._order_arg(expr.args[0]) if expr.args else MemoryOrder.SEQ_CST
            fence = self.builder.fence(order)
            fence.marks.add("annotation")
            fence.source_line = line
            return Constant(0, INT)

        if name == "malloc":
            size = self._rvalue(expr.args[0])
            malloc = self.builder.malloc(size)
            malloc.source_line = line
            return malloc
        if name == "free":
            self.builder.free(self._rvalue(expr.args[0]))
            return Constant(0, INT)
        if name == "assert":
            cond = self._boolean_value(expr.args[0])
            self.builder.assert_(cond, message=f"assert at line {line}")
            return Constant(0, INT)
        if name == "print":
            self.builder.print_(self._rvalue(expr.args[0]))
            return Constant(0, INT)
        if name == "cpu_relax":
            return Constant(0, INT)
        if name == "usleep":
            sleep = self.builder.sleep(self._rvalue(expr.args[0]))
            sleep.source_line = line
            return Constant(0, INT)
        if name == "sched_yield":
            sleep = self.builder.sleep(Constant(0, INT))
            sleep.source_line = line
            return Constant(0, INT)
        if name == "thread_create":
            fn_name = expr.args[0].name
            callee = self.module.functions.get(fn_name)
            if callee is None:
                raise LoweringError(f"thread_create of unknown function {fn_name!r}")
            arg = self._rvalue(expr.args[1]) if len(expr.args) > 1 else None
            tc = self.builder.thread_create(callee, arg)
            tc.source_line = line
            return tc
        if name == "thread_join":
            self.builder.thread_join(self._rvalue(expr.args[0]))
            return Constant(0, INT)

        # C11 atomic builtins.
        explicit = name.endswith("_explicit")
        base = name[: -len("_explicit")] if explicit else name
        pointer = self._rvalue(expr.args[0])
        if base == "atomic_load":
            order = self._order_arg(expr.args[1]) if explicit else MemoryOrder.SEQ_CST
            load = self.builder.load(pointer, order=order)
            load.source_line = line
            load.marks.add("annotation")
            return load
        if base == "atomic_store":
            value = self._rvalue(expr.args[1])
            order = self._order_arg(expr.args[2]) if explicit else MemoryOrder.SEQ_CST
            store = self.builder.store(pointer, value, order=order)
            store.source_line = line
            store.marks.add("annotation")
            return value
        if base == "atomic_exchange":
            value = self._rvalue(expr.args[1])
            order = self._order_arg(expr.args[2]) if explicit else MemoryOrder.SEQ_CST
            rmw = self.builder.atomicrmw("xchg", pointer, value, order)
            rmw.source_line = line
            rmw.marks.add("annotation")
            return rmw
        if base == "atomic_cmpxchg":
            expected = self._rvalue(expr.args[1])
            desired = self._rvalue(expr.args[2])
            order = self._order_arg(expr.args[3]) if explicit else MemoryOrder.SEQ_CST
            cas = self.builder.cmpxchg(pointer, expected, desired, order)
            cas.source_line = line
            cas.marks.add("annotation")
            return cas
        if base.startswith("atomic_fetch_"):
            op = base[len("atomic_fetch_") :]
            value = self._rvalue(expr.args[1])
            order = self._order_arg(expr.args[2]) if explicit else MemoryOrder.SEQ_CST
            rmw = self.builder.atomicrmw(op, pointer, value, order)
            rmw.source_line = line
            rmw.marks.add("annotation")
            return rmw
        raise LoweringError(f"unhandled builtin {name!r}")

    def _order_arg(self, expr):
        value = self._const_eval(expr)
        order = C11_ORDER_BY_VALUE.get(value)
        if order is None:
            raise LoweringError(f"invalid memory order constant {value}")
        return order

    def _boolean_value(self, expr):
        value = self._rvalue(expr)
        if isinstance(expr, ast.Binary) and expr.op in (
            "==", "!=", "<", ">", "<=", ">=", "&&", "||"
        ):
            return value
        return self.builder.binop("!=", value, Constant(0, INT))


def lower_program(program, module_name="module"):
    """Lower a sema-annotated ``program`` into a fresh IR module."""
    return Lowerer(program, module_name).lower()
