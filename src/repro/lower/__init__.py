"""Lowering from the Mini-C AST to the IR (clang ``-O0`` style)."""

from repro.lower.lowering import Lowerer, lower_program

__all__ = ["Lowerer", "lower_program"]
