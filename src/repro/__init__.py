"""AtoMig reproduction: automatic migration of TSO code to weak memory models.

This package reproduces the system described in "AtoMig: Automatically
Migrating Millions Lines of Code from TSO to WMM" (ASPLOS 2023) as a
self-contained Python library.  It contains:

- a Mini-C frontend (:mod:`repro.lang`) and an LLVM-like typed IR
  (:mod:`repro.ir`) with a lowering pass (:mod:`repro.lower`);
- the AtoMig static analyses and program transformations
  (:mod:`repro.analysis`, :mod:`repro.core`) plus the Naive and
  Lasagne-like baseline porters (:mod:`repro.transform`);
- an operational weak-memory-model checker (:mod:`repro.mc`), used in
  place of GenMC to validate ported programs;
- a multithreaded IR interpreter with an Arm-calibrated barrier cost
  model (:mod:`repro.vm`) used for the performance experiments;
- the benchmark corpus and table harnesses (:mod:`repro.bench`).

Typical usage::

    from repro import compile_source, port_module, PortingLevel

    module = compile_source(source_text)
    ported = port_module(module, level=PortingLevel.ATOMIG)
"""

from repro.api import (
    PortingLevel,
    check_module,
    compile_source,
    lint_module,
    port_module,
    run_module,
)
from repro.core.config import AtoMigConfig
from repro.core.report import LintReport, PortingReport

__all__ = [
    "AtoMigConfig",
    "LintReport",
    "PortingLevel",
    "PortingReport",
    "check_module",
    "compile_source",
    "lint_module",
    "port_module",
    "run_module",
]

__version__ = "1.0.0"
