"""Command-line interface: ``python -m repro`` or the ``atomig`` script.

Subcommands mirror the library workflow:

- ``atomig port file.c``     — port a Mini-C file, print the report / IR;
- ``atomig optimize file.c`` — port, then weaken barriers under the
  model-checking oracle (verdict-preserving);
- ``atomig check file.c``    — model-check under sc/tso/wmm;
- ``atomig run file.c``      — execute on the performance VM;
- ``atomig lint file.c``     — static race & portability linter;
- ``atomig robustness f.c``  — static critical-cycle robustness report;
- ``atomig litmus [NAME]``   — run the calibration litmus tests;
- ``atomig tables [N ...]``  — regenerate the paper's evaluation tables;
- ``atomig serve``           — porting-as-a-service daemon (repro.serve);
- ``atomig submit file.c``   — submit a job to a running daemon;
- ``atomig status [ID]``     — job states from a running daemon;
- ``atomig result ID``       — fetch (optionally await) a job's result.

Exit codes are uniform across subcommands:

- ``0`` — success, and every verdict in the output is clean;
- ``1`` — the tool ran but found a bug verdict: a check
  violation/deadlock, an optimize run that did not preserve the
  verdict, a repair that left the module non-robust, a failed or
  cancelled job;
- ``2`` — usage error (bad arguments, unknown litmus/table name);
- ``3`` — service errors: daemon unreachable, unknown job id, timeout.

``--json`` subcommands print exactly one JSON document on stdout;
diagnostics go to stderr so piped output stays parseable.
"""

import argparse
import json
import sys

from repro.api import (
    check_module,
    compile_source,
    lint_module,
    port_module,
    run_module,
)
from repro.core.config import AtoMigConfig, PortingLevel

_LEVELS = {level.value: level for level in PortingLevel}


def _load(path, name=None):
    with open(path) as handle:
        source = handle.read()
    if path.endswith(".ir"):
        from repro.ir.parser import parse_module

        return parse_module(source)
    return compile_source(source, name or path)


def _add_level_arg(parser):
    parser.add_argument(
        "--level",
        choices=sorted(_LEVELS),
        default="atomig",
        help="porting strategy (default: atomig)",
    )


def _build_config(args):
    check_robustness = getattr(args, "check_robustness", False)
    repair = getattr(args, "repair", False)
    if not (args.polling or args.barrier_seeds or args.strict_spinloops
            or args.no_inline or args.no_alias or args.prune_protected
            or check_robustness or repair
            or args.alias_mode != "type_based"):
        return None
    return AtoMigConfig(
        detect_polling_loops=args.polling,
        compiler_barrier_seeds=args.barrier_seeds,
        strict_spinloop_definition=args.strict_spinloops,
        inline_before_analysis=not args.no_inline,
        alias_exploration=not args.no_alias,
        prune_protected=args.prune_protected,
        check_robustness=check_robustness,
        repair_mode=repair,
        repair_model=getattr(args, "repair_model", "wmm"),
        repair_arch=getattr(args, "repair_arch", "armv8"),
        alias_mode=args.alias_mode,
    )


def _add_config_args(parser):
    parser.add_argument("--polling", action="store_true",
                        help="enable the polling-loop extension (paper §6)")
    parser.add_argument("--barrier-seeds", action="store_true",
                        help="enable compiler-barrier seeding (paper §6)")
    parser.add_argument("--strict-spinloops", action="store_true",
                        help="use the stricter spinloop definition (ablation)")
    parser.add_argument("--no-inline", action="store_true",
                        help="disable pre-analysis inlining (ablation)")
    parser.add_argument("--no-alias", action="store_true",
                        help="disable alias exploration (ablation)")
    parser.add_argument("--prune-protected", action="store_true",
                        help="exempt lint-proven lock-protected accesses "
                             "from atomization")
    parser.add_argument("--check-robustness", action="store_true",
                        help="after porting, attach the static "
                             "Shasha-Snir robustness classification to "
                             "the report")
    parser.add_argument("--repair", action="store_true",
                        help="after porting, statically repair any "
                             "remaining non-robustness with a min-cost "
                             "set of fences / order strengthenings")
    parser.add_argument("--repair-model", choices=["tso", "wmm"],
                        default="wmm",
                        help="memory model the --repair pass targets "
                             "(default: wmm)")
    parser.add_argument("--repair-arch", choices=["armv8", "power"],
                        default="armv8",
                        help="cost model weighting the --repair pass "
                             "(default: armv8)")
    parser.add_argument("--alias-mode", choices=("type_based", "points_to"),
                        default="type_based",
                        help="location-key precision for alias exploration: "
                             "the paper's type-based scheme, or Andersen "
                             "points-to classes with thread-escape pruning")


def cmd_port(args):
    module = _load(args.file)
    config = _build_config(args)
    if args.jobs and args.jobs > 1:
        config = config or AtoMigConfig()
        config.function_jobs = args.jobs
    ported, report = port_module(
        module, _LEVELS[args.level], config=config,
        optimize=args.optimize,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        if report.repair:
            print(_repair_summary(report.repair))
        if report.optimization:
            print(_opt_summary(report.optimization))
        if report.spinloops:
            print(f"spinloops: {report.spinloops}")
        if report.optimistic_loops:
            print(f"optimistic loops: {report.optimistic_loops}")
        if report.fences_inserted:
            print(f"explicit fences inserted: {report.fences_inserted}")
        if report.pruned_protected:
            print(f"lock-protected accesses pruned: "
                  f"{report.pruned_protected}")
        if report.pruned_thread_local:
            print(f"thread-local accesses pruned: "
                  f"{report.pruned_thread_local}")
        for note in report.notes:
            print(f"note: {note}")
        if args.profile:
            from repro.core.profile import format_pipeline_stats

            print("pipeline profile:")
            print(format_pipeline_stats(report.stats))
    if args.emit_ir:
        from repro.ir.printer import print_module

        text = print_module(ported)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"ported IR written to {args.output}", file=sys.stderr)
        elif args.json:
            # IR on stdout would corrupt the JSON document.
            print("port --json: --emit-ir needs -o/--output",
                  file=sys.stderr)
        else:
            print(text)
    return 0


def _repair_summary(payload):
    """One-line rendering of a RepairReport dict."""
    if not payload["rounds"]:
        return (f"repair [{payload['model']}/{payload['arch']}]: "
                f"already robust, nothing to repair")
    status = "robust" if payload["robust_after"] else "STILL NON-ROBUST"
    return (
        f"repair [{payload['model']}/{payload['arch']}]: {status} — "
        f"{payload['cycles_broken']} cycles broken by "
        f"{payload['strengthened']} strengthenings + "
        f"{payload['fences_added']} fences (+{payload['total_cost']} "
        f"cycles, {payload['solver']} cover)"
    )


def _opt_summary(payload):
    """One-line rendering of an OptimizationReport dict."""
    before = payload["barrier_cost_before"]
    saved_pct = 100.0 * payload["cycles_saved"] / before if before else 0.0
    verdict = payload["baseline_outcome"] or "n/a"
    if not payload["verdict_preserved"] and payload["baseline_outcome"]:
        verdict += f" -> {payload['final_outcome']} [NOT PRESERVED]"
    return (
        f"optimize: {payload['accesses_weakened']}/{payload['candidates']} "
        f"accesses weakened, {payload['fences_deleted']} fences deleted, "
        f"barrier cost {before} -> {payload['barrier_cost_after']} "
        f"(-{saved_pct:.0f}%), {payload['checks_run']} oracle checks, "
        f"verdict {verdict}"
    )


def cmd_optimize(args):
    """Port, then weaken barriers as far as the oracle certifies."""
    module = _load(args.file)
    if args.level != "original":
        module, _report = port_module(
            module, _LEVELS[args.level], config=_build_config(args)
        )
    counts = None
    if args.dynamic:
        result = run_module(module, record_counts=True)
        counts = result.stats.instr_counts
    from repro.api import optimize_module

    optimized, report = optimize_module(
        module, model=args.model, max_steps=args.max_steps,
        jobs=args.jobs, counts=counts,
        require_marks=not args.all_accesses,
        robustness=args.robustness,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.emit_ir:
        from repro.ir.printer import print_module

        text = print_module(optimized)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"optimized IR written to {args.output}")
        else:
            print(text)
    return 0 if report.verdict_preserved or not report.baseline_outcome else 1


def _check_results(args):
    """Run one check per requested model, possibly on a process pool."""
    # --no-reduce is the deprecated both-knobs-off alias; the explicit
    # --por/--macro flags win over it (resolve_reduction's contract).
    reduce = False if args.no_reduce else None
    # --repair needs the porting pipeline even at level original (the
    # repair stage lives there).
    needs_port = args.level != "original" or args.repair
    if args.jobs and args.jobs > 1:
        from repro.mc.parallel import CheckTask, run_tasks

        with open(args.file) as handle:
            source = handle.read()
        tasks = [
            CheckTask(
                name=args.file, source=source, model=model,
                level=args.level if needs_port else None,
                max_steps=args.max_steps, reduce=reduce,
                por=args.por, macro=args.macro,
                config=_build_config(args), is_ir=args.file.endswith(".ir"),
                robustness=args.robustness, engine=args.engine,
            )
            for model in args.models
        ]
        return zip(args.models, run_tasks(tasks, jobs=args.jobs))
    module = _load(args.file)
    if needs_port:
        module, _report = port_module(
            module, _LEVELS[args.level], config=_build_config(args)
        )
    engine_kwargs = {} if args.engine is None else {"engine": args.engine}
    return (
        (model, check_module(
            module, model=model, max_steps=args.max_steps, reduce=reduce,
            por=args.por, macro=args.macro,
            robustness=args.robustness, **engine_kwargs,
        ))
        for model in args.models
    )


def cmd_check(args):
    failures = 0
    rows = []
    for model, result in _check_results(args):
        if result.violation is not None or result.deadlock:
            failures += 1
        if args.json:
            from repro.serve.queue import check_to_dict

            rows.append(check_to_dict(result))
            continue
        if result.violation is not None:
            status = f"VIOLATION: {result.violation}"
        elif result.deadlock:
            status = "DEADLOCK"
        else:
            status = "ok"
        extra = " (truncated)" if result.truncated else ""
        if getattr(result, "verdict_source", "exploration") == "robustness":
            extra += ", statically robust"
        print(f"{model:>3}: {status}  "
              f"[{result.states_explored} states{extra}]")
        if args.stats and result.stats is not None:
            from repro.core.report import format_exploration_stats

            print(format_exploration_stats(result.stats))
        if result.violation is not None and args.trace:
            for step in result.trace[-args.trace:]:
                print(f"      {step}")
        elif result.deadlock and args.trace:
            for step in result.deadlock_trace[-args.trace:]:
                print(f"      {step}")
    if args.json:
        print(json.dumps(rows, indent=2))
    return 1 if failures else 0


def cmd_run(args):
    module = _load(args.file)
    if args.level != "original":
        module, _report = port_module(
            module, _LEVELS[args.level], config=_build_config(args)
        )
    result = run_module(module, schedule_seed=args.seed)
    print(f"exit value: {result.exit_value}")
    if result.output:
        print(f"output: {result.output}")
    print(f"cycles: {result.cycles}")
    print(f"stats: {result.stats.summary()}")
    return 0


def cmd_diff(args):
    from repro.core.diff import diff_modules

    module = _load(args.file)
    ported, report = port_module(
        module, _LEVELS[args.level], config=_build_config(args)
    )
    print(report.summary())
    print()
    print(diff_modules(module, ported).render())
    return 0


def cmd_aliases(args):
    """Inspect location keys, points-to sets and thread-escape verdicts."""
    from repro.analysis.cache import AnalysisCache

    module = _load(args.file)
    if not args.no_inline:
        from repro.transform.inline import inline_module

        inline_module(module)
    cache = AnalysisCache(module)
    provider = cache.key_provider(args.alias_mode)
    pointsto = cache.pointsto()
    escape = cache.thread_escape()

    print(f"aliases {args.file} [{args.alias_mode}]")
    print(f"  abstract objects ({len(pointsto.objects)}):")
    for obj in sorted(pointsto.objects, key=lambda o: o.label):
        verdict = "shared" if escape.is_shared(obj) else "thread-local"
        print(f"    {obj.label:30s} {obj.kind:6s} {verdict}")

    for function in module.functions.values():
        lines = []
        for block in function.blocks:
            for instr in block.instructions:
                if not instr.is_memory_access():
                    continue
                pointer = instr.accessed_pointer()
                if pointer is None:
                    continue
                key, origin = provider.key_with_origin(function, pointer)
                if key is None and not args.all:
                    continue
                local = escape.pointer_is_thread_local(pointer)
                suffix = "  thread-local" if local else ""
                lines.append(
                    f"    {block.label:12s} {instr!r:44s} "
                    f"key={key} [{origin}]{suffix}"
                )
        if lines:
            print(f"  @{function.name}:")
            print("\n".join(lines))
    return 0


def cmd_lint(args):
    if args.corpus:
        return _lint_corpus(args)
    if not args.file:
        print("lint: a FILE is required unless --corpus is given",
              file=sys.stderr)
        return 2
    module = _load(args.file)
    report = lint_module(module, name_heuristic=not args.no_name_heuristic)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render(show=_lint_classes(args)))
    racy = report.counts().get("racy", 0)
    return 1 if args.fail_on_racy and racy else 0


def _lint_classes(args):
    if args.all:
        return ("lock", "protected", "unshared", "read_only", "racy",
                "unknown", "unreachable")
    return ("racy", "unknown", "protected", "lock")


def _lint_corpus(args):
    """Lint every corpus benchmark (the CI regression snapshot)."""
    from repro.bench.corpus import BENCHMARKS

    for name in sorted(BENCHMARKS):
        benchmark = BENCHMARKS[name]
        source = benchmark.mc_source or benchmark.perf_source
        if source is None:
            continue
        module = compile_source(source(), name)
        report = lint_module(module)
        counts = report.counts()
        histogram = " ".join(
            f"{key}={counts[key]}" for key in sorted(counts)
        )
        dead = len(report.dead_fences or ())
        print(f"{name:20s} locks={len(report.races.locks)} {histogram} "
              f"dead_fences={dead}")
    return 0


def cmd_robustness(args):
    """Static critical-cycle robustness report (no exploration)."""
    from repro.analysis.robustness import analyze_robustness

    if args.corpus:
        return _robustness_corpus(args)
    if not args.file:
        print("robustness: a FILE is required unless --corpus is given",
              file=sys.stderr)
        return 2
    module = _load(args.file)
    if args.level != "original":
        module, _report = port_module(
            module, _LEVELS[args.level], config=_build_config(args)
        )
    result = analyze_robustness(
        module, model=args.model, max_witnesses=args.max_witnesses
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.robust else 1


def _robustness_corpus(args):
    """Classify every corpus benchmark (the CI regression snapshot).

    One line per benchmark with the original-level and atomig-level
    classification under ``--model`` — the snapshot CI diffs, so a
    change in any module's robustness class is a loud event.  Witness
    order is deterministic (sorted by location key), so the snapshot is
    stable across runs.  ``--json`` emits one machine-readable
    :class:`RobustnessResult` payload per benchmark and level instead,
    with full per-access witness provenance.
    """
    from repro.analysis.robustness import analyze_robustness
    from repro.bench.corpus import BENCHMARKS

    payloads = []
    for name in sorted(BENCHMARKS):
        benchmark = BENCHMARKS[name]
        source = benchmark.mc_source or benchmark.perf_source
        if source is None:
            continue
        module = compile_source(source(), name)
        fields = []
        for level in ("original", "atomig"):
            work = module
            if level != "original":
                work, _report = port_module(
                    module.clone(), _LEVELS[level]
                )
            result = analyze_robustness(work, model=args.model)
            if args.json:
                payload = result.to_dict()
                payload["benchmark"] = name
                payload["level"] = level
                payloads.append(payload)
            verdict = "robust" if result.robust else "non-robust"
            fields.append(f"{level}={verdict}")
        if not args.json:
            print(f"{name:20s} [{args.model}] {'  '.join(fields)}")
    if args.json:
        print(json.dumps(payloads, indent=2))
    return 0


def cmd_repair(args):
    """Statically repair a module to robustness (min-cost fences)."""
    from repro.api import repair_module

    if args.corpus:
        return _repair_corpus(args)
    if not args.file:
        print("repair: a FILE is required unless --corpus is given",
              file=sys.stderr)
        return 2
    module = _load(args.file)
    if args.level != "original":
        module, _report = port_module(
            module, _LEVELS[args.level], config=_build_config(args)
        )
    repaired, report = repair_module(
        module, model=args.model, arch=args.arch, verify=args.verify,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.emit_ir:
        from repro.ir.printer import print_module

        text = print_module(repaired)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"repaired IR written to {args.output}")
        else:
            print(text)
    return 0 if report.robust_after else 1


def _repair_corpus(args):
    """Re-synthesize every corpus benchmark (the CI regression snapshot).

    One line per benchmark: the robust blanket-SC baseline cost, the
    synthesized repair cost under ``--arch``, the action mix and the
    solver evidence (see
    :func:`repro.analysis.repair.resynthesize_ported`).  Deterministic,
    so CI can diff it against ``benchmarks/results/repair_corpus.txt``.
    """
    from repro.analysis.repair import resynthesize_ported
    from repro.bench.corpus import BENCHMARKS

    failures = 0
    for name in sorted(BENCHMARKS):
        benchmark = BENCHMARKS[name]
        source = benchmark.mc_source or benchmark.perf_source
        if source is None:
            continue
        module = compile_source(source(), name)
        ported, _report = port_module(module, _LEVELS["atomig"])
        _repaired, report = resynthesize_ported(
            ported, model=args.model, arch=args.arch,
        )
        fallback = any("fell back" in note for note in report.notes)
        if not report.robust_after:
            failures += 1
        print(
            f"{name:28s} [{args.model}/{report.arch}]"
            f" sc={report.incumbent.get('barriers', 0)}"
            f" repair={report.barrier_cost_after}"
            f" strengthened={report.strengthened}"
            f" fences={report.fences_added}"
            f" solver={report.solver}"
            + (" fallback" if fallback else "")
            + ("" if report.robust_after else " NON-ROBUST")
        )
    return 1 if failures else 0


def cmd_litmus(args):
    from repro.mc.litmus import LITMUS_TESTS, expected_verdict, run_litmus

    names = args.names or sorted(LITMUS_TESTS)
    mismatches = 0
    for name in names:
        if name not in LITMUS_TESTS:
            print(f"unknown litmus test {name!r}; "
                  f"available: {', '.join(sorted(LITMUS_TESTS))}",
                  file=sys.stderr)
            return 2
        verdicts = []
        for model in ("sc", "tso", "wmm"):
            result = run_litmus(name, model)
            expected = expected_verdict(name, model)
            mark = "ok " if result.ok else "bug"
            suffix = "" if result.ok == expected else " [MISMATCH]"
            if result.ok != expected:
                mismatches += 1
            verdicts.append(f"{model}={mark}{suffix}")
        print(f"{name:15s} {'  '.join(verdicts)}")
    return 1 if mismatches else 0


def _print_table_profile(rows):
    """Merge and render the ``_stats`` payloads attached to table rows."""
    from repro.core.profile import PipelineStats, format_pipeline_stats

    merged = PipelineStats(ports=0)
    found = False
    for row in rows:
        payload = row.get("_stats")
        if payload:
            merged.merge(PipelineStats.from_dict(payload))
            found = True
    if found:
        print("pipeline profile (all ports merged):")
        print(format_pipeline_stats(merged))


def cmd_tables(args):
    from repro.bench import tables as T

    default = [1, 2, 3, 4, 5, 6, 7, 8]
    if args.optimize:
        default.append(9)
    selected = args.numbers or default
    profile = args.profile
    specs = {
        1: (lambda: T.table1(),
            ["approach", "safe", "efficient", "scalable", "practical"],
            "Table 1: Comparison of Porting Approaches"),
        2: (lambda: T.table2(jobs=args.jobs,
                             robustness=args.robustness),
            ["benchmark", "original", "expl", "spin", "atomig",
             "matches_paper"],
            "Table 2: Verification results (WMM)"),
        3: (lambda: T.table3(jobs=args.jobs, profile=profile),
            ["application", "sloc", "spinloops", "optiloops",
             "build_seconds", "atomig_seconds", "build_ratio",
             "atomig_explicit", "atomig_implicit", "naive_implicit"],
            "Table 3: AtoMig statistics (synthetic, 1/100 scale)"),
        4: (lambda: T.table4(),
            ["counter", "original", "atomig"],
            "Table 4: dynamic barriers (Memcached)"),
        5: (lambda: T.table5(jobs=args.jobs, profile=profile),
            ["benchmark", "naive", "atomig", "paper_naive", "paper_atomig"],
            "Table 5: Naive / AtoMig slowdowns"),
        6: (lambda: T.table6(jobs=args.jobs, profile=profile),
            ["benchmark", "naive", "lasagne", "atomig",
             "paper_naive", "paper_lasagne", "paper_atomig"],
            "Table 6: Phoenix"),
        7: (lambda: T.table_lint(jobs=args.jobs),
            ["benchmark", "atomig_impl", "pruned_impl", "pruned", "wmm_ok"],
            "Table 7: lock-protection pruning (atomig lint)"),
        8: (lambda: T.table8(jobs=args.jobs),
            ["benchmark", "type_based_impl", "points_to_impl", "delta",
             "pts_keyed", "pruned_local", "tb_wmm_ok", "pt_wmm_ok"],
            "Table 8: alias precision (type_based vs points_to)"),
        9: (lambda: T.table9(jobs=args.jobs,
                             robustness=args.robustness),
            ["benchmark", "cost_sc", "cost_opt", "saved_pct", "weakened",
             "fences_gone", "frozen", "checks", "verdict_kept"],
            "Table 9: oracle-guided barrier weakening (SC vs optimized)"),
        10: (lambda: T.table10(jobs=args.jobs),
             ["benchmark", "arch", "cost_sc", "cost_repair", "cost_opt",
              "strengthened", "fences", "solver", "robust_after",
              "verdict_kept"],
             "Table 10: static repair vs oracle weakening, per "
             "architecture"),
    }
    for number in selected:
        if number not in specs:
            print(f"no table {number}", file=sys.stderr)
            return 2
        rows_fn, columns, title = specs[number]
        rows = rows_fn()
        print(T.format_table(rows, columns, title=title))
        if profile:
            _print_table_profile(rows)
        print()
    return 0


def cmd_serve(args):
    """Run the porting-as-a-service daemon until SIGTERM/SIGINT.

    Signals do not run ``atexit`` hooks, so shutdown is explicit: the
    handlers only set an event, and the main thread then stops the
    HTTP server, drains running jobs (queued ones stay ``queued`` on
    disk and resume on the next start) and closes the persistent
    process pools.
    """
    import signal
    import threading

    from repro.api import start_service

    handle = start_service(
        host=args.host, port=args.port, job_dir=args.dir,
        workers=args.workers, fanout=args.fanout,
    )
    info = {
        "url": handle.url,
        "job_dir": handle.daemon.store.directory,
        "workers": handle.daemon.workers,
        "fanout": handle.daemon.fanout,
    }
    if args.json:
        print(json.dumps(info), flush=True)
    else:
        print(f"atomig serve: listening on {info['url']} "
              f"(jobs in {info['job_dir']}, workers={info['workers']}, "
              f"fanout={info['fanout']})", flush=True)

    stop = threading.Event()

    def _request_stop(signum, _frame):
        print(f"atomig serve: caught signal {signum}, draining...",
              file=sys.stderr, flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        stop.wait()
    finally:
        handle.stop(drain=True)
        print("atomig serve: stopped", file=sys.stderr)
    return 0


def _client(args):
    from repro.serve import ServeClient

    return ServeClient(args.url, timeout=args.timeout)


def _render_job(record):
    """One-line human rendering of a job record."""
    parts = [record["id"], record["kind"], record["state"]]
    if record.get("cache_hit"):
        parts.append("cache-hit")
    if record.get("seconds") is not None:
        parts.append(f"{record['seconds']:.2f}s")
    if record.get("error"):
        parts.append(f"error: {record['error']}")
    return "  ".join(parts)


def cmd_submit(args):
    from repro.serve import ServeError, result_exit_code

    with open(args.file) as handle:
        source = handle.read()
    module = {
        "name": args.name or args.file,
        "source": source,
        "is_ir": args.file.endswith(".ir"),
    }
    client = _client(args)
    try:
        record = client.submit(
            args.kind, [module], level=args.level, model=args.model,
            priority=args.priority,
        )
        if args.wait:
            record = client.result(
                record["id"], wait=True, timeout=args.timeout
            )
    except ServeError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(_render_job(record))
    return result_exit_code(record) if args.wait else 0


def cmd_status(args):
    from repro.serve import ServeError

    client = _client(args)
    try:
        if args.job:
            record = client.status(args.job)
            if args.json:
                print(json.dumps(record, indent=2))
            else:
                print(_render_job(record))
            return 0
        jobs = client.jobs()
    except ServeError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(jobs, indent=2))
    else:
        for record in jobs:
            print(_render_job(record))
    return 0


def cmd_result(args):
    from repro.serve import TERMINAL_STATES, ServeError, result_exit_code

    client = _client(args)
    try:
        record = client.result(
            args.job, wait=args.wait, timeout=args.timeout
        )
    except ServeError as exc:
        print(f"result: {exc}", file=sys.stderr)
        return 3
    if record.get("state") not in TERMINAL_STATES:
        print(f"result: job {args.job} is {record.get('state')} "
              f"(use --wait)", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(_render_job(record))
        result = record.get("result") or {}
        for row in result.get("modules", result.get("checks", ())):
            name = row.get("name", "?")
            if "outcome" in row:
                print(f"  {name} [{row.get('model')}]: {row['outcome']} "
                      f"({row.get('states_explored')} states)")
            elif row.get("report") is not None:
                report = row["report"]
                summary = (
                    f"barriers {report.get('ported_explicit_barriers')}"
                    f"+{report.get('ported_implicit_barriers')}i"
                    if "ported_explicit_barriers" in report
                    else "; ".join(
                        f"{key}={report[key]}"
                        for key in ("robust_after", "verdict_preserved",
                                    "fences_added", "accesses_weakened")
                        if key in report
                    ) or "done"
                )
                print(f"  {name}: {summary}")
    return result_exit_code(record)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="atomig",
        description="AtoMig reproduction: port TSO programs to WMM.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    port = sub.add_parser("port", help="port a Mini-C file")
    port.add_argument("file")
    _add_level_arg(port)
    _add_config_args(port)
    port.add_argument("--emit-ir", action="store_true",
                      help="print the ported IR")
    port.add_argument("-o", "--output", help="write the ported IR here")
    port.add_argument("--profile", action="store_true",
                      help="print per-stage wall-clock of the pipeline")
    port.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="analyze functions on N worker threads in the "
                           "per-function stages (annotations, spinloops, "
                           "optimistic)")
    port.add_argument("--optimize", action="store_true",
                      help="after porting, weaken barriers under the "
                           "model-checking oracle (verdict-preserving)")
    port.add_argument("--json", action="store_true",
                      help="emit the PortingReport as JSON on stdout "
                           "(diagnostics go to stderr)")
    port.set_defaults(func=cmd_port)

    optimize = sub.add_parser(
        "optimize",
        help="port, then relax memory orders as far as the model-checking "
             "oracle certifies the verdict unchanged",
    )
    optimize.add_argument("file")
    _add_level_arg(optimize)
    _add_config_args(optimize)
    optimize.add_argument("--model", choices=["sc", "tso", "wmm"],
                          default="wmm",
                          help="memory model the oracle checks under "
                               "(default: wmm)")
    optimize.add_argument("--max-steps", type=int, default=2500)
    optimize.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="probe bisection halves on N worker "
                               "processes")
    optimize.add_argument("--dynamic", action="store_true",
                          help="run the performance VM first and weight "
                               "candidates by dynamic execution counts")
    optimize.add_argument("--all-accesses", action="store_true",
                          help="also weaken SC accesses without porter "
                               "provenance marks (hand-written modules)")
    optimize.add_argument("--json", action="store_true",
                          help="emit the OptimizationReport as JSON")
    optimize.add_argument("--emit-ir", action="store_true",
                          help="print the optimized IR")
    optimize.add_argument("-o", "--output",
                          help="write the optimized IR here")
    optimize.add_argument("--robustness", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="answer oracle queries statically when the "
                               "weakened module stays robust "
                               "(--no-robustness explores every query)")
    optimize.set_defaults(func=cmd_optimize)

    check = sub.add_parser("check", help="model-check a Mini-C file")
    check.add_argument("file")
    check.add_argument("--models", nargs="+", default=["wmm"],
                       choices=["sc", "tso", "wmm"])
    check.add_argument("--max-steps", type=int, default=2500)
    check.add_argument("--trace", type=int, default=0, metavar="N",
                       help="print the last N trace steps on violation "
                            "or deadlock")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="check the requested models on N worker "
                            "processes")
    check.add_argument("--stats", action="store_true",
                       help="print exploration statistics per model")
    check.add_argument("--no-reduce", action="store_true",
                       help="deprecated alias for '--por none --macro "
                            "off' (disable partial-order reduction and "
                            "macro-stepping together)")
    check.add_argument("--por", default=None,
                       choices=["none", "sleep", "dpor"],
                       help="partial-order-reduction backend: 'sleep' "
                            "(Godefroid sleep sets, the default), "
                            "'dpor' (source-DPOR with happens-before "
                            "clocks and race-driven backtracking), or "
                            "'none' (enumerate every interleaving)")
    check.add_argument("--macro", default=None, choices=["on", "off"],
                       help="macro-stepping of single-choice runs "
                            "(default on; independent of --por so "
                            "ablations can isolate each reduction)")
    check.add_argument("--robustness", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="skip exploration for statically robust "
                            "modules (--no-robustness always explores)")
    check.add_argument("--engine", default=None,
                       choices=["inplace", "clone"],
                       help="exploration engine: 'inplace' (undo-log "
                            "DFS, the fast default) or 'clone' (the "
                            "reference copy-per-transition engine); "
                            "verdicts and state counts are identical "
                            "by construction")
    check.add_argument("--json", action="store_true",
                       help="emit one CheckResult JSON object per model "
                            "on stdout")
    _add_level_arg(check)
    _add_config_args(check)
    check.set_defaults(func=cmd_check)

    run = sub.add_parser("run", help="execute on the performance VM")
    run.add_argument("file")
    run.add_argument("--seed", type=int, default=0)
    _add_level_arg(run)
    _add_config_args(run)
    run.set_defaults(func=cmd_run)

    diff = sub.add_parser(
        "diff", help="show which accesses a port strengthened, and why"
    )
    diff.add_argument("file")
    _add_level_arg(diff)
    _add_config_args(diff)
    diff.set_defaults(func=cmd_diff)

    aliases = sub.add_parser(
        "aliases",
        help="inspect location keys, points-to sets and thread-escape "
             "verdicts per access",
    )
    aliases.add_argument("file")
    aliases.add_argument("--alias-mode", choices=("type_based", "points_to"),
                         default="points_to",
                         help="key provider to display (default: points_to)")
    aliases.add_argument("--all", action="store_true",
                         help="also list accesses without any location key")
    aliases.add_argument("--no-inline", action="store_true",
                         help="analyze the module without pre-inlining")
    aliases.set_defaults(func=cmd_aliases)

    lint = sub.add_parser(
        "lint", help="static race & portability linter (lockset analysis)"
    )
    lint.add_argument("file", nargs="?",
                      help="Mini-C or .ir file to lint")
    lint.add_argument("--json", action="store_true",
                      help="emit the structured report as JSON")
    lint.add_argument("--all", action="store_true",
                      help="show every classification, not just the "
                           "actionable ones")
    lint.add_argument("--fail-on-racy", action="store_true",
                      help="exit 1 when racy accesses are found")
    lint.add_argument("--no-name-heuristic", action="store_true",
                      help="disable the lock/unlock function-pair "
                           "name heuristic")
    lint.add_argument("--corpus", action="store_true",
                      help="lint every corpus benchmark (CI snapshot mode)")
    lint.set_defaults(func=cmd_lint)

    robustness = sub.add_parser(
        "robustness",
        help="static Shasha-Snir robustness report: critical cycles "
             "whose delays the model may leave unfenced",
    )
    robustness.add_argument("file", nargs="?",
                            help="Mini-C or .ir file to analyze")
    robustness.add_argument("--model", choices=["tso", "wmm"],
                            default="wmm",
                            help="memory model to analyze against "
                                 "(default: wmm)")
    robustness.add_argument("--json", action="store_true",
                            help="emit the RobustnessResult as JSON")
    robustness.add_argument("--max-witnesses", type=int, default=5,
                            metavar="N",
                            help="report at most N critical cycles")
    robustness.add_argument("--corpus", action="store_true",
                            help="classify every corpus benchmark at "
                                 "original and atomig levels (CI "
                                 "snapshot mode)")
    _add_level_arg(robustness)
    _add_config_args(robustness)
    robustness.set_defaults(func=cmd_robustness)

    repair = sub.add_parser(
        "repair",
        help="statically repair a module to robustness: break every "
             "critical cycle with a min-cost set of fences / order "
             "strengthenings",
    )
    repair.add_argument("file", nargs="?",
                        help="Mini-C or .ir file to repair")
    repair.add_argument("--model", choices=["tso", "wmm"], default="wmm",
                        help="memory model to repair against "
                             "(default: wmm)")
    repair.add_argument("--arch", choices=["armv8", "power"],
                        default="armv8",
                        help="cost model weighting the repair "
                             "(default: armv8)")
    repair.add_argument("--json", action="store_true",
                        help="emit the RepairReport as JSON")
    repair.add_argument("--verify", action="store_true",
                        help="model-check the repaired module with the "
                             "robustness fast path and record the "
                             "0-state evidence")
    repair.add_argument("--emit-ir", action="store_true",
                        help="print the repaired IR")
    repair.add_argument("-o", "--output",
                        help="write the repaired IR here")
    repair.add_argument("--corpus", action="store_true",
                        help="repair every corpus benchmark at atomig "
                             "level (CI snapshot mode)")
    _add_level_arg(repair)
    _add_config_args(repair)
    repair.set_defaults(func=cmd_repair)

    litmus = sub.add_parser("litmus", help="run calibration litmus tests")
    litmus.add_argument("names", nargs="*")
    litmus.set_defaults(func=cmd_litmus)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument("numbers", nargs="*", type=int)
    tables.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan table rows across N worker processes "
                             "(model checks for tables 2/7/8, port jobs "
                             "for tables 3/5/6)")
    tables.add_argument("--profile", action="store_true",
                        help="print the merged per-stage pipeline profile "
                             "under each porting table (3, 5, 6)")
    tables.add_argument("--optimize", action="store_true",
                        help="include Table 9 (oracle-guided barrier "
                             "weakening) in the default selection")
    tables.add_argument("--robustness", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="force the robustness fast path on/off for "
                             "tables 2 and 9 (default: per-table "
                             "defaults — off for 2, on for 9)")
    tables.set_defaults(func=cmd_tables)

    serve = sub.add_parser(
        "serve",
        help="run the porting-as-a-service daemon (durable job store, "
             "priority queue, HTTP API; see repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8337,
                       help="TCP port; 0 binds an ephemeral port "
                            "(default: 8337)")
    serve.add_argument("--dir", default=None, metavar="DIR",
                       help="job store directory (default: ATOMIG_JOB_DIR "
                            "or ~/.cache/atomig/jobs)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="job worker threads; 0 accepts jobs without "
                            "executing them (default: min(4, cpus))")
    serve.add_argument("--fanout", type=int, default=1, metavar="N",
                       help="process-pool width multi-module jobs fan "
                            "out with (default: 1)")
    serve.add_argument("--json", action="store_true",
                       help="print the listening info as one JSON line")
    serve.set_defaults(func=cmd_serve)

    def _add_client_args(parser):
        parser.add_argument("--url", default=None,
                            help="service URL (default: ATOMIG_SERVE_URL "
                                 "or http://127.0.0.1:8337)")
        parser.add_argument("--timeout", type=float, default=300.0,
                            help="request / --wait timeout in seconds "
                                 "(default: 300)")
        parser.add_argument("--json", action="store_true",
                            help="emit the job record(s) as JSON")

    submit = sub.add_parser(
        "submit", help="submit a file to a running atomig serve daemon"
    )
    submit.add_argument("file", help="Mini-C or .ir file to submit")
    submit.add_argument("--kind", default="port",
                        choices=["port", "check", "optimize", "repair"],
                        help="job kind (default: port)")
    submit.add_argument("--level", default=None, choices=sorted(_LEVELS),
                        help="porting level (default: atomig)")
    submit.add_argument("--model", default=None,
                        choices=["sc", "tso", "wmm"],
                        help="memory model for check/optimize/repair jobs")
    submit.add_argument("--name", default=None,
                        help="module name (default: the file path)")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority; higher runs first "
                             "(default: 0)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal and exit "
                             "with its verdict code")
    _add_client_args(submit)
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status", help="show job states from a running daemon"
    )
    status.add_argument("job", nargs="?", default=None,
                        help="job id (omit to list every job)")
    _add_client_args(status)
    status.set_defaults(func=cmd_status)

    result = sub.add_parser(
        "result", help="fetch a job's result from a running daemon"
    )
    result.add_argument("job", help="job id")
    result.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal")
    _add_client_args(result)
    result.set_defaults(func=cmd_result)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
