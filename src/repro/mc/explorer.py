"""Exhaustive state-space exploration over the operational machine.

A stateless-model-checking-style DFS: every quiescent state's canonical
form is hashed, revisits are pruned, and the per-thread step bound keeps
spinloops finite (a bound hit marks the result *truncated* rather than
failing).  Assertion violations surface as counterexample traces.
"""

from dataclasses import dataclass, field

from repro.mc.machine import Context, FINISHED, LIMIT, Machine
from repro.mc.models import get_model


@dataclass
class CheckResult:
    """Outcome of model-checking one module under one memory model."""

    model: str
    #: None when every execution passes; otherwise the failure message.
    violation: str = None
    #: Scheduler/commit trace of the failing execution (when any).
    trace: list = field(default_factory=list)
    states_explored: int = 0
    #: True when a bound (steps / states) cut exploration short.
    truncated: bool = False
    notes: list = field(default_factory=list)

    @property
    def ok(self):
        return self.violation is None

    def __repr__(self):
        status = "ok" if self.ok else f"VIOLATION: {self.violation}"
        extra = " (truncated)" if self.truncated else ""
        return (
            f"CheckResult({self.model}, {status}, "
            f"{self.states_explored} states{extra})"
        )


def check_module(module, model="wmm", entry="main", max_steps=2500,
                 max_states=2_000_000):
    """Exhaustively check all executions of ``module`` from ``entry``.

    Returns the first assertion violation found (depth-first order) or
    an ``ok`` result once the reachable quiescent-state space is
    exhausted.
    """
    model_obj = get_model(model)
    context = Context(module, model_obj, entry=entry)
    machine = Machine(context, max_steps=max_steps)
    result = CheckResult(model=model)

    try:
        initial = machine.initial_state()
    except Exception as error:  # setup errors are violations too
        result.violation = f"initialization failed: {error}"
        return result

    stack = [initial]
    visited = set()
    while stack:
        state = stack.pop()
        if state.violation is not None:
            result.violation = state.violation
            result.trace = list(state.trace)
            return result
        key = hash(state.canonical())
        if key in visited:
            continue
        visited.add(key)
        result.states_explored += 1
        if result.states_explored >= max_states:
            result.truncated = True
            result.notes.append("state budget exhausted")
            return result

        if any(t.status == LIMIT for t in state.threads.values()):
            result.truncated = True
            continue

        actions = machine.enabled_actions(state)
        if not actions:
            if all(t.status == FINISHED for t in state.threads.values()):
                continue  # normal termination
            blocked = [
                f"T{tid}:{t.status}" for tid, t in state.threads.items()
                if t.status != FINISHED
            ]
            result.notes.append(f"stuck state pruned ({', '.join(blocked)})")
            result.truncated = True
            continue

        for action in actions:
            successor = state.clone()
            machine.apply_action(successor, action)
            stack.append(successor)
    return result


def compare_models(module, models=("sc", "tso", "wmm"), **kwargs):
    """Check ``module`` under several models; returns {model: result}."""
    return {name: check_module(module, model=name, **kwargs) for name in models}
