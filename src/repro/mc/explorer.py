"""Exhaustive state-space exploration over the operational machine.

A stateless-model-checking-style DFS over quiescent states, with a
reduction layer that keeps it verdict-equivalent while exploring far
fewer scheduling decisions (DESIGN.md §6b):

- **Macro-stepping**: runs of states with a single explorable action are
  executed as one uninterruptible macro-step instead of re-entering the
  scheduler, so thread-local stretches never inflate the state count.
- **Invisible-commit determinization**: a commit whose address no other
  live thread can ever reach (static access sets + dynamic windows) is
  taken as a singleton step — a persistent-set reduction.
- **Sleep sets**: commit actions on disjoint addresses by different
  threads commute, so of two independent actions only one ordering is
  explored; the other is put to sleep (Godefroid-style), pruning the
  redundant half of every such diamond.

Dedup keys are 128-bit BLAKE2 digests of the canonical state (not
Python ``hash()``, whose 64-bit collisions could silently prune an
unexplored state and mask a violation).  A stuck state with no enabled
actions and unfinished threads is reported as a *deadlock* outcome with
its trace; bound hits still mark the result *truncated*.

Two engines drive the same traversal (DESIGN.md §6f):

- ``engine="inplace"`` (default): mutates **one** ``State`` under the
  undo-log journal (:mod:`repro.mc.undo`), reverting between siblings,
  and dedups on the incremental digest (:mod:`repro.mc.encode`) — no
  per-transition ``clone()`` and no full-state re-serialization.
- ``engine="clone"``: the legacy path — clone per transition, digest
  via ``State.canonical()`` + ``repr`` + BLAKE2.  Kept as the A/B
  oracle for bisecting engine regressions (``atomig check --engine``).

Both engines visit the same states in the same order and report
identical verdicts, ``states_explored`` and stats (the property suite
and ``tests/mc/test_engines.py`` enforce this); only wall time and the
internal digest values differ.  Set ``ATOMIG_DIGEST_CHECK=1`` to make
the in-place engine verify every incremental digest against a
from-scratch recomputation.
"""

import hashlib
import json
import os
import time
from dataclasses import dataclass, field

from repro.mc.encode import state_digest, state_digest_fresh
from repro.mc.machine import Context, FINISHED, LIMIT, Machine, is_pending
from repro.mc.models import get_model
from repro.mc.undo import revert

ENGINES = ("inplace", "clone")
#: Partial-order-reduction backends: Godefroid sleep sets (the PR-2
#: default), source-DPOR over reads-from equivalence (PR 9,
#: :mod:`repro.mc.dpor`), or none (the slow validation oracle).
PORS = ("none", "sleep", "dpor")
MACROS = ("on", "off")


def resolve_reduction(reduce=None, por=None, macro=None):
    """Resolve the split ``por``/``macro`` knobs and the legacy alias.

    ``reduce=`` historically disabled sleep sets *and* macro-stepping
    together; it survives as a deprecated alias so existing callers
    keep their exact semantics: ``reduce=False`` maps to
    ``(por="none", macro="off")``, anything else to
    ``(por="sleep", macro="on")``.  Explicit ``por``/``macro`` values
    win over the alias, so ablations can isolate each reduction.

    Returns ``(por, macro_on)`` with ``por`` validated against
    :data:`PORS` and ``macro_on`` a bool.
    """
    if por is None:
        por = "none" if reduce is False else "sleep"
    if por not in PORS:
        raise ValueError(f"unknown por backend {por!r} (use one of {PORS})")
    if macro is None:
        macro = "off" if reduce is False else "on"
    if macro in (True, False):  # tolerate programmatic booleans
        macro = "on" if macro else "off"
    if macro not in MACROS:
        raise ValueError(f"unknown macro mode {macro!r} (use 'on'/'off')")
    return por, macro == "on"


@dataclass
class ExplorationStats:
    """Observability record for one exploration (``atomig check --stats``).

    Serialized rows (``to_dict``/``to_json``) carry a ``schema``
    version plus the ``engine``/``por``/``macro`` configuration that
    produced them, so BENCH_mc.json cells are self-describing and a
    consumer can tell a sleep-set row from a DPOR row without context.
    Schema history: 1 = unversioned PR-7 shape (counters only);
    2 = adds version + provenance + the DPOR counters.
    """

    #: to_dict()/to_json() layout version.
    SCHEMA = 2

    #: Scheduling decision points (mirrored into CheckResult).
    states_explored: int = 0
    #: Unique canonical states inserted into the dedup set (sleep/none
    #: backends) or exploration-tree states visited (DPOR, which is
    #: stateless and never dedups across branches).
    states_visited: int = 0
    #: Actions applied (including macro/ample steps).
    transitions: int = 0
    #: Single-choice transitions compressed into macro-steps.
    macro_steps: int = 0
    #: Invisible-commit singleton steps (persistent-set reduction).
    ample_steps: int = 0
    #: Actions skipped because a sleep set proved them redundant.
    sleep_prunes: int = 0
    #: Self-loop transitions dropped (spin retries that do not change
    #: the canonical state — e.g. a failing CAS or a re-read of an
    #: unchanged flag).
    loop_prunes: int = 0
    #: Revisits cut by canonical-state dedup.
    dedup_hits: int = 0
    #: Largest DFS frontier (stack) observed.
    peak_frontier: int = 0
    #: DPOR: reversible races detected between concurrent events.
    races_detected: int = 0
    #: DPOR: reversal actions scheduled into backtrack (todo) sets.
    backtrack_points: int = 0
    #: DPOR: scheduled reversals that had to evict a sleeping action
    #: (wakeup handling, so a reversal is not re-pruned).
    wakeup_reexplorations: int = 0
    #: DPOR: maximal executions explored — one per reads-from
    #: equivalence class reached (plus bound-truncated prefixes).
    equivalence_classes: int = 0
    #: DPOR: path cycles detected, each conservatively re-expanded.
    cycle_expansions: int = 0
    #: Provenance: exploration substrate ("inplace"/"clone").
    engine: str = ""
    #: Provenance: partial-order-reduction backend ("none"/"sleep"/"dpor").
    por: str = ""
    #: Provenance: macro-stepping ("on"/"off").
    macro: str = ""
    wall_seconds: float = 0.0

    @property
    def states_per_second(self):
        # Sub-microsecond walls are timer noise: a rate computed from
        # them is garbage (or inf), so report "not measurable" instead.
        if self.wall_seconds < 1e-6:
            return 0.0
        return self.states_visited / self.wall_seconds

    @property
    def compression_ratio(self):
        """Transitions per scheduling decision (1.0 = no compression)."""
        return self.transitions / max(self.states_explored, 1)

    def to_dict(self):
        return {
            "schema": self.SCHEMA,
            "engine": self.engine,
            "por": self.por,
            "macro": self.macro,
            "states_explored": self.states_explored,
            "states_visited": self.states_visited,
            "transitions": self.transitions,
            "macro_steps": self.macro_steps,
            "ample_steps": self.ample_steps,
            "sleep_prunes": self.sleep_prunes,
            "loop_prunes": self.loop_prunes,
            "dedup_hits": self.dedup_hits,
            "races_detected": self.races_detected,
            "backtrack_points": self.backtrack_points,
            "wakeup_reexplorations": self.wakeup_reexplorations,
            "equivalence_classes": self.equivalence_classes,
            "cycle_expansions": self.cycle_expansions,
            "peak_frontier": self.peak_frontier,
            "wall_seconds": self.wall_seconds,
            "states_per_second": self.states_per_second,
            "compression_ratio": self.compression_ratio,
        }

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary(self):
        provenance = ""
        if self.engine or self.por:
            bits = [b for b in (self.engine, self.por) if b]
            if self.macro:
                bits.append(f"macro={self.macro}")
            provenance = f"[{'/'.join(bits)}] "
        dpor = ""
        if self.por == "dpor":
            dpor = (
                f", {self.races_detected} races -> "
                f"{self.backtrack_points} backtracks "
                f"({self.wakeup_reexplorations} wakeups), "
                f"{self.equivalence_classes} equivalence classes"
            )
        return (
            f"{provenance}"
            f"{self.states_explored} decisions / {self.states_visited} states "
            f"/ {self.transitions} transitions "
            f"({self.compression_ratio:.1f}x compressed), "
            f"{self.macro_steps} macro + {self.ample_steps} ample steps, "
            f"{self.sleep_prunes} sleep + {self.loop_prunes} loop prunes, "
            f"{self.dedup_hits} dedup hits{dpor}, "
            f"frontier {self.peak_frontier}, "
            f"{self.states_per_second:,.0f} states/s, "
            f"{self.wall_seconds:.3f}s"
        )

    def __str__(self):
        return self.summary()


@dataclass
class CheckResult:
    """Outcome of model-checking one module under one memory model."""

    model: str
    #: None when every execution passes; otherwise the failure message.
    violation: str = None
    #: Scheduler/commit trace of the failing execution (when any).
    trace: list = field(default_factory=list)
    states_explored: int = 0
    #: True when a bound (steps / states) cut exploration short.
    truncated: bool = False
    #: True when a reachable state has unfinished threads but no enabled
    #: actions (e.g. a join cycle) — a genuine deadlock, not a bound.
    deadlock: bool = False
    #: Trace of the first deadlocked state found (when any).
    deadlock_trace: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    #: Exploration observability (states/sec, prunes, compression...).
    stats: ExplorationStats = None
    #: "exploration" normally; "robustness" when the static critical-
    #: cycle pre-pass proved the verdict without exploring a state.
    verdict_source: str = "exploration"

    @property
    def ok(self):
        return self.violation is None

    @property
    def outcome(self):
        if self.violation is not None:
            return "violation"
        if self.deadlock:
            return "deadlock"
        if self.truncated:
            return "truncated"
        return "ok"

    def __repr__(self):
        status = "ok" if self.ok else f"VIOLATION: {self.violation}"
        extra = ""
        if self.deadlock:
            extra += " (deadlock)"
        if self.truncated:
            extra += " (truncated)"
        return (
            f"CheckResult({self.model}, {status}, "
            f"{self.states_explored} states{extra})"
        )


def _digest(canonical):
    """Collision-safe dedup key: 128-bit BLAKE2 of the canonical form.

    The canonical form is a nesting of tuples over ints, strings and
    None, for which ``repr`` is a stable, injective serialization.
    Used by the clone engine; the in-place engine dedups on the
    incremental :func:`repro.mc.encode.state_digest` instead.
    """
    return hashlib.blake2b(repr(canonical).encode(), digest_size=16).digest()


def _action_key(state, action):
    """Stable identity of an action, carrying the data independence needs.

    A commit is identified by ``(tid, kind, addr, rank)`` where rank
    counts earlier same-``(kind, addr)`` window entries — *not* by its
    window index, which shifts when the same thread commits an earlier
    (independent) entry.  The key is canonical-stable: two concrete
    states with equal :meth:`State.canonical` forms assign every
    enabled action the same key, so sleep sets stored with visited
    states stay meaningful on revisits.  A key can only go stale
    through a *dependent* action (same thread + same address, or a
    visible step of the thread), which removes it from every sleep set
    first.  The final component records whether the entry still holds
    an unresolved pending value (such entries mutate when the thread
    commits the feeding load, so they are treated as dependent on
    everything same-thread).
    """
    if action[0] == "visible":
        return ("v", action[1])
    _kind, tid, index = action
    window = state.threads[tid].window
    entry = window[index]
    rank = sum(
        1 for earlier in window[:index]
        if earlier.kind == entry.kind and earlier.addr == entry.addr
    )
    pristine = not (
        type(entry.value) is tuple or type(entry.rmw_operand) is tuple
        or type(entry.rmw_expected) is tuple
        or type(entry.rmw_desired) is tuple
    )
    return ("c", tid, entry.kind, entry.addr, rank, pristine)


def _independent(key_a, key_b):
    """May the two actions be reordered without changing the outcome?

    Commits by different threads on different addresses always commute
    (memory effects are disjoint, value resolutions stay thread-local,
    and reservations only constrain same-address operations).  On the
    *same* address, reads still commute: a load commit only reads
    memory, and the "rmw" exec half also only reads (its write happens
    at the later ``rmw_store`` commit) — but two rmw execs race for the
    reservation, so only load/load and load/rmw pairs are independent.
    Two commits of the *same* thread commute when they target different
    addresses and neither entry holds a pending value: ``may_commit``
    constraints only mention earlier window entries, so committing
    either cannot disable the other, and their memory/resolution
    effects are disjoint.  Visible steps depend on everything.
    """
    if key_a[0] != "c" or key_b[0] != "c":
        return False
    if key_a[1] == key_b[1]:  # same thread
        return key_a[3] != key_b[3] and key_a[5] and key_b[5]
    if key_a[3] != key_b[3]:
        return True
    kinds = (key_a[2], key_b[2])
    return "load" in kinds and kinds[0] in ("load", "rmw") \
        and kinds[1] in ("load", "rmw")


def check_module(module, model="wmm", entry="main", max_steps=2500,
                 max_states=2_000_000, reduce=None, robustness=False,
                 engine="inplace", por=None, macro=None):
    """Exhaustively check all executions of ``module`` from ``entry``.

    Returns the first assertion violation found (depth-first order) or
    an ``ok`` result once the reachable quiescent-state space is
    exhausted.

    Reduction is controlled by two independent knobs (resolved by
    :func:`resolve_reduction`):

    - ``por``: the partial-order-reduction backend — ``"sleep"``
      (Godefroid sleep sets + ample steps + loop prunes, the default),
      ``"dpor"`` (source-DPOR with happens-before vector clocks and
      race-driven backtracking, :mod:`repro.mc.dpor`), or ``"none"``
      (the slow oracle every backend is validated against).
    - ``macro``: ``"on"``/``"off"`` — compress single-choice runs into
      uncounted macro-steps.

    ``reduce=`` is a deprecated alias kept for old callers:
    ``reduce=False`` means ``por="none", macro="off"``; explicit
    ``por``/``macro`` win over it.  All backends return identical
    verdicts (the property suite enforces this); they differ only in
    how many states they visit to reach them.

    ``robustness=True`` runs the static critical-cycle pre-pass first
    (:mod:`repro.analysis.robustness`): a robust module provably shows
    no behavior the SC semantics does not, so — given the porting
    pipeline's premise that the program is correct under SC — the
    check returns ``ok`` immediately with zero explored states and
    ``verdict_source="robustness"``.  Non-robust modules fall back to
    full exploration.

    ``engine`` selects the exploration substrate: ``"inplace"`` (the
    fast undo-log engine, default) or ``"clone"`` (the legacy
    clone-per-transition path).  Both produce identical verdicts and
    state counts.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (use one of {ENGINES})")
    por, macro_on = resolve_reduction(reduce, por, macro)
    if robustness and model in ("tso", "wmm"):
        from repro.analysis.robustness import analyze_robustness

        robust = analyze_robustness(module, model=model, max_witnesses=1)
        if robust.robust:
            result = CheckResult(model=model, verdict_source="robustness")
            result.stats = ExplorationStats(
                wall_seconds=robust.wall_seconds,
                engine=engine, por=por,
                macro="on" if macro_on else "off",
            )
            result.notes.append(
                f"statically robust: no critical cycle with an "
                f"unenforced delay ({robust.nodes} shared accesses, "
                f"{robust.conflict_edges} conflict edges); verdict "
                f"equals the SC verdict without exploration"
            )
            return result
    model_obj = get_model(model)
    context = Context(module, model_obj, entry=entry)
    machine = Machine(context, max_steps=max_steps)
    result = CheckResult(model=model)
    stats = ExplorationStats(
        engine=engine, por=por, macro="on" if macro_on else "off"
    )
    result.stats = stats
    started = time.perf_counter()
    if por == "dpor":
        from repro.mc.dpor import explore_dpor

        explore_dpor(machine, result, stats, macro_on, max_states, engine)
    else:
        sleep_on = por == "sleep"
        explore = _explore_clone if engine == "clone" else _explore_inplace
        explore(machine, result, stats, sleep_on, macro_on, max_states)
    stats.wall_seconds = time.perf_counter() - started
    stats.states_explored = result.states_explored
    return result


def _explore_clone(machine, result, stats, sleep_on, macro_on, max_states):
    """Legacy engine: clone the full state per transition (A/B oracle).

    ``sleep_on`` gates the sleep sets, ample (invisible-commit) steps
    and the covered-set bookkeeping; ``macro_on`` gates macro-step
    compression of single-choice runs.  With both off the traversal is
    the historic unreduced oracle (every fresh state counted); with
    either on, the reduced probing path (loop prunes, decision-point
    counting) is used.
    """
    reduce = sleep_on or macro_on
    try:
        initial = machine.initial_state()
    except Exception as error:  # setup errors are violations too
        result.violation = f"initialization failed: {error}"
        return

    stack = [(initial, frozenset())]
    visited = {}  # digest -> sleep set the state was explored under
    while stack:
        if len(stack) > stats.peak_frontier:
            stats.peak_frontier = len(stack)
        state, sleep = stack.pop()
        while True:
            if state.violation is not None:
                result.violation = state.violation
                result.trace = state.trace_list()
                return
            key = _digest(state.canonical())
            stored = visited.get(key)
            revisit = stored is not None
            if revisit:
                if stored <= sleep:
                    stats.dedup_hits += 1
                    break
                # Explored before, but with more actions asleep than
                # now: only the formerly-slept ones still need work
                # (Godefroid's state caching); future visits are
                # covered by both sleep sets.
                visited[key] = stored & sleep
            else:
                visited[key] = sleep
                stats.states_visited += 1
                if not reduce:
                    result.states_explored += 1
                if stats.states_visited >= max_states:
                    result.truncated = True
                    result.notes.append("state budget exhausted")
                    return

            if any(t.status == LIMIT for t in state.threads.values()):
                result.truncated = True
                if reduce and not revisit:
                    result.states_explored += 1
                break

            actions = machine.enabled_actions(state)
            if not actions:
                if revisit:
                    stats.dedup_hits += 1
                    break
                if reduce:
                    result.states_explored += 1
                if all(t.status == FINISHED
                       for t in state.threads.values()):
                    break  # normal termination
                blocked = [
                    f"T{tid}:{t.status}"
                    for tid, t in state.threads.items()
                    if t.status != FINISHED
                ]
                if not result.deadlock:
                    result.deadlock = True
                    result.deadlock_trace = state.trace_list() + [
                        f"deadlock: no enabled actions "
                        f"({', '.join(blocked)})"
                    ]
                result.notes.append(
                    f"deadlocked state ({', '.join(blocked)})"
                )
                break

            pairs = [
                (action, _action_key(state, action)) for action in actions
            ]
            if revisit:
                # Actions outside the stored sleep set were explored on
                # an earlier visit; their subtrees cover this state, so
                # they act like already-explored siblings.
                explorable = [
                    (action, akey) for action, akey in pairs
                    if akey in stored and akey not in sleep
                ]
                covered = [akey for _, akey in pairs if akey not in stored]
                if not explorable:
                    stats.dedup_hits += 1
                    break
            else:
                covered = ()
                if sleep:
                    explorable = [
                        (action, akey) for action, akey in pairs
                        if akey not in sleep
                    ]
                    stats.sleep_prunes += len(pairs) - len(explorable)
                    if not explorable:
                        break  # every ordering already covered elsewhere
                else:
                    explorable = pairs

            if macro_on and len(explorable) == 1:
                # Macro-step: no scheduling choice, run uninterrupted.
                action, akey = explorable[0]
                machine.apply_action(state, action)
                sleep = frozenset(
                    k for k in sleep if _independent(akey, k)
                ) | frozenset(
                    c for c in covered if _independent(akey, c)
                )
                stats.transitions += 1
                stats.macro_steps += 1
                continue

            if sleep_on and not revisit:
                invisible = next(
                    (pair for pair in explorable
                     if machine.action_invisible(state, pair[0])),
                    None,
                )
                if invisible is not None:
                    action, akey = invisible
                    successor = state.clone()
                    machine.apply_action(successor, action)
                    # Cycle provision: determinize only into fresh
                    # territory, else fall back to full expansion so no
                    # competing action is ignored around a cycle.
                    if (successor.violation is not None
                            or _digest(successor.canonical()) not in visited):
                        state = successor
                        sleep = frozenset(
                            k for k in sleep if _independent(akey, k)
                        )
                        stats.transitions += 1
                        stats.ample_steps += 1
                        continue

            # Full expansion: a genuine scheduling decision.
            stats.transitions += len(explorable)
            if reduce:
                children = []
                for action, akey in explorable:
                    successor = state.clone()
                    machine.apply_action(successor, action)
                    # Spin retries (a failing CAS, a re-read of an
                    # unchanged flag) loop back to the canonically same
                    # state: their subtree IS this state's subtree, so
                    # exploring them adds nothing.
                    if (successor.violation is None
                            and _digest(successor.canonical()) == key):
                        stats.loop_prunes += 1
                        continue
                    children.append((successor, akey))
                if not children:
                    break  # nothing but spin retries: covered right here
                if macro_on and len(children) == 1:
                    # The choice was illusory: continue as a macro-step.
                    successor, akey = children[0]
                    state = successor
                    sleep = frozenset(
                        k for k in sleep if _independent(akey, k)
                    ) | frozenset(
                        c for c in covered if _independent(akey, c)
                    )
                    stats.macro_steps += 1
                    continue
                result.states_explored += 1
                for index, (successor, akey) in enumerate(children):
                    child_sleep = {
                        k for k in sleep if _independent(akey, k)
                    }
                    for c in covered:
                        if _independent(akey, c):
                            child_sleep.add(c)
                    # Siblings pushed after this one are popped
                    # (explored) first; their orderings cover this
                    # child's, so they sleep here if independent.
                    if sleep_on:
                        for later_index in range(index + 1, len(children)):
                            later_key = children[later_index][1]
                            if _independent(later_key, akey):
                                child_sleep.add(later_key)
                    stack.append((successor, frozenset(child_sleep)))
                break
            # Unreduced: push every child, reusing the current state for
            # the last one (the DFS pops it first).
            last = len(explorable) - 1
            for index, (action, _akey) in enumerate(explorable):
                successor = state if index == last else state.clone()
                machine.apply_action(successor, action)
                stack.append((successor, frozenset()))
            break


def _explore_inplace(machine, result, stats, sleep_on, macro_on, max_states):
    """Fast engine: one mutable state, undo-log reverts, incremental
    digests.  ``sleep_on``/``macro_on`` split the reduction exactly as
    in :func:`_explore_clone`.

    The traversal is move-for-move identical to :func:`_explore_clone`;
    only the substrate differs.  The DFS stack holds *descriptors*
    ``(mark, action, sleep, digest)``: popping one reverts the journal
    to ``mark`` (restoring the parent state bit-identically, caches
    included) and applies ``action``.  Child probing applies, digests
    and reverts each candidate; the probe digest rides along in the
    descriptor (replaying a deterministic action from a bit-identical
    parent reproduces it), so a popped child is never digested twice.
    The descriptor of a child whose mutations are still applied when it
    is popped carries ``action=None`` and its own post-apply mark, so
    the deepest-first child never pays a revert + re-apply either.
    Nothing is reverted at subtree exits — every pop starts by
    reverting to its own mark, which unwinds whatever the previous
    subtree left behind.
    """
    reduce = sleep_on or macro_on
    interner = machine.ctx.interner
    digest_check = bool(os.environ.get("ATOMIG_DIGEST_CHECK"))
    try:
        state = machine.initial_state()
    except Exception as error:  # setup errors are violations too
        result.violation = f"initialization failed: {error}"
        return

    journal = machine.journal = []
    stack = [(0, None, frozenset(), None)]
    visited = {}  # digest -> sleep set the state was explored under
    while stack:
        if len(stack) > stats.peak_frontier:
            stats.peak_frontier = len(stack)
        mark, action, sleep, key = stack.pop()
        revert(state, journal, mark)
        if action is not None:
            machine.apply_action(state, action)
        while True:
            if state.violation is not None:
                result.violation = state.violation
                result.trace = state.trace_list()
                return
            if key is None:
                key = state_digest(state, interner)
            if digest_check and key != state_digest_fresh(state, interner):
                raise AssertionError(
                    "incremental digest diverged from fresh recomputation"
                )
            stored = visited.get(key)
            revisit = stored is not None
            if revisit:
                if stored <= sleep:
                    stats.dedup_hits += 1
                    break
                visited[key] = stored & sleep
            else:
                visited[key] = sleep
                stats.states_visited += 1
                if not reduce:
                    result.states_explored += 1
                if stats.states_visited >= max_states:
                    result.truncated = True
                    result.notes.append("state budget exhausted")
                    return

            if any(t.status == LIMIT for t in state.threads.values()):
                result.truncated = True
                if reduce and not revisit:
                    result.states_explored += 1
                break

            actions = machine.enabled_actions(state)
            if not actions:
                if revisit:
                    stats.dedup_hits += 1
                    break
                if reduce:
                    result.states_explored += 1
                if all(t.status == FINISHED
                       for t in state.threads.values()):
                    break  # normal termination
                blocked = [
                    f"T{tid}:{t.status}"
                    for tid, t in state.threads.items()
                    if t.status != FINISHED
                ]
                if not result.deadlock:
                    result.deadlock = True
                    result.deadlock_trace = state.trace_list() + [
                        f"deadlock: no enabled actions "
                        f"({', '.join(blocked)})"
                    ]
                result.notes.append(
                    f"deadlocked state ({', '.join(blocked)})"
                )
                break

            pairs = [
                (action, _action_key(state, action)) for action in actions
            ]
            if revisit:
                explorable = [
                    (action, akey) for action, akey in pairs
                    if akey in stored and akey not in sleep
                ]
                covered = [akey for _, akey in pairs if akey not in stored]
                if not explorable:
                    stats.dedup_hits += 1
                    break
            else:
                covered = ()
                if sleep:
                    explorable = [
                        (action, akey) for action, akey in pairs
                        if akey not in sleep
                    ]
                    stats.sleep_prunes += len(pairs) - len(explorable)
                    if not explorable:
                        break  # every ordering already covered elsewhere
                else:
                    explorable = pairs

            if macro_on and len(explorable) == 1:
                # Macro-step: apply directly; macro steps are never
                # individually reverted (an ancestor's mark covers them).
                action, akey = explorable[0]
                machine.apply_action(state, action)
                sleep = frozenset(
                    k for k in sleep if _independent(akey, k)
                ) | frozenset(
                    c for c in covered if _independent(akey, c)
                )
                stats.transitions += 1
                stats.macro_steps += 1
                key = None
                continue

            node_mark = len(journal)
            if sleep_on and not revisit:
                invisible = next(
                    (pair for pair in explorable
                     if machine.action_invisible(state, pair[0])),
                    None,
                )
                if invisible is not None:
                    action, akey = invisible
                    machine.apply_action(state, action)
                    if state.violation is not None:
                        adigest = None
                    else:
                        adigest = state_digest(state, interner)
                    if adigest is None or adigest not in visited:
                        sleep = frozenset(
                            k for k in sleep if _independent(akey, k)
                        )
                        stats.transitions += 1
                        stats.ample_steps += 1
                        key = adigest  # successor digest already known
                        continue
                    # Known territory: undo and fall back to expansion.
                    revert(state, journal, node_mark)

            # Full expansion: a genuine scheduling decision.
            stats.transitions += len(explorable)
            if reduce:
                children = []
                applied_key = None  # akey of the child left applied
                for action, akey in explorable:
                    if len(journal) > node_mark:
                        revert(state, journal, node_mark)
                        applied_key = None
                    machine.apply_action(state, action)
                    if state.violation is None:
                        cdigest = state_digest(state, interner)
                        if cdigest == key:
                            stats.loop_prunes += 1
                            revert(state, journal, node_mark)
                            continue
                    else:
                        cdigest = None
                    children.append((action, akey, cdigest))
                    applied_key = akey
                if not children:
                    break  # nothing but spin retries (state may be
                    # dirty; the next pop reverts to its own mark)
                if macro_on and len(children) == 1:
                    # The choice was illusory: continue as a macro-step.
                    action, akey, cdigest = children[0]
                    if applied_key is None:
                        machine.apply_action(state, action)
                    sleep = frozenset(
                        k for k in sleep if _independent(akey, k)
                    ) | frozenset(
                        c for c in covered if _independent(akey, c)
                    )
                    stats.macro_steps += 1
                    key = cdigest  # probe digest of this very state
                    continue
                result.states_explored += 1
                last = len(children) - 1
                for index, (action, akey, cdigest) in enumerate(children):
                    child_sleep = {
                        k for k in sleep if _independent(akey, k)
                    }
                    for c in covered:
                        if _independent(akey, c):
                            child_sleep.add(c)
                    if sleep_on:
                        for later_index in range(index + 1, len(children)):
                            later_key = children[later_index][1]
                            if _independent(later_key, akey):
                                child_sleep.add(later_key)
                    if index == last and applied_key is not None:
                        # Still applied from probing: popped first, so
                        # hand it its own post-apply mark and no action.
                        stack.append((len(journal), None,
                                      frozenset(child_sleep), cdigest))
                    else:
                        # Replaying `action` from the reverted parent
                        # reproduces the probed state; its digest rides
                        # along so the pop never re-digests.
                        stack.append((node_mark, action,
                                      frozenset(child_sleep), cdigest))
                break
            # Unreduced: push a descriptor per child; the last pushed is
            # popped (applied + explored) first, as in the clone engine.
            for action, _akey in explorable:
                stack.append((node_mark, action, frozenset(), None))
            break


def compare_models(module, models=("sc", "tso", "wmm"), **kwargs):
    """Check ``module`` under several models; returns {model: result}."""
    return {name: check_module(module, model=name, **kwargs) for name in models}
