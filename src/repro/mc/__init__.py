"""Operational weak-memory model checker (the GenMC substitute).

Explores all executions of an IR module under a memory model:

- ``sc``   — sequential consistency;
- ``tso``  — x86-TSO: FIFO store buffer with forwarding;
- ``wmm``  — an Armv8-like weak model: per-thread out-of-order commit
  windows with acquire/release/SC atomics, SC fences, per-location
  coherence and dependency ordering.

See DESIGN.md §6 for the exact operational semantics and the documented
approximations (no branch speculation; loads commit between issue and
first use).
"""

from repro.mc.explorer import CheckResult, check_module
from repro.mc.models import MEMORY_MODELS

__all__ = ["CheckResult", "MEMORY_MODELS", "check_module"]
