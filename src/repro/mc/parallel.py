"""Parallel check harness: fan model-checking jobs across cores.

Every headline artefact (Table 2, Table 7, extended verification, the
litmus calibration matrix) is a batch of *independent* ``check_module``
calls, so they parallelize embarrassingly.  A :class:`CheckTask` is a
picklable description of one job — source text plus porting level and
exploration bounds — and :func:`run_tasks` executes a batch either
sequentially (``jobs`` unset or 1, the deterministic default) or on a
``multiprocessing`` pool (``atomig check --jobs N`` / ``atomig tables
--jobs N``).

Tasks carry source text rather than IR modules: compiling is cheap and
text pickles everywhere, so the same task list works under both the
``fork`` and ``spawn`` start methods.

Pools are *persistent* (:mod:`repro.core.workers`): the first parallel
batch forks the workers, later batches reuse them, and each worker
memoizes compiled modules by source digest — so the Oracle's bisection
probes, which re-check the same programs dozens of times, stop paying
pool setup and recompilation per round.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckTask:
    """One model-checking job, self-contained and picklable."""

    #: Module name (diagnostics only).
    name: str
    #: Mini-C source text (or IR text when ``is_ir``).
    source: str
    model: str = "wmm"
    #: PortingLevel value ("original", "expl", ..., or None to check the
    #: compiled module as-is, without running the porting pipeline).
    level: str = None
    entry: str = "main"
    max_steps: int = 2500
    max_states: int = 2_000_000
    #: Deprecated both-knobs alias (None = defer to ``por``/``macro``).
    reduce: bool = None
    #: Partial-order-reduction backend ("none"/"sleep"/"dpor"); None =
    #: explorer default (sleep, unless ``reduce=False``).
    por: str = None
    #: Macro-stepping ("on"/"off"); None = explorer default.
    macro: str = None
    #: Optional AtoMigConfig for the porting pipeline.
    config: object = None
    #: Parse ``source`` as IR text instead of Mini-C.
    is_ir: bool = False
    #: Run the static robustness pre-pass before exploring.
    robustness: bool = False
    #: Exploration engine ("inplace"/"clone"); None = explorer default.
    engine: str = None


def run_task(task):
    """Compile, port and check one task; returns its ``CheckResult``.

    Top-level (not a closure) so it pickles under every multiprocessing
    start method.  Modules come from the per-worker cache
    (:func:`repro.core.workers.cached_module`): a source checked under
    several models or re-probed across bisection rounds compiles once
    per worker.
    """
    from repro.api import port_module
    from repro.core.config import PortingLevel
    from repro.core.workers import cached_module
    from repro.mc.explorer import check_module

    module = cached_module(task.source, task.name, is_ir=task.is_ir)
    if task.level is not None:
        module, _report = port_module(
            module, PortingLevel(task.level), config=task.config
        )
    kwargs = {}
    if task.engine is not None:
        kwargs["engine"] = task.engine
    return check_module(
        module, model=task.model, entry=task.entry,
        max_steps=task.max_steps, max_states=task.max_states,
        reduce=task.reduce, por=task.por, macro=task.macro,
        robustness=task.robustness, **kwargs,
    )


def run_tasks(tasks, jobs=None, worker=run_task, seeds=(), chunksize=1):
    """Run a batch of tasks; results align with the input order.

    ``jobs=None`` or ``jobs<=1`` runs sequentially in-process.  Larger
    values use the persistent pool for that worker count
    (:func:`repro.core.workers.get_pool`): forked once per process
    lifetime, optionally seeded with pre-compiled sources, with
    per-worker busy-time accounting.

    ``worker`` is the per-task function (default :func:`run_task`); it
    must be a picklable top-level callable.  Other batch harnesses
    (e.g. the barrier optimizer's per-benchmark jobs) reuse this pool
    plumbing with their own task/worker pair.

    ``chunksize=1`` by default: check batches are few and lumpy (one
    slow corpus row must not strand a prefetched batch behind it).
    Callers with many uniform tasks can raise it, or pass ``None`` to
    let the pool shard the batch evenly.
    """
    tasks = list(tasks)
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]

    from repro.core.workers import get_pool

    pool = get_pool(jobs, seeds=seeds)
    return pool.map(worker, tasks, chunksize=chunksize)


def compare_models_parallel(source, name="module", models=("sc", "tso", "wmm"),
                            jobs=None, **task_fields):
    """Parallel analogue of :func:`repro.mc.explorer.compare_models`.

    Takes source text (tasks must pickle); extra keyword arguments are
    forwarded into each :class:`CheckTask` (``max_steps``, ``level``...).
    Returns ``{model: CheckResult}``.
    """
    tasks = [
        CheckTask(name=name, source=source, model=model, **task_fields)
        for model in models
    ]
    # Seed the pool with the shared source: each worker compiles it
    # once, then serves every model's task from its cache.
    is_ir = bool(task_fields.get("is_ir"))
    results = run_tasks(tasks, jobs=jobs, seeds=((name, source, is_ir),))
    return dict(zip(models, results))
