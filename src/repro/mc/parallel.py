"""Parallel check harness: fan model-checking jobs across cores.

Every headline artefact (Table 2, Table 7, extended verification, the
litmus calibration matrix) is a batch of *independent* ``check_module``
calls, so they parallelize embarrassingly.  A :class:`CheckTask` is a
picklable description of one job — source text plus porting level and
exploration bounds — and :func:`run_tasks` executes a batch either
sequentially (``jobs`` unset or 1, the deterministic default) or on a
``multiprocessing`` pool (``atomig check --jobs N`` / ``atomig tables
--jobs N``).

Tasks carry source text rather than IR modules: compiling is cheap and
text pickles everywhere, so the same task list works under both the
``fork`` and ``spawn`` start methods.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckTask:
    """One model-checking job, self-contained and picklable."""

    #: Module name (diagnostics only).
    name: str
    #: Mini-C source text (or IR text when ``is_ir``).
    source: str
    model: str = "wmm"
    #: PortingLevel value ("original", "expl", ..., or None to check the
    #: compiled module as-is, without running the porting pipeline).
    level: str = None
    entry: str = "main"
    max_steps: int = 2500
    max_states: int = 2_000_000
    reduce: bool = True
    #: Optional AtoMigConfig for the porting pipeline.
    config: object = None
    #: Parse ``source`` as IR text instead of Mini-C.
    is_ir: bool = False
    #: Run the static robustness pre-pass before exploring.
    robustness: bool = False


def run_task(task):
    """Compile, port and check one task; returns its ``CheckResult``.

    Top-level (not a closure) so it pickles under every multiprocessing
    start method.
    """
    from repro.api import compile_source, port_module
    from repro.core.config import PortingLevel
    from repro.mc.explorer import check_module

    if task.is_ir:
        from repro.ir.parser import parse_module

        module = parse_module(task.source)
    else:
        module = compile_source(task.source, task.name)
    if task.level is not None:
        module, _report = port_module(
            module, PortingLevel(task.level), config=task.config
        )
    return check_module(
        module, model=task.model, entry=task.entry,
        max_steps=task.max_steps, max_states=task.max_states,
        reduce=task.reduce, robustness=task.robustness,
    )


def run_tasks(tasks, jobs=None, worker=run_task):
    """Run a batch of tasks; results align with the input order.

    ``jobs=None`` or ``jobs<=1`` runs sequentially in-process.  Larger
    values use a ``fork`` pool when the platform has it (cheap, shares
    the warmed-up interpreter) and fall back to ``spawn`` otherwise.

    ``worker`` is the per-task function (default :func:`run_task`); it
    must be a picklable top-level callable.  Other batch harnesses
    (e.g. the barrier optimizer's per-benchmark jobs) reuse this pool
    plumbing with their own task/worker pair.
    """
    tasks = list(tasks)
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]

    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (e.g. Windows)
        context = multiprocessing.get_context("spawn")
    # chunksize=1: tasks are few and lumpy (one slow corpus row must
    # not strand a prefetched batch behind it).
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(worker, tasks, chunksize=1)


def compare_models_parallel(source, name="module", models=("sc", "tso", "wmm"),
                            jobs=None, **task_fields):
    """Parallel analogue of :func:`repro.mc.explorer.compare_models`.

    Takes source text (tasks must pickle); extra keyword arguments are
    forwarded into each :class:`CheckTask` (``max_steps``, ``level``...).
    Returns ``{model: CheckResult}``.
    """
    tasks = [
        CheckTask(name=name, source=source, model=model, **task_fields)
        for model in models
    ]
    results = run_tasks(tasks, jobs=jobs)
    return dict(zip(models, results))
