"""Memory-model rule objects used by the operational machine.

A model decides three things:

- whether a shared load / store / RMW executes *immediately* at issue or
  enters the thread's pending window;
- which pending window entries may commit, given everything earlier in
  program order;
- which instructions must wait for an empty window (fences, TSO-locked
  operations).
"""


class MemoryModel:
    """Base class; behaves like sequential consistency."""

    name = "sc"
    #: Maximum pending entries per thread (SC keeps none).
    window_limit = 0

    def buffers_stores(self):
        return False

    def buffers_loads(self):
        return False

    def rmw_requires_drain(self):
        return True

    def fence_requires_drain(self):
        return True

    def store_requires_drain(self, order):
        return False

    def may_commit(self, window, index):
        """May ``window[index]`` commit given earlier pending entries?"""
        raise NotImplementedError


class SCModel(MemoryModel):
    """Sequential consistency: program order is commit order."""

    name = "sc"

    def may_commit(self, window, index):
        return index == 0


class TSOModel(MemoryModel):
    """x86-TSO: stores queue FIFO; loads execute immediately (with
    forwarding from the thread's own buffer)."""

    name = "tso"
    window_limit = 8

    def buffers_stores(self):
        return True

    def store_requires_drain(self, order):
        # SC stores compile to locked instructions on x86: they drain
        # the buffer and execute in place.
        from repro.ir.instructions import MemoryOrder

        return order is MemoryOrder.SEQ_CST

    def may_commit(self, window, index):
        return index == 0  # FIFO


class WMMModel(MemoryModel):
    """Armv8-like weak memory model (see DESIGN.md §6).

    Both loads and stores enter the window and may commit out of order,
    constrained by: per-location program order (coherence), acquire
    entries (nothing later commits first), release entries (commit only
    once everything earlier has), SC-SC program order, and RMW
    reservations (handled by the machine).
    """

    name = "wmm"
    window_limit = 8

    def buffers_stores(self):
        return True

    def buffers_loads(self):
        return True

    def rmw_requires_drain(self):
        return False

    def may_commit(self, window, index):
        entry = window[index]
        if entry.kind == "store" and entry.value_pending():
            return False  # the stored value comes from an uncommitted load
        for earlier in window[:index]:
            if earlier.addr == entry.addr:
                return False  # coherence: same-location program order
            if earlier.is_acquire():
                return False  # acquire: later ops wait
            if entry.is_release():
                return False  # release: waits for everything earlier
            if earlier.is_sc() and entry.is_sc():
                return False  # SC total order respects program order
        return True


MEMORY_MODELS = {
    "sc": SCModel,
    "tso": TSOModel,
    "wmm": WMMModel,
}


def get_model(name):
    try:
        return MEMORY_MODELS[name]()
    except KeyError:
        raise ValueError(
            f"unknown memory model {name!r}; pick one of {sorted(MEMORY_MODELS)}"
        ) from None
