"""Undo-log journal for the in-place exploration engine.

The clone engine copies the whole object graph per transition; the
in-place engine instead mutates one ``State`` and *reverts*.  Every
mutating site in :mod:`repro.mc.machine` appends a typed record to a
flat journal list **before** mutating (when ``Machine.journal`` is
active), and :func:`revert` pops records back to a mark, restoring the
state bit-identically — including the incremental-digest caches:

- ``OP_ENC`` snapshots a thread's memoized byte encoding the first time
  the thread is touched after a digest, so reverting restores not just
  the content but the cache (the parent state never re-encodes).
- ``OP_MEM`` records are replayed through ``State._mem_restore`` so the
  Zobrist memory hash and the pending-cell index roll back with the
  memory image.

Records are plain tuples ``(opcode, ...)`` with interned int opcodes;
the revert loop is a frequency-ordered compare chain.  The protocol is
append-only between marks — ``mark = len(journal)`` before applying an
action, ``revert(state, journal, mark)`` afterwards — which is exactly
the DFS discipline (LIFO) of the explorer.
"""

# Opcodes, ordered roughly by expected frequency.
OP_ENV = 0      # (op, thread, frame, key, had, old)     env write
OP_FIDX = 1     # (op, thread, frame, old_index)         index bump
OP_STEPS = 2    # (op, thread, old_steps)                step budget
OP_FBLK = 3     # (op, thread, frame, old_block, old_index)  branch taken
OP_MEM = 4      # (op, addr, had, old)                   memory cell
OP_WADD = 5     # (op, thread)                           window append
OP_WDEL = 6     # (op, thread, index, entry)             window delete
OP_WSET = 7     # (op, thread, index, old_entry)         window replace
OP_STATUS = 8   # (op, thread, old_status)               status change
OP_ENC = 9      # (op, thread, old_enc)                  digest-cache snapshot
OP_SSET = 10    # (op, attr, old)                        State scalar attr
OP_TRACE = 11   # (op,)                                  trace append
OP_RES = 12     # (op, addr, had, old)                   reservation
OP_FPUSH = 13   # (op, thread)                           frame push (call)
OP_FPOP = 14    # (op, thread, frame, owned)             frame pop (ret)
OP_STACK = 15   # (op, thread, old_stack_top)            stack bump
OP_ALLOC = 16   # (op, thread, frame, key)               alloca registered
OP_TNEW = 17    # (op, tid)                              thread spawned
OP_OUT = 18     # (op,)                                  output append
OP_FSWAP = 19   # (op, thread, index, old_frame)         COW frame clone
OP_CLK = 20     # (op, key, had, old)                    DPOR clock entry


def revert(state, journal, mark):
    """Pop journal records back to ``mark``, undoing each mutation.

    Thread-content handlers drop the thread's cached encoding (it
    described the *mutated* content); the matching ``OP_ENC`` record —
    always appended before the content records of its epoch, hence
    popped after them — then reinstates the pre-mutation cache.
    """
    while len(journal) > mark:
        record = journal.pop()
        op = record[0]
        if op == OP_ENV:
            _, thread, frame, key, had, old = record
            env = frame.env
            if had:
                if key not in env:
                    frame._skeys = None  # undoing an env-GC delete
                env[key] = old
            else:
                del env[key]
                frame._skeys = None  # key set changed
            thread._enc = None
        elif op == OP_FIDX:
            _, thread, frame, old_index = record
            frame.index = old_index
            thread._enc = None
        elif op == OP_STEPS:
            record[1].steps = record[2]
        elif op == OP_FBLK:
            _, thread, frame, old_block, old_index = record
            frame.block = old_block
            frame.index = old_index
            thread._enc = None
        elif op == OP_MEM:
            state._mem_restore(record[1], record[2], record[3])
        elif op == OP_WADD:
            thread = record[1]
            thread.window.pop()
            thread._enc = None
        elif op == OP_WDEL:
            _, thread, index, entry = record
            thread.window.insert(index, entry)
            thread._enc = None
        elif op == OP_WSET:
            _, thread, index, old_entry = record
            thread.window[index] = old_entry
            thread._enc = None
        elif op == OP_STATUS:
            thread = record[1]
            thread.status = record[2]
            thread._enc = None
            # May leave or re-enter FINISHED/LIMIT: joins waiting on
            # this thread must be re-probed either way.
            state.probe_epoch += 1
        elif op == OP_ENC:
            record[1]._enc = record[2]
        elif op == OP_SSET:
            setattr(state, record[1], record[2])
        elif op == OP_TRACE:
            state.trace_tail = state.trace_tail[0]
            state.trace_len -= 1
        elif op == OP_RES:
            _, addr, had, old = record
            if had:
                state.reservations[addr] = old
            else:
                state.reservations.pop(addr, None)
        elif op == OP_FPUSH:
            thread = record[1]
            thread.frames.pop()
            thread.owned.pop()
            thread._enc = None
        elif op == OP_FPOP:
            _, thread, frame, owned = record
            thread.frames.append(frame)
            thread.owned.append(owned)
            thread._enc = None
        elif op == OP_STACK:
            thread = record[1]
            thread.stack_top = record[2]
            thread._enc = None
        elif op == OP_ALLOC:
            _, thread, frame, key = record
            del frame.alloca_addrs[key]
            frame._salloc = None  # key set changed
            thread._enc = None
        elif op == OP_TNEW:
            del state.threads[record[1]]
        elif op == OP_OUT:
            state.output.pop()
        elif op == OP_FSWAP:
            # The COW clone is content-identical to the original frame,
            # so the cached encoding (if any) stays valid.
            _, thread, index, old_frame = record
            thread.frames[index] = old_frame
            thread.owned[index] = False
        elif op == OP_CLK:
            # DPOR happens-before bookkeeping (repro.mc.dpor): the
            # values are immutable (ints / tuples), so reinstating the
            # old binding restores the clock table bit-identically.
            _, key, had, old = record
            if had:
                state.clocks[key] = old
            else:
                state.clocks.pop(key, None)
        else:  # pragma: no cover - opcode set is closed
            raise AssertionError(f"unknown journal opcode {op}")


def touch(journal, thread):
    """Invalidate ``thread``'s cached encoding, snapshotting it first.

    Called by every machine path about to mutate thread content.  The
    snapshot makes revert restore the cache along with the content; when
    the cache is already invalid this is a single attribute test.

    Also drops the thread's blocked-probe memo (``Thread._bepoch``):
    the memoized "still stuck" verdict is conditioned on the thread's
    own content being unchanged since the failed probe.
    """
    thread._bepoch = -1
    enc = thread._enc
    if enc is not None:
        thread._enc = None
        if journal is not None:
            journal.append((OP_ENC, thread, enc))
