"""Classic litmus tests expressed in Mini-C.

Each entry gives the Mini-C source of a two-thread litmus test whose
``assert`` forbids the weak outcome, together with the expected verdict
under each memory model.  These calibrate the operational machine: SC
must forbid everything, TSO must allow exactly store buffering, and the
WMM must additionally allow message passing and store-store reorder
outcomes.
"""

from repro.mc.explorer import check_module

#: name -> (source, {model: expected_ok})
LITMUS_TESTS = {
    # Store buffering: the weak outcome (r0 == 0 and r1 == 0) is allowed
    # by TSO (store-load reorder) and by the WMM, forbidden under SC.
    "SB": (
        """
int x = 0;
int y = 0;
int r1 = 0;

void t1() {
    y = 1;
    r1 = x;
}

int main() {
    int t = thread_create(t1);
    x = 1;
    int r0 = y;
    thread_join(t);
    assert(r0 == 1 || r1 == 1);
    return 0;
}
""",
        {"sc": True, "tso": False, "wmm": False},
    ),
    # Message passing: allowed only under the WMM (store-store or
    # load delay); TSO keeps both orders.
    "MP": (
        """
int data = 0;
int flag = 0;

void producer() {
    data = 1;
    flag = 1;
}

int main() {
    int t = thread_create(producer);
    int f = flag;
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": False},
    ),
    # MP with SC atomics: forbidden everywhere (the AtoMig target shape).
    "MP+atomics": (
        """
int data = 0;
_Atomic int flag = 0;

void producer() {
    data = 1;
    atomic_store(&flag, 1);
}

int main() {
    int t = thread_create(producer);
    int f = atomic_load(&flag);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # MP with explicit SC fences: also forbidden everywhere.
    "MP+fences": (
        """
int data = 0;
int flag = 0;

void producer() {
    data = 1;
    atomic_thread_fence(memory_order_seq_cst);
    flag = 1;
}

int main() {
    int t = thread_create(producer);
    int f = flag;
    atomic_thread_fence(memory_order_seq_cst);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # SB with SC atomics: x86 locked stores / Arm STLR+LDAR restore SC.
    "SB+atomics": (
        """
_Atomic int x = 0;
_Atomic int y = 0;
int r1 = 0;

void t1() {
    atomic_store(&y, 1);
    r1 = atomic_load(&x);
}

int main() {
    int t = thread_create(t1);
    atomic_store(&x, 1);
    int r0 = atomic_load(&y);
    thread_join(t);
    assert(r0 == 1 || r1 == 1);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # Coherence (CoRR): two reads of the same location by the same
    # thread may never observe values going backwards.  All models keep
    # per-location order.
    "CoRR": (
        """
int x = 0;

void writer() {
    x = 1;
}

int main() {
    int t = thread_create(writer);
    int a = x;
    int b = x;
    assert(a <= b);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # Atomicity of RMW: two concurrent increments never lose an update.
    "RMW-atomicity": (
        """
int x = 0;

void incr() {
    atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
}

int main() {
    int t = thread_create(incr);
    atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
    thread_join(t);
    assert(x == 2);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # The Figure 7 shape: a later plain store may overtake the store
    # half of a relaxed compare-exchange (WMM only).
    "CAS-overtake": (
        """
int state = 1;
int key = 77;

void deleter() {
    if (atomic_cmpxchg_explicit(&state, 1, 0, memory_order_relaxed) == 1) {
        key = 0;
    }
}

int main() {
    int t = thread_create(deleter);
    int k = key;
    int s = state;
    assert(s == 0 || k == 77);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": False},
    ),
}


def run_litmus(name, model, **kwargs):
    """Compile and check one litmus test; returns the CheckResult."""
    from repro.api import compile_source

    source, _expected = LITMUS_TESTS[name]
    module = compile_source(source, name=f"litmus_{name}")
    kwargs.setdefault("max_steps", 400)
    return check_module(module, model=model, **kwargs)


def expected_verdict(name, model):
    return LITMUS_TESTS[name][1][model]


# ---------------------------------------------------------------------------
# Weakened-order litmus gallery
# ---------------------------------------------------------------------------

#: Litmus templates parameterized by per-access memory orders — the
#: gallery the barrier optimizer's ladders are calibrated against.
#: Each entry is ``(template, minimal, too_weak)``:
#:
#: - ``template`` has ``{slot}`` fields taking ``memory_order_*``
#:   spellings;
#: - ``minimal`` is the weakest order assignment that still passes
#:   under the WMM (what a perfect optimizer would converge to);
#: - ``too_weak`` maps a label to a one-step-weaker override that the
#:   checker must flag as a bug — dropping any single order below the
#:   minimum is detectable, which is exactly the property the
#:   oracle-guided weakener relies on.
#:
#: The minima reflect this repo's operational WMM: it is multi-copy
#: atomic (one shared memory), so IRIW needs only acquire loads (real
#: POWER would need stronger), SB needs full SC on all four accesses,
#: MP is the classic release/acquire pair, and LB is prevented by
#: acquire loads alone.
WEAKENED_LITMUS = {
    "MP": (
        """
int data = 0;
_Atomic int flag = 0;

void producer() {{
    data = 1;
    atomic_store_explicit(&flag, 1, {w_flag});
}}

int main() {{
    int t = thread_create(producer);
    int f = atomic_load_explicit(&flag, {r_flag});
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}}
""",
        {"w_flag": "memory_order_release",
         "r_flag": "memory_order_acquire"},
        {"store-relaxed": {"w_flag": "memory_order_relaxed"},
         "load-relaxed": {"r_flag": "memory_order_relaxed"}},
    ),
    "SB": (
        """
_Atomic int x = 0;
_Atomic int y = 0;
int r1 = 0;

void t1() {{
    atomic_store_explicit(&y, 1, {w_y});
    r1 = atomic_load_explicit(&x, {r_x});
}}

int main() {{
    int t = thread_create(t1);
    atomic_store_explicit(&x, 1, {w_x});
    int r0 = atomic_load_explicit(&y, {r_y});
    thread_join(t);
    assert(r0 == 1 || r1 == 1);
    return 0;
}}
""",
        {"w_x": "memory_order_seq_cst", "w_y": "memory_order_seq_cst",
         "r_x": "memory_order_seq_cst", "r_y": "memory_order_seq_cst"},
        {"store-release": {"w_y": "memory_order_release"},
         "load-acquire": {"r_x": "memory_order_acquire"}},
    ),
    "LB": (
        """
_Atomic int x = 0;
_Atomic int y = 0;
int r0 = 0;
int r1 = 0;

void t1() {{
    r1 = atomic_load_explicit(&y, {r_y});
    atomic_store_explicit(&x, 1, {w_x});
}}

int main() {{
    int t = thread_create(t1);
    r0 = atomic_load_explicit(&x, {r_x});
    atomic_store_explicit(&y, 1, {w_y});
    thread_join(t);
    assert(r0 == 0 || r1 == 0);
    return 0;
}}
""",
        {"r_x": "memory_order_acquire", "r_y": "memory_order_acquire",
         "w_x": "memory_order_relaxed", "w_y": "memory_order_relaxed"},
        {"load-relaxed": {"r_y": "memory_order_relaxed"}},
    ),
    "IRIW": (
        """
_Atomic int x = 0;
_Atomic int y = 0;
int a = 0;
int b = 0;
int c = 0;
int d = 0;

void w1() {{
    atomic_store_explicit(&x, 1, {w_x});
}}

void w2() {{
    atomic_store_explicit(&y, 1, {w_y});
}}

void reader() {{
    c = atomic_load_explicit(&y, {r1_y});
    d = atomic_load_explicit(&x, {r1_x});
}}

int main() {{
    int t1 = thread_create(w1);
    int t2 = thread_create(w2);
    int t3 = thread_create(reader);
    a = atomic_load_explicit(&x, {r0_x});
    b = atomic_load_explicit(&y, {r0_y});
    thread_join(t1);
    thread_join(t2);
    thread_join(t3);
    assert(!(a == 1 && b == 0 && c == 1 && d == 0));
    return 0;
}}
""",
        {"w_x": "memory_order_relaxed", "w_y": "memory_order_relaxed",
         "r0_x": "memory_order_acquire", "r0_y": "memory_order_acquire",
         "r1_y": "memory_order_acquire", "r1_x": "memory_order_acquire"},
        # Weakening a reader's *first* load lets its second overtake it
        # (acquire constrains later entries, not earlier ones), which
        # exposes the forbidden outcome.
        {"reader-relaxed": {"r1_y": "memory_order_relaxed"}},
    ),
}


def weakened_source(name, overrides=None):
    """Mini-C source for one gallery entry, minimal orders + overrides."""
    template, minimal, _too_weak = WEAKENED_LITMUS[name]
    orders = dict(minimal)
    if overrides:
        orders.update(overrides)
    return template.format(**orders)


def run_weakened_litmus(name, overrides=None, model="wmm", **kwargs):
    """Check one weakened-gallery litmus variant; returns CheckResult."""
    from repro.api import compile_source

    source = weakened_source(name, overrides)
    module = compile_source(source, name=f"weakened_{name}")
    kwargs.setdefault("max_steps", 600)
    return check_module(module, model=model, **kwargs)
