"""Classic litmus tests expressed in Mini-C.

Each entry gives the Mini-C source of a two-thread litmus test whose
``assert`` forbids the weak outcome, together with the expected verdict
under each memory model.  These calibrate the operational machine: SC
must forbid everything, TSO must allow exactly store buffering, and the
WMM must additionally allow message passing and store-store reorder
outcomes.
"""

from repro.mc.explorer import check_module

#: name -> (source, {model: expected_ok})
LITMUS_TESTS = {
    # Store buffering: the weak outcome (r0 == 0 and r1 == 0) is allowed
    # by TSO (store-load reorder) and by the WMM, forbidden under SC.
    "SB": (
        """
int x = 0;
int y = 0;
int r1 = 0;

void t1() {
    y = 1;
    r1 = x;
}

int main() {
    int t = thread_create(t1);
    x = 1;
    int r0 = y;
    thread_join(t);
    assert(r0 == 1 || r1 == 1);
    return 0;
}
""",
        {"sc": True, "tso": False, "wmm": False},
    ),
    # Message passing: allowed only under the WMM (store-store or
    # load delay); TSO keeps both orders.
    "MP": (
        """
int data = 0;
int flag = 0;

void producer() {
    data = 1;
    flag = 1;
}

int main() {
    int t = thread_create(producer);
    int f = flag;
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": False},
    ),
    # MP with SC atomics: forbidden everywhere (the AtoMig target shape).
    "MP+atomics": (
        """
int data = 0;
_Atomic int flag = 0;

void producer() {
    data = 1;
    atomic_store(&flag, 1);
}

int main() {
    int t = thread_create(producer);
    int f = atomic_load(&flag);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # MP with explicit SC fences: also forbidden everywhere.
    "MP+fences": (
        """
int data = 0;
int flag = 0;

void producer() {
    data = 1;
    atomic_thread_fence(memory_order_seq_cst);
    flag = 1;
}

int main() {
    int t = thread_create(producer);
    int f = flag;
    atomic_thread_fence(memory_order_seq_cst);
    int d = data;
    assert(f == 0 || d == 1);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # SB with SC atomics: x86 locked stores / Arm STLR+LDAR restore SC.
    "SB+atomics": (
        """
_Atomic int x = 0;
_Atomic int y = 0;
int r1 = 0;

void t1() {
    atomic_store(&y, 1);
    r1 = atomic_load(&x);
}

int main() {
    int t = thread_create(t1);
    atomic_store(&x, 1);
    int r0 = atomic_load(&y);
    thread_join(t);
    assert(r0 == 1 || r1 == 1);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # Coherence (CoRR): two reads of the same location by the same
    # thread may never observe values going backwards.  All models keep
    # per-location order.
    "CoRR": (
        """
int x = 0;

void writer() {
    x = 1;
}

int main() {
    int t = thread_create(writer);
    int a = x;
    int b = x;
    assert(a <= b);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # Atomicity of RMW: two concurrent increments never lose an update.
    "RMW-atomicity": (
        """
int x = 0;

void incr() {
    atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
}

int main() {
    int t = thread_create(incr);
    atomic_fetch_add_explicit(&x, 1, memory_order_relaxed);
    thread_join(t);
    assert(x == 2);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": True},
    ),
    # The Figure 7 shape: a later plain store may overtake the store
    # half of a relaxed compare-exchange (WMM only).
    "CAS-overtake": (
        """
int state = 1;
int key = 77;

void deleter() {
    if (atomic_cmpxchg_explicit(&state, 1, 0, memory_order_relaxed) == 1) {
        key = 0;
    }
}

int main() {
    int t = thread_create(deleter);
    int k = key;
    int s = state;
    assert(s == 0 || k == 77);
    thread_join(t);
    return 0;
}
""",
        {"sc": True, "tso": True, "wmm": False},
    ),
}


def run_litmus(name, model, **kwargs):
    """Compile and check one litmus test; returns the CheckResult."""
    from repro.api import compile_source

    source, _expected = LITMUS_TESTS[name]
    module = compile_source(source, name=f"litmus_{name}")
    kwargs.setdefault("max_steps", 400)
    return check_module(module, model=model, **kwargs)


def expected_verdict(name, model):
    return LITMUS_TESTS[name][1][model]
