"""Compact state encoding and incremental digests for the explorer.

The legacy dedup path built a deeply nested ``State.canonical()`` tuple,
``repr()``-ed the whole nesting and BLAKE2-hashed the text — an
O(state size) rebuild for every quiescent state, which BENCH_mc.json
showed capping the explorer at ~8k states/s.  This module replaces that
path for the fast (in-place) engine with three ideas (DESIGN.md §6f):

- **Per-thread byte encodings, memoized on the thread.**  Each thread's
  canonical content (status, frames, environments, allocas, pending
  window) is flattened into one length-prefixed list of ints and
  rendered with a single C-speed ``repr``.  The bytes are cached on the
  ``Thread`` and invalidated only when the machine mutates that thread,
  so a thread that did not move between two digests is never re-encoded.
- **Zobrist memory hashing.**  The shared-memory image contributes a
  128-bit XOR of per-``(addr, value)`` cell hashes, maintained
  *incrementally* by the ``State.mem_write``/``mem_del`` helpers: a
  store updates the digest in O(1) no matter how large memory is.
  XOR composition is order-independent, which is exactly the sorted
  ``(addr, value)`` semantics of the legacy canonical form.
- **Per-thread token normalization.**  Pending-value tokens are
  process-global counters and must be renamed to small dense ids so
  states differing only in token history dedup together.  Tokens never
  cross threads (pending values cannot pass through calls, spawns,
  branches or shared commits, and every live token is held by a window
  entry of its creating thread), so each thread's encoding numbers its
  own tokens — in the same first-appearance order the legacy
  ``canonical()`` used — and the memoized encodings stay valid without
  any global renaming pass.

Digest equality is designed to match ``State.canonical()`` equality
exactly (the property suite in ``tests/property/test_state_engine.py``
asserts both directions); the only approximation is the Zobrist XOR,
whose 128-bit collision probability is on par with the legacy BLAKE2
digest itself.
"""

import hashlib

# -- Zobrist cell hashes ----------------------------------------------------

#: (addr, value) -> random-looking 128-bit int, derived from BLAKE2 so
#: the table needs no seeding and is stable across processes.
_CELL_HASHES = {}
#: Reset guard: a pathological run (fuzzing millions of distinct cell
#: values) must not grow the memo without bound.  Clearing is safe —
#: the hash is a pure function and simply recomputes.
_CELL_HASH_LIMIT = 4_000_000


def cell_hash(addr, value):
    """The Zobrist contribution of one non-zero memory cell."""
    key = (addr, value)
    cell = _CELL_HASHES.get(key)
    if cell is None:
        if len(_CELL_HASHES) >= _CELL_HASH_LIMIT:
            _CELL_HASHES.clear()
        cell = int.from_bytes(
            hashlib.blake2b(repr(key).encode(), digest_size=16).digest(),
            "little",
        )
        _CELL_HASHES[key] = cell
    return cell


# -- interning --------------------------------------------------------------


class Interner:
    """Dense ids for IR objects (blocks) reachable from one module.

    Keyed by ``id()``: the objects are kept alive by the ``Context``
    that owns this interner, so ids cannot be recycled mid-run.  A
    block id identifies ``(function, label)`` — block objects are never
    shared between functions — which is all the legacy canonical form
    recorded per frame.
    """

    __slots__ = ("_ids",)

    def __init__(self):
        self._ids = {}

    def id_of(self, obj):
        key = id(obj)
        dense = self._ids.get(key)
        if dense is None:
            dense = self._ids[key] = len(self._ids)
        return dense


# -- thread encoding --------------------------------------------------------

_STATUS_CODES = {
    "run": 0,
    "blocked": 1,
    "ready": 2,
    "finishing": 3,
    "finished": 4,
    "limit": 5,
}
_KIND_CODES = {"load": 0, "store": 1, "rmw": 2, "rmw_store": 3}
_RMW_CODES = {None: -1, "add": 0, "sub": 1, "or": 2, "and": 3, "xor": 4,
              "xchg": 5}

# Value tags (always emitted as a fixed-width [tag, payload] pair so
# the flat int list parses unambiguously).
_TAG_PENDING = -1
_TAG_INT = -2
_TAG_NONE = -3


def _append_value(append, token_map, value):
    """Emit one possibly-pending value as a (tag, payload) int pair."""
    if type(value) is tuple:  # ("p", token)
        token = value[1]
        norm = token_map.get(token)
        if norm is None:
            norm = token_map[token] = len(token_map)
        append(_TAG_PENDING)
        append(norm)
    elif value is None:
        append(_TAG_NONE)
        append(0)
    else:
        append(_TAG_INT)
        append(value)


def encode_thread(interner, thread):
    """Injective byte encoding of one thread's canonical content.

    Mirrors the thread part of the legacy ``State.canonical()``: status,
    stack top, per-frame (block, index, sorted env, sorted allocas) and
    the pending window, with tokens renamed to dense per-thread ids.
    Token ids are assigned in the *same order* the legacy form assigned
    them — frame envs in insertion order first, then window entries
    (token before value) — so the two forms induce the same state
    partition even for states that differ only in env insertion history.
    """
    token_map = {}
    frames = thread.frames
    window = thread.window
    # Pass 1: token numbering in the same order ``State.canonical()``
    # assigns it — frame order, sorted env keys within a frame (env
    # *insertion* order is execution-path-dependent under the env GC +
    # undo log, so numbering must follow content).  Only pending values
    # matter, and a pending value always has a matching uncommitted
    # window entry, so a windowless thread provably holds no tokens.
    if window:
        for frame in frames:
            env = frame.env
            skeys = frame._skeys
            if skeys is None:
                skeys = frame._skeys = sorted(env)
            for key in skeys:
                value = env[key]
                if type(value) is tuple:
                    token = value[1]
                    if token not in token_map:
                        token_map[token] = len(token_map)
    parts = [
        thread.tid,
        _STATUS_CODES[thread.status],
        thread.stack_top,
        len(frames),
    ]
    append = parts.append
    id_of = interner.id_of
    for frame in frames:
        append(id_of(frame.block))
        append(frame.index)
        env = frame.env
        skeys = frame._skeys
        if skeys is None:
            skeys = frame._skeys = sorted(env)
        append(len(env))
        for key in skeys:
            value = env[key]
            append(key)
            if type(value) is int:
                append(_TAG_INT)
                append(value)
            else:
                _append_value(append, token_map, value)
        allocas = frame.alloca_addrs
        salloc = frame._salloc
        if salloc is None:
            salloc = frame._salloc = sorted(allocas.items())
        append(len(allocas))
        for key, addr in salloc:
            append(key)
            append(addr)
    append(len(window))
    for entry in window:
        append(_KIND_CODES[entry.kind])
        append(entry.addr)
        append(int(entry.order))
        token = entry.token
        if token is None:
            append(-1)
        else:
            norm = token_map.get(token)
            if norm is None:
                norm = token_map[token] = len(token_map)
            append(norm)
        value = entry.value
        if type(value) is int:
            append(_TAG_INT)
            append(value)
        else:
            _append_value(append, token_map, value)
        append(_RMW_CODES[entry.rmw_op])
        for value in (entry.rmw_operand, entry.rmw_expected,
                      entry.rmw_desired):
            if value is None:
                append(_TAG_NONE)
                append(0)
            elif type(value) is int:
                append(_TAG_INT)
                append(value)
            else:
                _append_value(append, token_map, value)
    return repr(parts).encode()


def _token_positions(state):
    """token -> (tid, per-thread id) for every live token.

    Needed only when a pending value sits in memory (a private store of
    an uncommitted load) — the memory section of the digest must then
    name the token.  Every live token appears in its owner thread's
    frames or window, so one walk in encoding order recovers the same
    numbering ``encode_thread`` assigned.
    """
    positions = {}
    for tid, thread in state.threads.items():
        local = {}
        for frame in thread.frames:
            env = frame.env
            for key in sorted(env):
                value = env[key]
                if type(value) is tuple:
                    token = value[1]
                    if token not in local:
                        local[token] = len(local)
        for entry in thread.window:
            token = entry.token
            if token is not None and token not in local:
                local[token] = len(local)
            for value in (entry.value, entry.rmw_operand,
                          entry.rmw_expected, entry.rmw_desired):
                if type(value) is tuple:
                    token = value[1]
                    if token not in local:
                        local[token] = len(local)
        for token, norm in local.items():
            positions[token] = (tid, norm)
    return positions


# -- state digest -----------------------------------------------------------


def state_digest(state, interner):
    """128-bit dedup key of ``state``, using the incremental caches.

    Sections are NUL-separated (the per-section reprs are pure ASCII
    with no NUL) and the thread count is part of the header, so the
    concatenation is an injective framing of the components.
    """
    digest = hashlib.blake2b(digest_size=16)
    update = digest.update
    update(b"%d %d %d %d" % (state.next_tid, state.heap_top,
                             state.mem_hash, len(state.threads)))
    for thread in state.threads.values():
        encoded = thread._enc
        if encoded is None:
            encoded = thread._enc = encode_thread(interner, thread)
        update(b"\x00")
        update(encoded)
    update(b"\x00")
    pending = state.pending_mem
    if pending:
        positions = _token_positions(state)
        update(repr(sorted(
            (addr, positions[token]) for addr, token in pending.items()
        )).encode())
    update(b"\x00")
    if state.reservations:
        update(repr(sorted(state.reservations.items())).encode())
    return digest.digest()


def state_digest_fresh(state, interner):
    """Digest with every cache dropped and memory re-hashed from scratch.

    The verification mode used by the property suite (and the
    ``ATOMIG_DIGEST_CHECK`` debug hook): recomputes the Zobrist memory
    hash from the live memory dict and re-encodes every thread, so any
    missed invalidation or unjournalled mutation shows up as a digest
    mismatch against the incremental path.
    """
    for thread in state.threads.values():
        thread._enc = None
        for frame in thread.frames:
            frame._skeys = None
            frame._salloc = None
    mem_hash = 0
    pending = {}
    for addr, value in state.memory.items():
        if type(value) is tuple:
            pending[addr] = value[1]
        elif value != 0:
            mem_hash ^= cell_hash(addr, value)
    if mem_hash != state.mem_hash or pending != state.pending_mem:
        raise AssertionError(
            "incremental memory hash diverged from the memory image: "
            f"hash {state.mem_hash:#x} vs fresh {mem_hash:#x}, "
            f"pending {state.pending_mem} vs fresh {pending}"
        )
    return state_digest(state, interner)
