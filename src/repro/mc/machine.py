"""The operational multiprocessor machine used by the model checker.

Each thread runs an in-order *issue* stage over the IR and, under weak
models, an out-of-order *commit* stage over a bounded window of pending
memory operations (DESIGN.md §6).  Key ideas:

- **Private fast path**: accesses through non-escaping allocas are
  thread-private and execute immediately — a sound partial-order
  reduction that leaves only genuinely shared operations as scheduling
  points.
- **Lazy loads** (WMM): a shared load yields a *token*; execution
  continues until some instruction needs the value, at which point the
  scheduler must commit the load (reading memory at commit time).  This
  realizes load-reordering operationally, e.g. a seqlock's data read
  escaping its validation loop.
- **Split RMWs** (WMM): a compare-exchange first *executes* (atomic
  read + reservation), then its store half lingers as a release store
  that later plain stores may overtake — precisely the Armv8
  LDAXR/STLXR behaviour behind the MariaDB lf-hash bug (Figure 7).

Fast-state support (DESIGN.md §6f): every mutating site journals an
undo record when ``Machine.journal`` is active (the in-place engine),
memory writes flow through ``State.mem_write``/``mem_del`` so a Zobrist
digest of the memory image stays incrementally correct, and threads
carry a memoized byte encoding (``Thread._enc``) invalidated via
``undo.touch`` exactly when their content changes.
"""

from repro.analysis.liveness import liveness_tables
from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Argument, Constant, GlobalVar
from repro.mc.encode import Interner, cell_hash
from repro.mc.undo import (
    OP_ALLOC,
    OP_CLK,
    OP_ENV,
    OP_FBLK,
    OP_FIDX,
    OP_FPOP,
    OP_FPUSH,
    OP_FSWAP,
    OP_MEM,
    OP_OUT,
    OP_RES,
    OP_SSET,
    OP_STACK,
    OP_STATUS,
    OP_STEPS,
    OP_TNEW,
    OP_TRACE,
    OP_WADD,
    OP_WDEL,
    OP_WSET,
    touch,
)

GLOBAL_BASE = 1_000
HEAP_BASE = 500_000
STACK_BASE = 1_000_000
STACK_SIZE = 50_000

TRACE_CAP = 400  # longest scheduler/commit trace kept per state

_PENDING = "p"  # tag of pending-value tuples ('p', token)

_ABSENT = object()  # memory-cell sentinel distinguishing 0 from missing


def is_pending(value):
    return isinstance(value, tuple) and value[0] == _PENDING


class Context:
    """Immutable per-check data shared by all explored states."""

    def __init__(self, module, model, entry="main"):
        self.module = module
        self.model = model
        self.entry = entry
        self.interner = Interner()
        self.global_addr = {}
        self.global_layout = []  # (addr, value) initial memory image
        self.global_regions = []  # (start, end, name), sorted by start
        addr = GLOBAL_BASE
        for gvar in module.globals.values():
            self.global_addr[gvar.name] = addr
            for offset, value in enumerate(gvar.initializer):
                if value != 0:
                    self.global_layout.append((addr + offset, value))
            size = max(gvar.value_type.size, 1)
            self.global_regions.append((addr, addr + size, gvar.name))
            addr += size
        # Frame-free operand values (constants, global addresses),
        # resolved once: the interpreter's ``_value`` becomes one dict
        # probe + env lookup instead of an isinstance chain.
        self.operand_values = {}
        for function in module.functions.values():
            for instr in function.instructions():
                for operand in instr.operands:
                    if isinstance(operand, Constant):
                        self.operand_values[id(operand)] = operand.value
                    elif isinstance(operand, GlobalVar):
                        self.operand_values[id(operand)] = (
                            self.global_addr[operand.name])
        # Liveness-driven env GC: operand death points and write-skips
        # (see repro.analysis.liveness) — keeps frame envs at live-set
        # size, which every encode/clone/canonical is O() of.
        self.dies = {}
        self.unused = set()
        for function in module.functions.values():
            fdies, funused = liveness_tables(function)
            self.dies.update(fdies)
            self.unused |= funused
        # Static classification: which accesses are provably private.
        self.private = set()
        for function in module.functions.values():
            info = NonLocalInfo(function)
            for instr in function.instructions():
                if instr.is_memory_access():
                    pointer = instr.accessed_pointer()
                    if not info.is_nonlocal_pointer(pointer):
                        self.private.add(id(instr))
        self._compute_access_sets(module)

    # -- static reachable-access sets (for partial-order reduction) -------

    def _compute_access_sets(self, module):
        """For every function, which globals its transitive closure may
        touch non-privately.

        ``func_access[name]`` is ``(reads, runknown, writes, wunknown)``:
        the globals the function (or anything it transitively calls or
        spawns) may access / may write, with an ``unknown`` flag set when
        some access goes through a pointer we cannot attribute to a
        single global (heap, escaped stack, argument) and must be
        treated as touching anything.  ``reads`` includes the writes.
        ``spawn_access[name]`` is the same 4-tuple restricted to code
        only reachable through ``thread_create`` edges — the accesses a
        *new* thread spawned from here might perform.
        """
        direct = {}
        call_edges = {}
        create_edges = {}
        for function in module.functions.values():
            reads, writes = set(), set()
            runknown = wunknown = False
            calls = set()
            creates = set()
            for instr in function.instructions():
                if instr.is_memory_access() and id(instr) not in self.private:
                    is_write = not isinstance(instr, ins.Load)
                    root = _pointer_root(instr.accessed_pointer())
                    if root is None:
                        runknown = True
                        wunknown = wunknown or is_write
                    else:
                        reads.add(root)
                        if is_write:
                            writes.add(root)
                if isinstance(instr, ins.Call):
                    calls.add(instr.callee.name)
                elif isinstance(instr, ins.ThreadCreate):
                    creates.add(instr.callee.name)
            direct[function.name] = (reads, runknown, writes, wunknown)
            call_edges[function.name] = calls
            create_edges[function.name] = creates

        # Fixpoint over call + create edges: everything the function or
        # anything it (transitively) runs or spawns may access.
        _TOP = (set(), True, set(), True)
        access = {
            name: (set(t[0]), t[1], set(t[2]), t[3])
            for name, t in direct.items()
        }
        changed = True
        while changed:
            changed = False
            for name in access:
                reads, runknown, writes, wunknown = access[name]
                for callee in call_edges[name] | create_edges[name]:
                    cr, cru, cw, cwu = access.get(callee, _TOP)
                    if not reads >= cr:
                        reads |= cr
                        changed = True
                    if not writes >= cw:
                        writes |= cw
                        changed = True
                    if (cru and not runknown) or (cwu and not wunknown):
                        runknown = runknown or cru
                        wunknown = wunknown or cwu
                        changed = True
                access[name] = (reads, runknown, writes, wunknown)
        self.func_access = {
            name: (frozenset(t[0]), t[1], frozenset(t[2]), t[3])
            for name, t in access.items()
        }

        # Call-closure (calls only, no create edges) per function.
        closure = {}
        for name in call_edges:
            seen = {name}
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for callee in call_edges.get(current, ()):
                    if callee not in seen:
                        seen.add(callee)
                        frontier.append(callee)
            closure[name] = seen
        _FTOP = (frozenset(), True, frozenset(), True)
        self.spawn_access = {}
        for name, funcs in closure.items():
            reads, writes = set(), set()
            runknown = wunknown = False
            for fn in funcs:
                for callee in create_edges.get(fn, ()):
                    cr, cru, cw, cwu = self.func_access.get(callee, _FTOP)
                    reads |= cr
                    writes |= cw
                    runknown = runknown or cru
                    wunknown = wunknown or cwu
            self.spawn_access[name] = (
                frozenset(reads), runknown, frozenset(writes), wunknown,
            )

    def global_region(self, addr):
        """Name of the global variable containing ``addr``, or None."""
        from bisect import bisect_right

        regions = self.global_regions
        index = bisect_right(regions, (addr, float("inf"), "")) - 1
        if index >= 0:
            start, end, name = regions[index]
            if start <= addr < end:
                return name
        return None


def _pointer_root(pointer):
    """The global a pointer provably points into, or None (unknown)."""
    while True:
        if isinstance(pointer, GlobalVar):
            return pointer.name
        if isinstance(pointer, ins.Gep):
            pointer = pointer.base
        elif isinstance(pointer, ins.Cast):
            pointer = pointer.value
        else:
            return None


class WindowEntry:
    """One pending memory operation in a thread's commit window.

    Entries are *immutable* once constructed: every in-place update the
    machine used to perform (executing an RMW, resolving a pending
    value) now replaces the entry instead.  Immutability lets cloned
    states share entry objects and lets ``canonical`` memoize itself.
    """

    __slots__ = (
        "kind",
        "addr",
        "value",
        "order",
        "token",
        "instr",
        "rmw_op",
        "rmw_operand",
        "rmw_expected",
        "rmw_desired",
        "_canon",
    )

    def __init__(self, kind, addr, order, instr, value=None, token=None,
                 rmw_op=None, rmw_operand=None, rmw_expected=None,
                 rmw_desired=None):
        self.kind = kind  # "load" | "store" | "rmw" | "rmw_store"
        self.addr = addr
        self.value = value
        self.order = order
        self.token = token
        self.instr = instr
        self.rmw_op = rmw_op
        self.rmw_operand = rmw_operand
        self.rmw_expected = rmw_expected
        self.rmw_desired = rmw_desired
        self._canon = None

    def resolved_with(self, value):
        """A copy of this entry with its pending value bound."""
        return WindowEntry(
            self.kind, self.addr, self.order, self.instr, value,
            self.token, self.rmw_op, self.rmw_operand, self.rmw_expected,
            self.rmw_desired,
        )

    def value_pending(self):
        return is_pending(self.value)

    def is_acquire(self):
        if self.kind == "rmw":
            # The RMW's load half is acquire only for acquire/SC orders;
            # a relaxed LL/SC pair orders nothing (plain LDXR on Arm).
            return self.order.has_acquire
        return self.kind == "load" and self.order.has_acquire

    def is_release(self):
        if self.kind == "rmw_store":
            # Likewise: only release/SC RMWs get a store-release half.
            return self.order.has_release
        return self.kind == "store" and self.order.has_release

    def is_sc(self):
        return self.order is MemoryOrder.SEQ_CST

    def canonical(self, token_map):
        if self._canon is not None:
            return self._canon
        value = self.value
        if is_pending(value):
            value = ("p", token_map[value[1]])
        token = token_map.get(self.token) if self.token is not None else None
        result = (self.kind, self.addr, value, int(self.order), token,
                  self.rmw_op, self.rmw_operand, self.rmw_expected,
                  self.rmw_desired)
        if self.token is None and not is_pending(self.value):
            # Token-free entries canonicalize the same way in every
            # state, so the tuple can be cached on the (immutable) entry.
            self._canon = result
        return result

    def __repr__(self):
        return (
            f"<{self.kind} @{self.addr} = {self.value} "
            f"{self.order.name.lower()}>"
        )


class Frame:
    """One activation record of the in-order issue stage."""

    __slots__ = ("function", "block", "index", "env", "alloca_addrs",
                 "stack_base", "call_instr", "_skeys", "_salloc", "_iepoch")

    def __init__(self, function, call_instr=None):
        self.function = function
        self.block = function.entry
        self.index = 0
        self.env = {}
        self.alloca_addrs = {}
        self.stack_base = None
        self.call_instr = call_instr
        # Sorted-key caches for the state encoder, invalidated whenever
        # the respective key *set* changes (value overwrites keep them).
        self._skeys = None
        self._salloc = None
        # Journal epoch of the last OP_FIDX/OP_FBLK record for this
        # frame: one record per action restores the whole index run.
        self._iepoch = 0

    def clone(self):
        copy = Frame.__new__(Frame)
        copy.function = self.function
        copy.block = self.block
        copy.index = self.index
        copy.env = dict(self.env)
        copy.alloca_addrs = dict(self.alloca_addrs)
        copy.stack_base = self.stack_base
        copy.call_instr = self.call_instr
        copy._skeys = self._skeys
        copy._salloc = self._salloc
        # A COW clone swapped in mid-action inherits the epoch: the
        # OP_FSWAP record restores the *original* frame wholesale, so
        # the clone's own index mutations never need journaling.
        copy._iepoch = self._iepoch
        return copy


# Thread statuses.
RUN = "run"
BLOCKED = "blocked"
READY = "ready"  # next instruction is a visible (immediate) memory op
FINISHING = "finishing"  # code done, window still draining
FINISHED = "finished"
LIMIT = "limit"  # hit the per-thread step bound


class Thread:
    __slots__ = ("tid", "frames", "window", "status", "steps", "stack_top",
                 "owned", "_enc", "_sepoch", "_bepoch")

    def __init__(self, tid, frame):
        self.tid = tid
        self.frames = [frame]
        self.owned = [True]
        self.window = []
        self.status = RUN
        self.steps = 0
        self.stack_top = STACK_BASE + tid * STACK_SIZE
        self._enc = None  # memoized byte encoding (repro.mc.encode)
        self._sepoch = -1  # journal epoch of the last OP_STEPS record
        self._bepoch = -1  # probe epoch at which the last probe failed
        frame.stack_base = self.stack_top

    def clone(self):
        """Copy-on-write clone: frames and window entries are shared.

        Window entries are immutable, so sharing them is always safe.
        Frames are mutable, so *both* sides drop ownership: whichever
        state mutates a shared frame first clones it privately via
        :meth:`mutable_frame`.
        """
        copy = Thread.__new__(Thread)
        copy.tid = self.tid
        copy.frames = list(self.frames)
        copy.window = list(self.window)
        copy.status = self.status
        copy.steps = self.steps
        copy.stack_top = self.stack_top
        copy._enc = self._enc  # same content, same encoding
        copy._sepoch = -1  # no journal record names the copy
        copy._bepoch = self._bepoch  # same content, same probe outcome
        copy.owned = [False] * len(self.frames)
        self.owned = [False] * len(self.frames)
        return copy

    @property
    def frame(self):
        return self.frames[-1]

    def mutable_frame(self, journal=None):
        """The top frame, privately owned (cloned on first write)."""
        return self.mutable_frame_at(len(self.frames) - 1, journal)

    def mutable_frame_at(self, index, journal=None):
        if not self.owned[index]:
            old = self.frames[index]
            if journal is not None:
                journal.append((OP_FSWAP, self, index, old))
            self.frames[index] = old.clone()
            self.owned[index] = True
        return self.frames[index]

    def push_frame(self, frame):
        self.frames.append(frame)
        self.owned.append(True)

    def pop_frame(self):
        self.owned.pop()
        return self.frames.pop()

    def done(self):
        return self.status in (FINISHED, LIMIT)


class State:
    """A full machine state; cloned (or journaled) per exploration branch."""

    __slots__ = ("memory", "threads", "next_tid", "heap_top", "reservations",
                 "violation", "trace_tail", "trace_len", "output",
                 "token_counter", "mem_hash", "pending_mem", "probe_epoch",
                 "clocks")

    def __init__(self):
        self.memory = {}
        self.threads = {}
        self.next_tid = 0
        self.heap_top = HEAP_BASE
        self.reservations = {}
        self.violation = None
        self.trace_tail = None  # persistent (parent, message) chain
        self.trace_len = 0
        self.output = []
        self.token_counter = 0
        self.mem_hash = 0  # Zobrist XOR over non-zero, non-pending cells
        self.pending_mem = {}  # addr -> token for pending-valued cells
        # Monotone counter bumped on every event that could unblock a
        # stuck thread: any memory mutation (including undo restores)
        # and any thread entering FINISHED/LIMIT (what joins wait on).
        # A blocked thread whose last failed probe recorded the current
        # value (``Thread._bepoch``) is provably still stuck and its
        # re-probe is skipped (``Machine.run_quiescence``).
        self.probe_epoch = 0
        # Happens-before bookkeeping for the DPOR backend
        # (:mod:`repro.mc.dpor`): event-index table keyed by
        # ``("t", tid)`` / ``("w", addr)`` / ``("r", addr)`` / ``("v",)``
        # with immutable values.  Deliberately EXCLUDED from
        # ``canonical()`` and the byte encoding — the clocks describe
        # the execution path that produced the state, not the state
        # itself, so two path-equivalent states must still digest
        # equally.  Mutations flow through :meth:`clock_set` so the
        # undo journal restores the table bit-identically on revert.
        self.clocks = {}

    def clone(self):
        copy = State.__new__(State)
        copy.memory = dict(self.memory)
        copy.threads = {tid: t.clone() for tid, t in self.threads.items()}
        copy.next_tid = self.next_tid
        copy.heap_top = self.heap_top
        copy.reservations = dict(self.reservations)
        copy.violation = self.violation
        copy.trace_tail = self.trace_tail  # shared: the chain is immutable
        copy.trace_len = self.trace_len
        copy.output = list(self.output)
        copy.token_counter = self.token_counter
        copy.mem_hash = self.mem_hash
        copy.pending_mem = dict(self.pending_mem)
        copy.probe_epoch = self.probe_epoch
        copy.clocks = dict(self.clocks)  # values immutable, safe to share
        return copy

    def clock_set(self, key, value, journal=None):
        """Bind one DPOR clock entry, journaled for bit-identical revert.

        ``value`` must be immutable (an int event index or a tuple of
        them): revert reinstates the old binding by reference.
        """
        clocks = self.clocks
        old = clocks.get(key, _ABSENT)
        if journal is not None:
            if old is _ABSENT:
                journal.append((OP_CLK, key, False, None))
            else:
                journal.append((OP_CLK, key, True, old))
        clocks[key] = value

    # -- memory image (all mutation flows through these) ------------------

    def mem_write(self, addr, value, journal=None):
        """Write one cell, keeping the incremental digest in sync."""
        memory = self.memory
        old = memory.get(addr, _ABSENT)
        if old is _ABSENT:
            if journal is not None:
                journal.append((OP_MEM, addr, False, None))
            memory[addr] = value
            self.probe_epoch += 1
            if type(value) is tuple:
                self.pending_mem[addr] = value[1]
            elif value != 0:
                self.mem_hash ^= cell_hash(addr, value)
            return
        if old == value:
            return
        if journal is not None:
            journal.append((OP_MEM, addr, True, old))
        memory[addr] = value
        self.probe_epoch += 1
        if type(old) is tuple:
            del self.pending_mem[addr]
        elif old != 0:
            self.mem_hash ^= cell_hash(addr, old)
        if type(value) is tuple:
            self.pending_mem[addr] = value[1]
        elif value != 0:
            self.mem_hash ^= cell_hash(addr, value)

    def mem_del(self, addr, journal=None):
        """Drop one cell (stack reclamation), digest kept in sync."""
        old = self.memory.pop(addr, _ABSENT)
        if old is _ABSENT:
            return
        self.probe_epoch += 1
        if journal is not None:
            journal.append((OP_MEM, addr, True, old))
        if type(old) is tuple:
            del self.pending_mem[addr]
        elif old != 0:
            self.mem_hash ^= cell_hash(addr, old)

    def _mem_restore(self, addr, had, old):
        """Inverse of one journaled memory mutation (undo.revert)."""
        self.probe_epoch += 1  # a restore changes memory like any write
        memory = self.memory
        current = memory.get(addr, _ABSENT)
        if current is not _ABSENT:
            if type(current) is tuple:
                del self.pending_mem[addr]
            elif current != 0:
                self.mem_hash ^= cell_hash(addr, current)
        if had:
            memory[addr] = old
            if type(old) is tuple:
                self.pending_mem[addr] = old[1]
            elif old != 0:
                self.mem_hash ^= cell_hash(addr, old)
        elif current is not _ABSENT:
            del memory[addr]

    def log(self, message, journal=None):
        if self.trace_len < TRACE_CAP:
            if journal is not None:
                journal.append((OP_TRACE,))
            self.trace_tail = (self.trace_tail, message)
            self.trace_len += 1

    def trace_list(self):
        """Materialize the scheduler/commit trace, oldest first."""
        messages = []
        node = self.trace_tail
        while node is not None:
            node, message = node
            messages.append(message)
        messages.reverse()
        return messages

    def canonical(self):
        """Hashable canonical form (steps and token ids normalized)."""
        token_map = {}

        def canon_value(value):
            if is_pending(value):
                token = value[1]
                if token not in token_map:
                    token_map[token] = len(token_map)
                return ("p", token_map[token])
            return value

        thread_parts = []
        for tid in sorted(self.threads):
            thread = self.threads[tid]
            frames = []
            for frame in thread.frames:
                # Token ids are assigned in sorted-key order: env dict
                # insertion order is execution-path-dependent (the env
                # GC deletes and the undo log reinserts), so numbering
                # must follow content, not history.
                env = tuple(
                    (key, canon_value(frame.env[key]))
                    for key in sorted(frame.env)
                )
                allocas = tuple(sorted(frame.alloca_addrs.items()))
                frames.append(
                    (frame.function.name, frame.block.label, frame.index,
                     env, allocas)
                )
            window = tuple(
                entry.canonical(
                    _fill_tokens(entry, token_map)
                )
                for entry in thread.window
            )
            thread_parts.append(
                (tid, thread.status, tuple(frames), window, thread.stack_top)
            )
        memory = tuple(
            sorted(
                (addr, canon_value(value))
                for addr, value in self.memory.items()
                if value != 0
            )
        )
        reservations = tuple(sorted(self.reservations.items()))
        return (memory, tuple(thread_parts), reservations, self.next_tid,
                self.heap_top)


def _fill_tokens(entry, token_map):
    for token in (entry.token,
                  entry.value[1] if is_pending(entry.value) else None):
        if token is not None and token not in token_map:
            token_map[token] = len(token_map)
    return token_map


class ExecutionError(Exception):
    """Raised internally to flag a violation during a burst."""

    def __init__(self, message):
        self.message = message
        super().__init__(message)


class Machine:
    """Executes bursts and actions over states for one (module, model).

    ``journal`` is ``None`` for the clone engine; the in-place engine
    installs a list and every mutating site below appends undo records
    to it (see :mod:`repro.mc.undo` for the record catalogue).
    """

    def __init__(self, context, max_steps=2500):
        self.ctx = context
        self.max_steps = max_steps
        self.journal = None
        model = context.model
        self._loads_buffered = model.buffers_loads()
        self._stores_buffered = model.buffers_stores()
        self._dies = context.dies
        self._unused = context.unused
        self._opvals = context.operand_values
        # Journal epoch: bumped once per applied action.  Between two
        # epoch bumps the explorer never takes a revert mark, so one
        # OP_STEPS/OP_FIDX record per (thread/frame, epoch) restores
        # the whole run of increments — the journal shrinks from one
        # record per executed instruction to one per action.
        self._epoch = 0

    # -- construction -----------------------------------------------------

    def initial_state(self):
        state = State()
        for addr, value in self.ctx.global_layout:
            state.mem_write(addr, value)
        entry_fn = self.ctx.module.functions.get(self.ctx.entry)
        if entry_fn is None:
            raise ValueError(f"no entry function @{self.ctx.entry}")
        frame = Frame(entry_fn)
        thread = Thread(0, frame)
        state.threads[0] = thread
        state.next_tid = 1
        self.run_quiescence(state)
        return state

    # -- journaled primitive writes ---------------------------------------

    def _set_status(self, state, thread, status):
        if thread.status is status:
            return
        journal = self.journal
        touch(journal, thread)
        if journal is not None:
            journal.append((OP_STATUS, thread, thread.status))
        thread.status = status
        if status is FINISHED or status is LIMIT:
            # The only status transitions another thread's blocked
            # probe can observe (joins wait on these two).
            state.probe_epoch += 1

    def _set_violation(self, state, message):
        journal = self.journal
        if journal is not None:
            journal.append((OP_SSET, "violation", state.violation))
        state.violation = message

    # -- scheduling --------------------------------------------------------

    def run_quiescence(self, state):
        """Run every thread's invisible burst until nothing progresses.

        Blocked and ready threads are re-probed *without* flipping their
        status to RUN first: a probe that makes no progress re-derives
        the same status from the dispatch result, so the transient flip
        would only invalidate digest caches and grow the journal.  The
        probe itself is status-blind (``_run`` only refuses
        finished/limited threads), which is what lets a previously
        blocked thread advance once memory or a window changed.

        A probe can only be unblocked by *someone else's* progress
        (memory writes, token resolutions, threads finishing — all of
        which happen inside a progressing burst), so each thread records
        the quiescence "version" it last probed at and is skipped while
        the version is unchanged: the usual no-progress confirmation
        round costs one probe instead of one per thread.

        Across calls, ``Thread._bepoch`` memoizes a failed probe against
        ``State.probe_epoch``: a blocked probe's outcome depends only on
        memory cells, FINISHED/LIMIT transitions of other threads (both
        bump the epoch) and the thread's own content (whose every
        mutation clears the memo via ``undo.touch``), so while the two
        match the thread is provably still stuck and is not re-probed —
        a pure load-commit macro run re-probes nobody.
        """
        version = 0
        probed = {}
        progressed = True
        while progressed and state.violation is None:
            progressed = False
            for thread in list(state.threads.values()):
                status = thread.status
                if status is RUN or status is BLOCKED or status is READY:
                    if thread._bepoch == state.probe_epoch:
                        continue  # provably still stuck (see docstring)
                    tid = thread.tid
                    if probed.get(tid) == version:
                        continue  # nothing changed since its last probe
                    if self._burst(state, thread):
                        progressed = True
                        version += 1
                    probed[tid] = version
            # Join conditions may have been satisfied by finishing threads.

    def enabled_actions(self, state):
        """All scheduler choices available at a quiescent state."""
        actions = []
        may_commit = self.ctx.model.may_commit
        reservations = state.reservations
        for tid, thread in state.threads.items():
            if thread.status == READY:
                actions.append(("visible", tid))
            window = thread.window
            for index, entry in enumerate(window):
                if not may_commit(window, index):
                    continue
                if entry.kind != "load":
                    reserved_by = reservations.get(entry.addr)
                    if reserved_by is not None and reserved_by != tid:
                        continue
                actions.append(("commit", tid, index))
        return actions

    def apply_action(self, state, action):
        self._epoch += 1  # new revert-mark context (see __init__)
        kind = action[0]
        if kind == "visible":
            thread = state.threads[action[1]]
            try:
                self._run(state, thread, True)
            except ExecutionError as error:
                self._set_violation(state, error.message)
                return
        elif kind == "commit":
            self._commit(state, action[1], action[2])
        self.run_quiescence(state)

    # -- partial-order reduction support -----------------------------------

    def visible_footprint(self, state, tid):
        """Memory footprint of a READY thread's pending visible step.

        A thread is READY exactly when its next instruction is an
        *immediate* memory operation (every ``_VISIBLE`` return sits in
        ``_do_load``/``_do_store``/``_do_rmw``, after the address
        resolved — a pending address blocks instead), so the footprint
        can be peeked without executing anything.  Returns ``(kind,
        addr)`` with ``kind`` in ``{"load", "store", "rmw"}`` and a
        concrete address, or ``None`` when the instruction cannot be
        classified — callers must then treat the step as conflicting
        with everything.  The invisible burst that follows the
        immediate op never touches shared memory (that is what makes
        it invisible), so the footprint covers the whole action except
        the global allocation counters, which the DPOR driver tracks
        separately.
        """
        thread = state.threads.get(tid)
        if thread is None or not thread.frames:
            return None
        frame = thread.frames[-1]
        try:
            instr = frame.block.instructions[frame.index]
            if isinstance(instr, ins.Load):
                kind = "load"
            elif isinstance(instr, ins.Store):
                kind = "store"
            elif isinstance(instr, (ins.AtomicRMW, ins.Cmpxchg)):
                kind = "rmw"
            else:
                return None
            addr = self._value(frame, instr.pointer)
        except (IndexError, KeyError, ExecutionError):
            return None
        if type(addr) is not int:
            return None
        return (kind, addr)

    def action_invisible(self, state, action):
        """Is ``action`` a commit no *other* thread could ever observe?

        A *load* commit only reads memory, so it is invisible when no
        other live thread can ever **write** the address; a *store* (or
        RMW) commit is invisible only when no other thread can access
        the address at all.  "Can": the address is not pending in their
        windows (conflictingly), and the static access sets of their
        remaining code (including anything they may still call or
        spawn) cannot name it.  Such a commit commutes with every
        action of every other thread, so the explorer may take it as an
        uninterruptible singleton step.
        """
        if action[0] != "commit":
            return False
        tid, index = action[1], action[2]
        thread = state.threads[tid]
        entry = thread.window[index]
        addr = entry.addr
        # A load commit is a pure read; only writers can conflict.  The
        # "rmw" exec half also reads only, but it acquires a
        # reservation, so treat anything non-load as a write.
        read_only = entry.kind == "load"
        region = self.ctx.global_region(addr)
        for other_tid, other in state.threads.items():
            if other_tid == tid or other.status == FINISHED:
                continue
            for pending in other.window:
                if pending.addr == addr and (
                        not read_only or pending.kind != "load"):
                    return False
            if other.status == LIMIT:
                continue  # bounded away: its code never runs again
            for frame in other.frames:
                reads, runknown, writes, wunknown = (
                    self.ctx.func_access[frame.function.name])
                names, unknown = (
                    (writes, wunknown) if read_only else (reads, runknown))
                if unknown:
                    return False
                if region is not None and region in names:
                    return False
        # Threads the committing thread itself may still spawn run
        # concurrently with the rest of its window: their accesses
        # count as "other thread" accesses too.
        if thread.status not in (FINISHED, FINISHING, LIMIT):
            for frame in thread.frames:
                reads, runknown, writes, wunknown = (
                    self.ctx.spawn_access[frame.function.name])
                names, unknown = (
                    (writes, wunknown) if read_only else (reads, runknown))
                if unknown:
                    return False
                if region is not None and region in names:
                    return False
        return True

    # -- commits -------------------------------------------------------------

    def _commit(self, state, tid, index):
        journal = self.journal
        thread = state.threads[tid]
        touch(journal, thread)
        entry = thread.window[index]
        kind = entry.kind
        if kind == "load":
            value = state.memory.get(entry.addr, 0)
            if journal is not None:
                journal.append((OP_WDEL, thread, index, entry))
            del thread.window[index]
            self._resolve(state, thread, entry.token, value)
            if state.trace_len < TRACE_CAP:
                state.log(f"T{tid} commit load @{entry.addr} -> {value}",
                          journal)
        elif kind == "store":
            state.mem_write(entry.addr, entry.value, journal)
            if journal is not None:
                journal.append((OP_WDEL, thread, index, entry))
            del thread.window[index]
            if state.trace_len < TRACE_CAP:
                state.log(f"T{tid} commit store @{entry.addr} = {entry.value}",
                          journal)
        elif kind == "rmw":
            self._exec_rmw(state, thread, entry, index)
        else:  # rmw_store
            state.mem_write(entry.addr, entry.value, journal)
            if journal is not None:
                journal.append((OP_RES, entry.addr,
                                entry.addr in state.reservations,
                                state.reservations.get(entry.addr)))
            state.reservations.pop(entry.addr, None)
            if journal is not None:
                journal.append((OP_WDEL, thread, index, entry))
            del thread.window[index]
            if state.trace_len < TRACE_CAP:
                state.log(
                    f"T{tid} commit rmw-store @{entry.addr} = {entry.value}",
                    journal)
        if thread.status == FINISHING and not thread.window:
            self._set_status(state, thread, FINISHED)

    def _exec_rmw(self, state, thread, entry, index):
        journal = self.journal
        addr = entry.addr
        old = state.memory.get(addr, 0)
        token = entry.token
        if entry.rmw_expected is not None:
            # Compare-exchange.
            if old == entry.rmw_expected:
                if journal is not None:
                    journal.append((OP_WSET, thread, index, entry))
                thread.window[index] = WindowEntry(
                    "rmw_store", addr, entry.order, entry.instr,
                    value=entry.rmw_desired,
                )
                if journal is not None:
                    journal.append((OP_RES, addr, addr in state.reservations,
                                    state.reservations.get(addr)))
                state.reservations[addr] = thread.tid
            else:
                if journal is not None:
                    journal.append((OP_WDEL, thread, index, entry))
                del thread.window[index]  # failed CAS: no store half
        else:
            if journal is not None:
                journal.append((OP_WSET, thread, index, entry))
            thread.window[index] = WindowEntry(
                "rmw_store", addr, entry.order, entry.instr,
                value=_rmw_compute(entry.rmw_op, old, entry.rmw_operand),
            )
            if journal is not None:
                journal.append((OP_RES, addr, addr in state.reservations,
                                state.reservations.get(addr)))
            state.reservations[addr] = thread.tid
        self._resolve(state, thread, token, old)
        if state.trace_len < TRACE_CAP:
            state.log(f"T{thread.tid} exec rmw @{addr} old={old}", journal)

    def _resolve(self, state, thread, token, value):
        """Bind a pending load's value everywhere it may have flowed."""
        journal = self.journal
        touch(journal, thread)
        pending = (_PENDING, token)
        for index, frame in enumerate(thread.frames):
            if any(held == pending for held in frame.env.values()):
                frame = thread.mutable_frame_at(index, journal)
                env = frame.env
                for key, held in env.items():
                    if held == pending:
                        if journal is not None:
                            journal.append(
                                (OP_ENV, thread, frame, key, True, held))
                        env[key] = value
        window = thread.window
        for index, entry in enumerate(window):
            if entry.value == pending:
                if journal is not None:
                    journal.append((OP_WSET, thread, index, entry))
                window[index] = entry.resolved_with(value)
        if state.pending_mem:
            addrs = [addr for addr, held in state.pending_mem.items()
                     if held == token]
            for addr in addrs:
                state.mem_write(addr, value, journal)

    # -- bursts ------------------------------------------------------------------

    def _burst(self, state, thread):
        """Run invisible instructions; returns True if any progress."""
        try:
            return self._run(state, thread, False)
        except ExecutionError as error:
            self._set_violation(state, error.message)
            return True

    # -- the interpreter -------------------------------------------------------

    def _run(self, state, thread, visible_ok):
        """Run ``thread`` until it blocks, finishes, or needs a visible
        slot; returns True if any instruction executed.

        The whole burst runs in one loop with the loop-invariant lookups
        (journal, epoch, dispatch table, liveness tables, frame) hoisted
        out — per-instruction overhead is what bounds the explorer's
        states/s, so this path avoids one function call and a re-derived
        prologue per instruction.  Only the *first* iteration honours
        ``visible_ok``: a scheduled visible step immediately continues
        into its invisible suffix (quiescence is confluent — invisible
        steps never write shared memory, and the only cross-thread
        influence, threads *finishing*, is monotone — so folding the
        suffix into the same loop cannot change the fixpoint).
        """
        status = thread.status
        if status is FINISHED or status is FINISHING or status is LIMIT:
            return False
        journal = self.journal
        epoch = self._epoch
        max_steps = self.max_steps
        handlers = _HANDLERS
        dies_get = self._dies.get
        unused = self._unused
        frames = thread.frames
        owned = thread.owned
        top = len(frames) - 1
        if owned[top]:
            frame = frames[top]  # in-place engine: always owned
        else:
            frame = thread.mutable_frame_at(top, journal)
        progressed = False
        steps = thread.steps
        try:
            while True:
                if steps >= max_steps:
                    self._set_status(state, thread, LIMIT)
                    break
                instr = frame.block.instructions[frame.index]
                handler = handlers.get(instr.__class__)
                if handler is not None:
                    result = handler(
                        self, state, thread, frame, instr, visible_ok)
                else:
                    result = self._dispatch_generic(
                        state, thread, frame, instr, visible_ok)
                if result is _BLOCKED:
                    # A failed probe mutated nothing: no touch, no journal.
                    self._set_status(state, thread, BLOCKED)
                    thread._bepoch = state.probe_epoch  # memoize the failure
                    break
                if result is _VISIBLE:
                    self._set_status(state, thread, READY)
                    thread._bepoch = state.probe_epoch  # idem: probe-stable
                    break
                visible_ok = False  # only the scheduled step is visible
                progressed = True
                if journal is not None and thread._sepoch != epoch:
                    thread._sepoch = epoch
                    journal.append((OP_STEPS, thread, steps))
                steps += 1
                key = id(instr)
                # Env GC: the operands whose last use this instruction
                # was are unreadable from here on — drop them (Ret has
                # an empty list; its popped frame may be shared and
                # must not be written).
                dies = dies_get(key)
                if dies:
                    touch(journal, thread)
                    env = frame.env
                    for dkey in dies:
                        old = env.pop(dkey, _ABSENT)
                        if old is not _ABSENT and journal is not None:
                            journal.append(
                                (OP_ENV, thread, frame, dkey, True, old))
                    frame._skeys = None
                if result is _CONTROL:
                    # Branch/call/ret moved the PC: refetch the frame.
                    if not frames:
                        break  # root-frame return already set the status
                    top = len(frames) - 1
                    if owned[top]:
                        frame = frames[top]
                    else:
                        frame = thread.mutable_frame_at(top, journal)
                    continue
                env = frame.env
                touch(journal, thread)
                if key not in unused:  # skip never-read results entirely
                    had = key in env
                    if journal is not None:
                        journal.append((OP_ENV, thread, frame, key, had,
                                        env.get(key)))
                    if not had:
                        frame._skeys = None
                    env[key] = result
                if journal is not None and frame._iepoch != epoch:
                    frame._iepoch = epoch
                    journal.append((OP_FIDX, thread, frame, frame.index))
                frame.index += 1
        finally:
            # Also on ExecutionError: the journal's OP_STEPS snapshot
            # reverts from whatever value is current, so the counter
            # must reflect the executed prefix.
            thread.steps = steps
        return progressed

    def _dispatch_generic(self, state, thread, frame, instr, visible_ok):
        """Subclass-tolerant fallback for exact-class handler misses."""
        for cls, handler in _HANDLERS.items():
            if isinstance(instr, cls):
                return handler(self, state, thread, frame, instr, visible_ok)
        raise ExecutionError(f"model checker cannot execute {instr!r}")

    # -- operand evaluation -------------------------------------------------------

    def _value(self, frame, operand):
        key = id(operand)
        value = self._opvals.get(key, _ABSENT)
        if value is not _ABSENT:
            return value  # constant or global address, precomputed
        try:
            return frame.env[key]
        except KeyError:
            if isinstance(operand, (Argument, ins.Instruction)):
                raise  # a liveness/undo bug, not a user-program error
            raise ExecutionError(f"cannot evaluate operand {operand!r}")

    # -- memory operations ------------------------------------------------------------

    def _do_alloca(self, state, thread, frame, instr):
        addr = frame.alloca_addrs.get(id(instr))
        if addr is None:
            journal = self.journal
            touch(journal, thread)
            addr = thread.stack_top
            size = max(instr.allocated_type.size, 1)
            if journal is not None:
                journal.append((OP_STACK, thread, thread.stack_top))
                journal.append((OP_ALLOC, thread, frame, id(instr)))
            thread.stack_top = addr + size
            frame.alloca_addrs[id(instr)] = addr
            frame._salloc = None
            for offset in range(size):
                state.mem_write(addr + offset, 0, journal)
        return addr

    def _do_load(self, state, thread, frame, instr, visible_ok):
        addr = self._value(frame, instr.pointer)
        if type(addr) is tuple:
            return _BLOCKED
        if id(instr) in self.ctx.private:
            return state.memory.get(addr, 0)
        if self._loads_buffered:
            window = thread.window
            if len(window) >= self.ctx.model.window_limit:
                return _BLOCKED
            journal = self.journal
            touch(journal, thread)
            if journal is not None:
                journal.append((OP_SSET, "token_counter",
                                state.token_counter))
                journal.append((OP_WADD, thread))
            state.token_counter += 1
            token = state.token_counter
            window.append(
                WindowEntry("load", addr, instr.order, instr, token=token)
            )
            return (_PENDING, token)
        # Immediate load (SC / TSO): a visible scheduling point.
        if not visible_ok:
            return _VISIBLE
        if self._stores_buffered:
            for entry in reversed(thread.window):  # TSO store forwarding
                if entry.addr == addr and entry.kind in ("store", "rmw_store"):
                    return entry.value
        return state.memory.get(addr, 0)

    def _do_store(self, state, thread, frame, instr, visible_ok):
        addr = self._value(frame, instr.pointer)
        value = self._value(frame, instr.value)
        if type(addr) is tuple:
            return _BLOCKED
        if id(instr) in self.ctx.private:
            state.mem_write(addr, value, self.journal)  # tokens may flow
            return 0
        model = self.ctx.model
        if type(value) is tuple and not self._loads_buffered:
            return _BLOCKED
        if model.store_requires_drain(instr.order):
            if thread.window:
                return _BLOCKED
            if not visible_ok:
                return _VISIBLE
            if type(value) is tuple:
                return _BLOCKED
            state.mem_write(addr, value, self.journal)
            return 0
        if self._stores_buffered:
            window = thread.window
            if len(window) >= model.window_limit:
                return _BLOCKED
            journal = self.journal
            touch(journal, thread)
            if journal is not None:
                journal.append((OP_WADD, thread))
            window.append(
                WindowEntry("store", addr, instr.order, instr, value=value)
            )
            return 0
        if not visible_ok:
            return _VISIBLE
        state.mem_write(addr, value, self.journal)
        return 0

    def _do_rmw(self, state, thread, frame, instr, visible_ok):
        addr = self._value(frame, instr.pointer)
        if type(addr) is tuple:
            return _BLOCKED
        if isinstance(instr, ins.Cmpxchg):
            expected = self._value(frame, instr.expected)
            desired = self._value(frame, instr.desired)
            if type(expected) is tuple or type(desired) is tuple:
                return _BLOCKED
            op, operand = None, None
        else:
            operand = self._value(frame, instr.value)
            if type(operand) is tuple:
                return _BLOCKED
            op = instr.op
            expected = desired = None

        if id(instr) in self.ctx.private:
            old = state.memory.get(addr, 0)
            new = (
                desired
                if (op is None and old == expected)
                else old if op is None else _rmw_compute(op, old, operand)
            )
            state.mem_write(addr, new, self.journal)
            return old

        model = self.ctx.model
        if model.rmw_requires_drain():
            if thread.window:
                return _BLOCKED
            if not visible_ok:
                return _VISIBLE
            old = state.memory.get(addr, 0)
            if op is None:
                if old == expected:
                    state.mem_write(addr, desired, self.journal)
            else:
                state.mem_write(addr, _rmw_compute(op, old, operand),
                                self.journal)
            return old
        # WMM: enter the window; execution happens at commit time.
        window = thread.window
        if len(window) >= model.window_limit:
            return _BLOCKED
        journal = self.journal
        touch(journal, thread)
        if journal is not None:
            journal.append((OP_SSET, "token_counter", state.token_counter))
            journal.append((OP_WADD, thread))
        state.token_counter += 1
        token = state.token_counter
        window.append(
            WindowEntry(
                "rmw", addr, instr.order, instr, token=token,
                rmw_op=op, rmw_operand=operand,
                rmw_expected=expected, rmw_desired=desired,
            )
        )
        return (_PENDING, token)

    def _do_fence(self, thread):
        if thread.window:
            return _BLOCKED
        return 0

    def _do_gep(self, frame, instr):
        addr = self._value(frame, instr.base)
        if type(addr) is tuple:
            return _BLOCKED
        for step in instr.path:
            if step[0] == "field":
                struct_type, field_index = step[1], step[2]
                addr += sum(
                    ftype.size for _, ftype in struct_type.fields[:field_index]
                )
            else:
                element, index_value = step[1], self._value(frame, step[2])
                if type(index_value) is tuple:
                    return _BLOCKED
                addr += element.size * index_value
        return addr

    def _do_binop(self, frame, instr):
        left = self._value(frame, instr.left)
        right = self._value(frame, instr.right)
        if type(left) is tuple or type(right) is tuple:
            return _BLOCKED
        return _binop_compute(instr.op, left, right)

    # -- control -------------------------------------------------------------------------

    def _do_ret(self, state, thread, frame, instr):
        value = 0
        if instr.has_value:
            value = self._value(frame, instr.value)
            if type(value) is tuple:
                return _BLOCKED
        journal = self.journal
        touch(journal, thread)
        # Reclaim the frame's stack slots so re-execution is canonical.
        for addr in range(frame.stack_base, thread.stack_top):
            state.mem_del(addr, journal)
        if journal is not None:
            journal.append((OP_STACK, thread, thread.stack_top))
            journal.append((OP_FPOP, thread, thread.frames[-1],
                            thread.owned[-1]))
        thread.stack_top = frame.stack_base
        thread.pop_frame()
        if not thread.frames:
            self._set_status(state, thread,
                             FINISHING if thread.window else FINISHED)
            return _CONTROL
        caller = thread.mutable_frame(journal)
        call_instr = frame.call_instr
        if call_instr is not None and id(call_instr) not in self._unused:
            key = id(call_instr)
            env = caller.env
            had = key in env
            if journal is not None:
                journal.append((OP_ENV, thread, caller, key, had,
                                env.get(key)))
            if not had:
                caller._skeys = None
            env[key] = value
        if journal is not None:
            epoch = self._epoch
            if caller._iepoch != epoch:
                caller._iepoch = epoch
                journal.append((OP_FIDX, thread, caller, caller.index))
        caller.index += 1
        return _CONTROL

    def _do_call(self, state, thread, frame, instr):
        args = []
        for operand in instr.args:
            value = self._value(frame, operand)
            if type(value) is tuple:
                return _BLOCKED
            args.append(value)
        if len(thread.frames) > 64:
            raise ExecutionError(
                f"call-stack overflow in @{frame.function.name}"
            )
        callee_frame = Frame(instr.callee, call_instr=instr)
        callee_frame.stack_base = thread.stack_top
        for argument, value in zip(instr.callee.arguments, args):
            callee_frame.env[id(argument)] = value
        journal = self.journal
        touch(journal, thread)
        if journal is not None:
            journal.append((OP_FPUSH, thread))
        thread.push_frame(callee_frame)
        return _CONTROL

    def _do_thread_create(self, state, thread, frame, instr):
        arg = None
        if instr.arg is not None:
            arg = self._value(frame, instr.arg)
            if type(arg) is tuple:
                return _BLOCKED
        journal = self.journal
        tid = state.next_tid
        if journal is not None:
            journal.append((OP_SSET, "next_tid", tid))
            journal.append((OP_TNEW, tid))
        state.next_tid = tid + 1
        new_frame = Frame(instr.callee)
        new_thread = Thread(tid, new_frame)
        if instr.callee.arguments and arg is not None:
            new_frame.env[id(instr.callee.arguments[0])] = arg
        elif instr.callee.arguments:
            new_frame.env[id(instr.callee.arguments[0])] = 0
        state.threads[tid] = new_thread
        if state.trace_len < TRACE_CAP:
            state.log(f"T{thread.tid} spawns T{tid} @{instr.callee.name}",
                      journal)
        return tid

    def _do_thread_join(self, state, frame, instr):
        tid = self._value(frame, instr.tid)
        if type(tid) is tuple:
            return _BLOCKED
        target = state.threads.get(tid)
        if target is None:
            raise ExecutionError(f"join of unknown thread {tid}")
        if target.status == FINISHED:
            return 0
        if target.status == LIMIT:
            return 0  # bounded-away thread: treat as joined (truncation)
        return _BLOCKED

    def _do_malloc(self, state, frame, instr):
        size = self._value(frame, instr.size)
        if type(size) is tuple:
            return _BLOCKED
        journal = self.journal
        addr = state.heap_top
        if journal is not None:
            journal.append((OP_SSET, "heap_top", addr))
        span = max(int(size), 1)
        state.heap_top = addr + span
        memory = state.memory
        for offset in range(span):
            if addr + offset not in memory:
                state.mem_write(addr + offset, 0, journal)
        return addr


# Sentinels returned by the dispatch handlers.
_BLOCKED = object()
_VISIBLE = object()
_CONTROL = object()


# -- standalone dispatch handlers (uniform signature) -----------------------


def _h_br(machine, state, thread, frame, instr, visible_ok):
    journal = machine.journal
    touch(journal, thread)
    if journal is not None:
        journal.append((OP_FBLK, thread, frame, frame.block, frame.index))
        # The block record restores the index too: no OP_FIDX needed
        # for the rest of this epoch's run in the new block.
        frame._iepoch = machine._epoch
    frame.block = instr.target
    frame.index = 0
    return _CONTROL


def _h_condbr(machine, state, thread, frame, instr, visible_ok):
    cond = machine._value(frame, instr.cond)
    if type(cond) is tuple:
        return _BLOCKED
    journal = machine.journal
    touch(journal, thread)
    if journal is not None:
        journal.append((OP_FBLK, thread, frame, frame.block, frame.index))
        frame._iepoch = machine._epoch  # subsumes OP_FIDX (see _h_br)
    frame.block = instr.true_block if cond else instr.false_block
    frame.index = 0
    return _CONTROL


def _h_free(machine, state, thread, frame, instr, visible_ok):
    value = machine._value(frame, instr.pointer)
    return _BLOCKED if type(value) is tuple else 0


def _h_assert(machine, state, thread, frame, instr, visible_ok):
    cond = machine._value(frame, instr.cond)
    if type(cond) is tuple:
        return _BLOCKED
    if not cond:
        raise ExecutionError(
            f"assertion failed in @{frame.function.name}: "
            f"{instr.message or instr!r}"
        )
    return 0


def _h_print(machine, state, thread, frame, instr, visible_ok):
    value = machine._value(frame, instr.value)
    if type(value) is tuple:
        return _BLOCKED
    journal = machine.journal
    if journal is not None:
        journal.append((OP_OUT,))
    state.output.append(value)
    return 0


# Exact-class dispatch table (isinstance fallback in _dispatch_generic).
_HANDLERS = {
    ins.BinOp: lambda m, s, t, f, i, v: m._do_binop(f, i),
    ins.Load: lambda m, s, t, f, i, v: m._do_load(s, t, f, i, v),
    ins.Store: lambda m, s, t, f, i, v: m._do_store(s, t, f, i, v),
    ins.CondBr: _h_condbr,
    ins.Br: _h_br,
    ins.Gep: lambda m, s, t, f, i, v: m._do_gep(f, i),
    ins.Alloca: lambda m, s, t, f, i, v: m._do_alloca(s, t, f, i),
    ins.Cast: lambda m, s, t, f, i, v: m._value(f, i.value),
    ins.Cmpxchg: lambda m, s, t, f, i, v: m._do_rmw(s, t, f, i, v),
    ins.AtomicRMW: lambda m, s, t, f, i, v: m._do_rmw(s, t, f, i, v),
    ins.Fence: lambda m, s, t, f, i, v: m._do_fence(t),
    ins.Ret: lambda m, s, t, f, i, v: m._do_ret(s, t, f, i),
    ins.Call: lambda m, s, t, f, i, v: m._do_call(s, t, f, i),
    ins.ThreadCreate: lambda m, s, t, f, i, v: m._do_thread_create(s, t, f, i),
    ins.ThreadJoin: lambda m, s, t, f, i, v: m._do_thread_join(s, f, i),
    ins.Malloc: lambda m, s, t, f, i, v: m._do_malloc(s, f, i),
    ins.Free: _h_free,
    ins.Sleep: lambda m, s, t, f, i, v: 0,
    ins.CompilerBarrier: lambda m, s, t, f, i, v: 0,
    ins.AssertInst: _h_assert,
    ins.PrintInst: _h_print,
}


def _rmw_compute(op, old, operand):
    if op == "add":
        return old + operand
    if op == "sub":
        return old - operand
    if op == "or":
        return old | operand
    if op == "and":
        return old & operand
    if op == "xor":
        return old ^ operand
    if op == "xchg":
        return operand
    raise ExecutionError(f"unknown rmw op {op!r}")


def _binop_compute(op, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        quotient = abs(left) // abs(right)
        return -quotient if (left < 0) != (right < 0) else quotient
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        quotient = abs(left) // abs(right)
        quotient = -quotient if (left < 0) != (right < 0) else quotient
        return left - right * quotient
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << (right & 63)
    if op == ">>":
        return left >> (right & 63)
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise ExecutionError(f"unknown binop {op!r}")
