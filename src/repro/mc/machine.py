"""The operational multiprocessor machine used by the model checker.

Each thread runs an in-order *issue* stage over the IR and, under weak
models, an out-of-order *commit* stage over a bounded window of pending
memory operations (DESIGN.md §6).  Key ideas:

- **Private fast path**: accesses through non-escaping allocas are
  thread-private and execute immediately — a sound partial-order
  reduction that leaves only genuinely shared operations as scheduling
  points.
- **Lazy loads** (WMM): a shared load yields a *token*; execution
  continues until some instruction needs the value, at which point the
  scheduler must commit the load (reading memory at commit time).  This
  realizes load-reordering operationally, e.g. a seqlock's data read
  escaping its validation loop.
- **Split RMWs** (WMM): a compare-exchange first *executes* (atomic
  read + reservation), then its store half lingers as a release store
  that later plain stores may overtake — precisely the Armv8
  LDAXR/STLXR behaviour behind the MariaDB lf-hash bug (Figure 7).
"""

from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder
from repro.ir.values import Argument, Constant, GlobalVar

GLOBAL_BASE = 1_000
HEAP_BASE = 500_000
STACK_BASE = 1_000_000
STACK_SIZE = 50_000

_PENDING = "p"  # tag of pending-value tuples ('p', token)


def is_pending(value):
    return isinstance(value, tuple) and value[0] == _PENDING


class Context:
    """Immutable per-check data shared by all explored states."""

    def __init__(self, module, model, entry="main"):
        self.module = module
        self.model = model
        self.entry = entry
        self.global_addr = {}
        self.global_layout = []  # (addr, value) initial memory image
        self.global_regions = []  # (start, end, name), sorted by start
        addr = GLOBAL_BASE
        for gvar in module.globals.values():
            self.global_addr[gvar.name] = addr
            for offset, value in enumerate(gvar.initializer):
                if value != 0:
                    self.global_layout.append((addr + offset, value))
            size = max(gvar.value_type.size, 1)
            self.global_regions.append((addr, addr + size, gvar.name))
            addr += size
        # Static classification: which accesses are provably private.
        self.private = set()
        for function in module.functions.values():
            info = NonLocalInfo(function)
            for instr in function.instructions():
                if instr.is_memory_access():
                    pointer = instr.accessed_pointer()
                    if not info.is_nonlocal_pointer(pointer):
                        self.private.add(id(instr))
        self._compute_access_sets(module)

    # -- static reachable-access sets (for partial-order reduction) -------

    def _compute_access_sets(self, module):
        """For every function, which globals its transitive closure may
        touch non-privately.

        ``func_access[name]`` is ``(reads, runknown, writes, wunknown)``:
        the globals the function (or anything it transitively calls or
        spawns) may access / may write, with an ``unknown`` flag set when
        some access goes through a pointer we cannot attribute to a
        single global (heap, escaped stack, argument) and must be
        treated as touching anything.  ``reads`` includes the writes.
        ``spawn_access[name]`` is the same 4-tuple restricted to code
        only reachable through ``thread_create`` edges — the accesses a
        *new* thread spawned from here might perform.
        """
        direct = {}
        call_edges = {}
        create_edges = {}
        for function in module.functions.values():
            reads, writes = set(), set()
            runknown = wunknown = False
            calls = set()
            creates = set()
            for instr in function.instructions():
                if instr.is_memory_access() and id(instr) not in self.private:
                    is_write = not isinstance(instr, ins.Load)
                    root = _pointer_root(instr.accessed_pointer())
                    if root is None:
                        runknown = True
                        wunknown = wunknown or is_write
                    else:
                        reads.add(root)
                        if is_write:
                            writes.add(root)
                if isinstance(instr, ins.Call):
                    calls.add(instr.callee.name)
                elif isinstance(instr, ins.ThreadCreate):
                    creates.add(instr.callee.name)
            direct[function.name] = (reads, runknown, writes, wunknown)
            call_edges[function.name] = calls
            create_edges[function.name] = creates

        # Fixpoint over call + create edges: everything the function or
        # anything it (transitively) runs or spawns may access.
        _TOP = (set(), True, set(), True)
        access = {
            name: (set(t[0]), t[1], set(t[2]), t[3])
            for name, t in direct.items()
        }
        changed = True
        while changed:
            changed = False
            for name in access:
                reads, runknown, writes, wunknown = access[name]
                for callee in call_edges[name] | create_edges[name]:
                    cr, cru, cw, cwu = access.get(callee, _TOP)
                    if not reads >= cr:
                        reads |= cr
                        changed = True
                    if not writes >= cw:
                        writes |= cw
                        changed = True
                    if (cru and not runknown) or (cwu and not wunknown):
                        runknown = runknown or cru
                        wunknown = wunknown or cwu
                        changed = True
                access[name] = (reads, runknown, writes, wunknown)
        self.func_access = {
            name: (frozenset(t[0]), t[1], frozenset(t[2]), t[3])
            for name, t in access.items()
        }

        # Call-closure (calls only, no create edges) per function.
        closure = {}
        for name in call_edges:
            seen = {name}
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for callee in call_edges.get(current, ()):
                    if callee not in seen:
                        seen.add(callee)
                        frontier.append(callee)
            closure[name] = seen
        _FTOP = (frozenset(), True, frozenset(), True)
        self.spawn_access = {}
        for name, funcs in closure.items():
            reads, writes = set(), set()
            runknown = wunknown = False
            for fn in funcs:
                for callee in create_edges.get(fn, ()):
                    cr, cru, cw, cwu = self.func_access.get(callee, _FTOP)
                    reads |= cr
                    writes |= cw
                    runknown = runknown or cru
                    wunknown = wunknown or cwu
            self.spawn_access[name] = (
                frozenset(reads), runknown, frozenset(writes), wunknown,
            )

    def global_region(self, addr):
        """Name of the global variable containing ``addr``, or None."""
        from bisect import bisect_right

        regions = self.global_regions
        index = bisect_right(regions, (addr, float("inf"), "")) - 1
        if index >= 0:
            start, end, name = regions[index]
            if start <= addr < end:
                return name
        return None


def _pointer_root(pointer):
    """The global a pointer provably points into, or None (unknown)."""
    while True:
        if isinstance(pointer, GlobalVar):
            return pointer.name
        if isinstance(pointer, ins.Gep):
            pointer = pointer.base
        elif isinstance(pointer, ins.Cast):
            pointer = pointer.value
        else:
            return None


class WindowEntry:
    """One pending memory operation in a thread's commit window.

    Entries are *immutable* once constructed: every in-place update the
    machine used to perform (executing an RMW, resolving a pending
    value) now replaces the entry instead.  Immutability lets cloned
    states share entry objects and lets ``canonical`` memoize itself.
    """

    __slots__ = (
        "kind",
        "addr",
        "value",
        "order",
        "token",
        "instr",
        "rmw_op",
        "rmw_operand",
        "rmw_expected",
        "rmw_desired",
        "_canon",
    )

    def __init__(self, kind, addr, order, instr, value=None, token=None,
                 rmw_op=None, rmw_operand=None, rmw_expected=None,
                 rmw_desired=None):
        self.kind = kind  # "load" | "store" | "rmw" | "rmw_store"
        self.addr = addr
        self.value = value
        self.order = order
        self.token = token
        self.instr = instr
        self.rmw_op = rmw_op
        self.rmw_operand = rmw_operand
        self.rmw_expected = rmw_expected
        self.rmw_desired = rmw_desired
        self._canon = None

    def resolved_with(self, value):
        """A copy of this entry with its pending value bound."""
        return WindowEntry(
            self.kind, self.addr, self.order, self.instr, value,
            self.token, self.rmw_op, self.rmw_operand, self.rmw_expected,
            self.rmw_desired,
        )

    def value_pending(self):
        return is_pending(self.value)

    def is_acquire(self):
        if self.kind == "rmw":
            # The RMW's load half is acquire only for acquire/SC orders;
            # a relaxed LL/SC pair orders nothing (plain LDXR on Arm).
            return self.order.has_acquire
        return self.kind == "load" and self.order.has_acquire

    def is_release(self):
        if self.kind == "rmw_store":
            # Likewise: only release/SC RMWs get a store-release half.
            return self.order.has_release
        return self.kind == "store" and self.order.has_release

    def is_sc(self):
        return self.order is MemoryOrder.SEQ_CST

    def canonical(self, token_map):
        if self._canon is not None:
            return self._canon
        value = self.value
        if is_pending(value):
            value = ("p", token_map[value[1]])
        token = token_map.get(self.token) if self.token is not None else None
        result = (self.kind, self.addr, value, int(self.order), token,
                  self.rmw_op, self.rmw_operand, self.rmw_expected,
                  self.rmw_desired)
        if self.token is None and not is_pending(self.value):
            # Token-free entries canonicalize the same way in every
            # state, so the tuple can be cached on the (immutable) entry.
            self._canon = result
        return result

    def __repr__(self):
        return (
            f"<{self.kind} @{self.addr} = {self.value} "
            f"{self.order.name.lower()}>"
        )


class Frame:
    """One activation record of the in-order issue stage."""

    __slots__ = ("function", "block", "index", "env", "alloca_addrs",
                 "stack_base", "call_instr")

    def __init__(self, function, call_instr=None):
        self.function = function
        self.block = function.entry
        self.index = 0
        self.env = {}
        self.alloca_addrs = {}
        self.stack_base = None
        self.call_instr = call_instr

    def clone(self):
        copy = Frame.__new__(Frame)
        copy.function = self.function
        copy.block = self.block
        copy.index = self.index
        copy.env = dict(self.env)
        copy.alloca_addrs = dict(self.alloca_addrs)
        copy.stack_base = self.stack_base
        copy.call_instr = self.call_instr
        return copy


# Thread statuses.
RUN = "run"
BLOCKED = "blocked"
READY = "ready"  # next instruction is a visible (immediate) memory op
FINISHING = "finishing"  # code done, window still draining
FINISHED = "finished"
LIMIT = "limit"  # hit the per-thread step bound


class Thread:
    __slots__ = ("tid", "frames", "window", "status", "steps", "stack_top",
                 "owned")

    def __init__(self, tid, frame):
        self.tid = tid
        self.frames = [frame]
        self.owned = [True]
        self.window = []
        self.status = RUN
        self.steps = 0
        self.stack_top = STACK_BASE + tid * STACK_SIZE
        frame.stack_base = self.stack_top

    def clone(self):
        """Copy-on-write clone: frames and window entries are shared.

        Window entries are immutable, so sharing them is always safe.
        Frames are mutable, so *both* sides drop ownership: whichever
        state mutates a shared frame first clones it privately via
        :meth:`mutable_frame`.
        """
        copy = Thread.__new__(Thread)
        copy.tid = self.tid
        copy.frames = list(self.frames)
        copy.window = list(self.window)
        copy.status = self.status
        copy.steps = self.steps
        copy.stack_top = self.stack_top
        copy.owned = [False] * len(self.frames)
        self.owned = [False] * len(self.frames)
        return copy

    @property
    def frame(self):
        return self.frames[-1]

    def mutable_frame(self):
        """The top frame, privately owned (cloned on first write)."""
        return self.mutable_frame_at(len(self.frames) - 1)

    def mutable_frame_at(self, index):
        if not self.owned[index]:
            self.frames[index] = self.frames[index].clone()
            self.owned[index] = True
        return self.frames[index]

    def push_frame(self, frame):
        self.frames.append(frame)
        self.owned.append(True)

    def pop_frame(self):
        self.owned.pop()
        return self.frames.pop()

    def done(self):
        return self.status in (FINISHED, LIMIT)


class State:
    """A full machine state; cloned at every exploration branch."""

    __slots__ = ("memory", "threads", "next_tid", "heap_top", "reservations",
                 "violation", "trace_tail", "trace_len", "output",
                 "token_counter")

    def __init__(self):
        self.memory = {}
        self.threads = {}
        self.next_tid = 0
        self.heap_top = HEAP_BASE
        self.reservations = {}
        self.violation = None
        self.trace_tail = None  # persistent (parent, message) chain
        self.trace_len = 0
        self.output = []
        self.token_counter = 0

    def clone(self):
        copy = State.__new__(State)
        copy.memory = dict(self.memory)
        copy.threads = {tid: t.clone() for tid, t in self.threads.items()}
        copy.next_tid = self.next_tid
        copy.heap_top = self.heap_top
        copy.reservations = dict(self.reservations)
        copy.violation = self.violation
        copy.trace_tail = self.trace_tail  # shared: the chain is immutable
        copy.trace_len = self.trace_len
        copy.output = list(self.output)
        copy.token_counter = self.token_counter
        return copy

    def log(self, message):
        if self.trace_len < 400:
            self.trace_tail = (self.trace_tail, message)
            self.trace_len += 1

    def trace_list(self):
        """Materialize the scheduler/commit trace, oldest first."""
        messages = []
        node = self.trace_tail
        while node is not None:
            node, message = node
            messages.append(message)
        messages.reverse()
        return messages

    def canonical(self):
        """Hashable canonical form (steps and token ids normalized)."""
        token_map = {}

        def canon_value(value):
            if is_pending(value):
                token = value[1]
                if token not in token_map:
                    token_map[token] = len(token_map)
                return ("p", token_map[token])
            return value

        thread_parts = []
        for tid in sorted(self.threads):
            thread = self.threads[tid]
            frames = []
            for frame in thread.frames:
                env = tuple(
                    sorted(
                        (key, canon_value(value))
                        for key, value in frame.env.items()
                    )
                )
                allocas = tuple(sorted(frame.alloca_addrs.items()))
                frames.append(
                    (frame.function.name, frame.block.label, frame.index,
                     env, allocas)
                )
            window = tuple(
                entry.canonical(
                    _fill_tokens(entry, token_map)
                )
                for entry in thread.window
            )
            thread_parts.append(
                (tid, thread.status, tuple(frames), window, thread.stack_top)
            )
        memory = tuple(
            sorted(
                (addr, canon_value(value))
                for addr, value in self.memory.items()
                if value != 0
            )
        )
        reservations = tuple(sorted(self.reservations.items()))
        return (memory, tuple(thread_parts), reservations, self.next_tid,
                self.heap_top)


def _fill_tokens(entry, token_map):
    for token in (entry.token,
                  entry.value[1] if is_pending(entry.value) else None):
        if token is not None and token not in token_map:
            token_map[token] = len(token_map)
    return token_map


class ExecutionError(Exception):
    """Raised internally to flag a violation during a burst."""

    def __init__(self, message):
        self.message = message
        super().__init__(message)


class Machine:
    """Executes bursts and actions over states for one (module, model)."""

    def __init__(self, context, max_steps=2500):
        self.ctx = context
        self.max_steps = max_steps

    # -- construction -----------------------------------------------------

    def initial_state(self):
        state = State()
        for addr, value in self.ctx.global_layout:
            state.memory[addr] = value
        entry_fn = self.ctx.module.functions.get(self.ctx.entry)
        if entry_fn is None:
            raise ValueError(f"no entry function @{self.ctx.entry}")
        frame = Frame(entry_fn)
        thread = Thread(0, frame)
        state.threads[0] = thread
        state.next_tid = 1
        self.run_quiescence(state)
        return state

    # -- scheduling --------------------------------------------------------

    def run_quiescence(self, state):
        """Run every thread's invisible burst until nothing progresses."""
        progressed = True
        while progressed and state.violation is None:
            progressed = False
            for tid in sorted(state.threads):
                thread = state.threads[tid]
                if thread.status in (RUN, BLOCKED):
                    thread.status = RUN
                    if self._burst(state, thread):
                        progressed = True
            # Join conditions may have been satisfied by finishing threads.

    def enabled_actions(self, state):
        """All scheduler choices available at a quiescent state."""
        actions = []
        for tid in sorted(state.threads):
            thread = state.threads[tid]
            if thread.status == READY:
                actions.append(("visible", tid))
            for index, entry in enumerate(thread.window):
                if not self.ctx.model.may_commit(thread.window, index):
                    continue
                reserved_by = state.reservations.get(entry.addr)
                if entry.kind in ("store", "rmw", "rmw_store"):
                    if reserved_by is not None and reserved_by != tid:
                        continue
                actions.append(("commit", tid, index))
        return actions

    def apply_action(self, state, action):
        kind = action[0]
        if kind == "visible":
            thread = state.threads[action[1]]
            thread.status = RUN
            try:
                self._execute(state, thread, visible_ok=True)
            except ExecutionError as error:
                state.violation = error.message
                return
        elif kind == "commit":
            self._commit(state, action[1], action[2])
        self._wake_all(state)
        self.run_quiescence(state)

    def _wake_all(self, state):
        for thread in state.threads.values():
            if thread.status in (BLOCKED, READY):
                thread.status = RUN

    # -- partial-order reduction support -----------------------------------

    def action_invisible(self, state, action):
        """Is ``action`` a commit no *other* thread could ever observe?

        A *load* commit only reads memory, so it is invisible when no
        other live thread can ever **write** the address; a *store* (or
        RMW) commit is invisible only when no other thread can access
        the address at all.  "Can": the address is not pending in their
        windows (conflictingly), and the static access sets of their
        remaining code (including anything they may still call or
        spawn) cannot name it.  Such a commit commutes with every
        action of every other thread, so the explorer may take it as an
        uninterruptible singleton step.
        """
        if action[0] != "commit":
            return False
        tid, index = action[1], action[2]
        thread = state.threads[tid]
        entry = thread.window[index]
        addr = entry.addr
        # A load commit is a pure read; only writers can conflict.  The
        # "rmw" exec half also reads only, but it acquires a
        # reservation, so treat anything non-load as a write.
        read_only = entry.kind == "load"
        region = self.ctx.global_region(addr)
        for other_tid, other in state.threads.items():
            if other_tid == tid or other.status == FINISHED:
                continue
            for pending in other.window:
                if pending.addr == addr and (
                        not read_only or pending.kind != "load"):
                    return False
            if other.status == LIMIT:
                continue  # bounded away: its code never runs again
            for frame in other.frames:
                reads, runknown, writes, wunknown = (
                    self.ctx.func_access[frame.function.name])
                names, unknown = (
                    (writes, wunknown) if read_only else (reads, runknown))
                if unknown:
                    return False
                if region is not None and region in names:
                    return False
        # Threads the committing thread itself may still spawn run
        # concurrently with the rest of its window: their accesses
        # count as "other thread" accesses too.
        if thread.status not in (FINISHED, FINISHING, LIMIT):
            for frame in thread.frames:
                reads, runknown, writes, wunknown = (
                    self.ctx.spawn_access[frame.function.name])
                names, unknown = (
                    (writes, wunknown) if read_only else (reads, runknown))
                if unknown:
                    return False
                if region is not None and region in names:
                    return False
        return True

    # -- commits -------------------------------------------------------------

    def _commit(self, state, tid, index):
        thread = state.threads[tid]
        entry = thread.window[index]
        if entry.kind == "load":
            value = state.memory.get(entry.addr, 0)
            del thread.window[index]
            self._resolve(state, thread, entry.token, value)
            state.log(f"T{tid} commit load @{entry.addr} -> {value}")
        elif entry.kind == "store":
            state.memory[entry.addr] = entry.value
            del thread.window[index]
            state.log(f"T{tid} commit store @{entry.addr} = {entry.value}")
        elif entry.kind == "rmw":
            self._exec_rmw(state, thread, entry, index)
        elif entry.kind == "rmw_store":
            state.memory[entry.addr] = entry.value
            state.reservations.pop(entry.addr, None)
            del thread.window[index]
            state.log(f"T{tid} commit rmw-store @{entry.addr} = {entry.value}")
        if thread.status == FINISHING and not thread.window:
            thread.status = FINISHED

    def _exec_rmw(self, state, thread, entry, index):
        old = state.memory.get(entry.addr, 0)
        token = entry.token
        if entry.rmw_expected is not None:
            # Compare-exchange.
            if old == entry.rmw_expected:
                thread.window[index] = WindowEntry(
                    "rmw_store", entry.addr, entry.order, entry.instr,
                    value=entry.rmw_desired,
                )
                state.reservations[entry.addr] = thread.tid
            else:
                del thread.window[index]  # failed CAS: no store half
        else:
            thread.window[index] = WindowEntry(
                "rmw_store", entry.addr, entry.order, entry.instr,
                value=_rmw_compute(entry.rmw_op, old, entry.rmw_operand),
            )
            state.reservations[entry.addr] = thread.tid
        self._resolve(state, thread, token, old)
        state.log(f"T{thread.tid} exec rmw @{entry.addr} old={old}")

    def _resolve(self, state, thread, token, value):
        """Bind a pending load's value everywhere it may have flowed."""
        pending = (_PENDING, token)
        for index, frame in enumerate(thread.frames):
            if any(held == pending for held in frame.env.values()):
                frame = thread.mutable_frame_at(index)
                for key, held in frame.env.items():
                    if held == pending:
                        frame.env[key] = value
        for index, entry in enumerate(thread.window):
            if entry.value == pending:
                thread.window[index] = entry.resolved_with(value)
        for addr, held in state.memory.items():
            if held == pending:
                state.memory[addr] = value

    # -- bursts ------------------------------------------------------------------

    def _burst(self, state, thread):
        """Run invisible instructions; returns True if any progress."""
        progressed = False
        while thread.status == RUN:
            try:
                stepped = self._execute(state, thread, visible_ok=False)
            except ExecutionError as error:
                state.violation = error.message
                return True
            if not stepped:
                break
            progressed = True
        return progressed

    # -- the interpreter -------------------------------------------------------

    def _execute(self, state, thread, visible_ok):
        """Execute one instruction; returns True if the PC advanced."""
        if thread.status in (FINISHED, FINISHING, LIMIT):
            return False
        if thread.steps >= self.max_steps:
            thread.status = LIMIT
            return False
        frame = thread.mutable_frame()
        instr = frame.block.instructions[frame.index]
        thread.steps += 1

        result = self._dispatch(state, thread, frame, instr, visible_ok)
        if result is _BLOCKED:
            thread.status = BLOCKED
            thread.steps -= 1
            return False
        if result is _VISIBLE:
            thread.status = READY
            thread.steps -= 1
            return False
        if result is _CONTROL:
            return True  # dispatch already moved the PC
        frame.env[id(instr)] = result
        frame.index += 1
        return True

    def _dispatch(self, state, thread, frame, instr, visible_ok):
        if isinstance(instr, ins.Alloca):
            return self._do_alloca(state, thread, frame, instr)
        if isinstance(instr, ins.Load):
            return self._do_load(state, thread, frame, instr, visible_ok)
        if isinstance(instr, ins.Store):
            return self._do_store(state, thread, frame, instr, visible_ok)
        if isinstance(instr, ins.Gep):
            return self._do_gep(frame, instr)
        if isinstance(instr, ins.BinOp):
            return self._do_binop(frame, instr)
        if isinstance(instr, ins.Cast):
            return self._value(frame, instr.value)
        if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
            return self._do_rmw(state, thread, frame, instr, visible_ok)
        if isinstance(instr, ins.Fence):
            return self._do_fence(thread)
        if isinstance(instr, ins.Br):
            frame.block = instr.target
            frame.index = 0
            return _CONTROL
        if isinstance(instr, ins.CondBr):
            cond = self._value(frame, instr.cond)
            if is_pending(cond):
                return _BLOCKED
            frame.block = instr.true_block if cond else instr.false_block
            frame.index = 0
            return _CONTROL
        if isinstance(instr, ins.Ret):
            return self._do_ret(state, thread, frame, instr)
        if isinstance(instr, ins.Call):
            return self._do_call(state, thread, frame, instr)
        if isinstance(instr, ins.ThreadCreate):
            return self._do_thread_create(state, thread, frame, instr)
        if isinstance(instr, ins.ThreadJoin):
            return self._do_thread_join(state, frame, instr)
        if isinstance(instr, ins.Malloc):
            return self._do_malloc(state, frame, instr)
        if isinstance(instr, ins.Free):
            value = self._value(frame, instr.pointer)
            return 0 if not is_pending(value) else _BLOCKED
        if isinstance(instr, ins.Sleep):
            return 0  # no memory semantics
        if isinstance(instr, ins.CompilerBarrier):
            return 0  # hardware-invisible
        if isinstance(instr, ins.AssertInst):
            cond = self._value(frame, instr.cond)
            if is_pending(cond):
                return _BLOCKED
            if not cond:
                raise ExecutionError(
                    f"assertion failed in @{frame.function.name}: "
                    f"{instr.message or instr!r}"
                )
            return 0
        if isinstance(instr, ins.PrintInst):
            value = self._value(frame, instr.value)
            if is_pending(value):
                return _BLOCKED
            state.output.append(value)
            return 0
        raise ExecutionError(f"model checker cannot execute {instr!r}")

    # -- operand evaluation -------------------------------------------------------

    def _value(self, frame, operand):
        if isinstance(operand, Constant):
            return operand.value
        if isinstance(operand, GlobalVar):
            return self.ctx.global_addr[operand.name]
        if isinstance(operand, (Argument, ins.Instruction)):
            return frame.env[id(operand)]
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    # -- memory operations ------------------------------------------------------------

    def _do_alloca(self, state, thread, frame, instr):
        addr = frame.alloca_addrs.get(id(instr))
        if addr is None:
            addr = thread.stack_top
            size = max(instr.allocated_type.size, 1)
            thread.stack_top += size
            frame.alloca_addrs[id(instr)] = addr
            for offset in range(size):
                state.memory[addr + offset] = 0
        return addr

    def _do_load(self, state, thread, frame, instr, visible_ok):
        addr = self._value(frame, instr.pointer)
        if is_pending(addr):
            return _BLOCKED
        if id(instr) in self.ctx.private:
            return state.memory.get(addr, 0)
        model = self.ctx.model
        if model.buffers_loads():
            if len(thread.window) >= model.window_limit:
                return _BLOCKED
            state.token_counter += 1
            token = state.token_counter
            thread.window.append(
                WindowEntry("load", addr, instr.order, instr, token=token)
            )
            return (_PENDING, token)
        # Immediate load (SC / TSO): a visible scheduling point.
        if not visible_ok:
            return _VISIBLE
        if model.buffers_stores():
            for entry in reversed(thread.window):  # TSO store forwarding
                if entry.addr == addr and entry.kind in ("store", "rmw_store"):
                    return entry.value
        return state.memory.get(addr, 0)

    def _do_store(self, state, thread, frame, instr, visible_ok):
        addr = self._value(frame, instr.pointer)
        value = self._value(frame, instr.value)
        if is_pending(addr):
            return _BLOCKED
        if id(instr) in self.ctx.private:
            state.memory[addr] = value  # tokens may flow through
            return 0
        model = self.ctx.model
        if is_pending(value) and not model.buffers_loads():
            return _BLOCKED
        if model.store_requires_drain(instr.order):
            if thread.window:
                return _BLOCKED
            if not visible_ok:
                return _VISIBLE
            if is_pending(value):
                return _BLOCKED
            state.memory[addr] = value
            return 0
        if model.buffers_stores():
            if len(thread.window) >= model.window_limit:
                return _BLOCKED
            thread.window.append(
                WindowEntry("store", addr, instr.order, instr, value=value)
            )
            return 0
        if not visible_ok:
            return _VISIBLE
        state.memory[addr] = value
        return 0

    def _do_rmw(self, state, thread, frame, instr, visible_ok):
        addr = self._value(frame, instr.pointer)
        if is_pending(addr):
            return _BLOCKED
        if isinstance(instr, ins.Cmpxchg):
            expected = self._value(frame, instr.expected)
            desired = self._value(frame, instr.desired)
            if is_pending(expected) or is_pending(desired):
                return _BLOCKED
            op, operand = None, None
        else:
            operand = self._value(frame, instr.value)
            if is_pending(operand):
                return _BLOCKED
            op = instr.op
            expected = desired = None

        if id(instr) in self.ctx.private:
            old = state.memory.get(addr, 0)
            new = (
                desired
                if (op is None and old == expected)
                else old if op is None else _rmw_compute(op, old, operand)
            )
            state.memory[addr] = new
            return old

        model = self.ctx.model
        if model.rmw_requires_drain():
            if thread.window:
                return _BLOCKED
            if not visible_ok:
                return _VISIBLE
            old = state.memory.get(addr, 0)
            if op is None:
                if old == expected:
                    state.memory[addr] = desired
            else:
                state.memory[addr] = _rmw_compute(op, old, operand)
            return old
        # WMM: enter the window; execution happens at commit time.
        if len(thread.window) >= model.window_limit:
            return _BLOCKED
        state.token_counter += 1
        token = state.token_counter
        thread.window.append(
            WindowEntry(
                "rmw", addr, instr.order, instr, token=token,
                rmw_op=op, rmw_operand=operand,
                rmw_expected=expected, rmw_desired=desired,
            )
        )
        return (_PENDING, token)

    def _do_fence(self, thread):
        if thread.window:
            return _BLOCKED
        return 0

    def _do_gep(self, frame, instr):
        addr = self._value(frame, instr.base)
        if is_pending(addr):
            return _BLOCKED
        for step in instr.path:
            if step[0] == "field":
                struct_type, field_index = step[1], step[2]
                addr += sum(
                    ftype.size for _, ftype in struct_type.fields[:field_index]
                )
            else:
                element, index_value = step[1], self._value(frame, step[2])
                if is_pending(index_value):
                    return _BLOCKED
                addr += element.size * index_value
        return addr

    def _do_binop(self, frame, instr):
        left = self._value(frame, instr.left)
        right = self._value(frame, instr.right)
        if is_pending(left) or is_pending(right):
            return _BLOCKED
        return _binop_compute(instr.op, left, right)

    # -- control -------------------------------------------------------------------------

    def _do_ret(self, state, thread, frame, instr):
        value = 0
        if instr.has_value:
            value = self._value(frame, instr.value)
            if is_pending(value):
                return _BLOCKED
        # Reclaim the frame's stack slots so re-execution is canonical.
        for addr in range(frame.stack_base, thread.stack_top):
            state.memory.pop(addr, None)
        thread.stack_top = frame.stack_base
        thread.pop_frame()
        if not thread.frames:
            thread.status = FINISHING if thread.window else FINISHED
            return _CONTROL
        caller = thread.mutable_frame()
        call_instr = frame.call_instr
        if call_instr is not None:
            caller.env[id(call_instr)] = value
        caller.index += 1
        return _CONTROL

    def _do_call(self, state, thread, frame, instr):
        args = []
        for operand in instr.args:
            value = self._value(frame, operand)
            if is_pending(value):
                return _BLOCKED
            args.append(value)
        if len(thread.frames) > 64:
            raise ExecutionError(
                f"call-stack overflow in @{frame.function.name}"
            )
        callee_frame = Frame(instr.callee, call_instr=instr)
        callee_frame.stack_base = thread.stack_top
        for argument, value in zip(instr.callee.arguments, args):
            callee_frame.env[id(argument)] = value
        thread.push_frame(callee_frame)
        return _CONTROL

    def _do_thread_create(self, state, thread, frame, instr):
        arg = None
        if instr.arg is not None:
            arg = self._value(frame, instr.arg)
            if is_pending(arg):
                return _BLOCKED
        tid = state.next_tid
        state.next_tid += 1
        new_frame = Frame(instr.callee)
        new_thread = Thread(tid, new_frame)
        if instr.callee.arguments and arg is not None:
            new_frame.env[id(instr.callee.arguments[0])] = arg
        elif instr.callee.arguments:
            new_frame.env[id(instr.callee.arguments[0])] = 0
        state.threads[tid] = new_thread
        state.log(f"T{thread.tid} spawns T{tid} @{instr.callee.name}")
        return tid

    def _do_thread_join(self, state, frame, instr):
        tid = self._value(frame, instr.tid)
        if is_pending(tid):
            return _BLOCKED
        target = state.threads.get(tid)
        if target is None:
            raise ExecutionError(f"join of unknown thread {tid}")
        if target.status == FINISHED:
            return 0
        if target.status == LIMIT:
            return 0  # bounded-away thread: treat as joined (truncation)
        return _BLOCKED

    def _do_malloc(self, state, frame, instr):
        size = self._value(frame, instr.size)
        if is_pending(size):
            return _BLOCKED
        addr = state.heap_top
        state.heap_top += max(int(size), 1)
        for offset in range(max(int(size), 1)):
            state.memory.setdefault(addr + offset, 0)
        return addr


# Sentinels returned by _dispatch.
_BLOCKED = object()
_VISIBLE = object()
_CONTROL = object()


def _rmw_compute(op, old, operand):
    if op == "add":
        return old + operand
    if op == "sub":
        return old - operand
    if op == "or":
        return old | operand
    if op == "and":
        return old & operand
    if op == "xor":
        return old ^ operand
    if op == "xchg":
        return operand
    raise ExecutionError(f"unknown rmw op {op!r}")


def _binop_compute(op, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        quotient = abs(left) // abs(right)
        return -quotient if (left < 0) != (right < 0) else quotient
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        quotient = abs(left) // abs(right)
        quotient = -quotient if (left < 0) != (right < 0) else quotient
        return left - right * quotient
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << (right & 63)
    if op == ">>":
        return left >> (right & 63)
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise ExecutionError(f"unknown binop {op!r}")
