"""Source-DPOR exploration backend (DESIGN.md §6h).

Dynamic partial-order reduction in the source-set style of Abdulla,
Aronis, Jonsson and Sagonas: instead of pre-computing which actions
commute (sleep sets prune *pairs* as they are discovered), the DFS
maintains a happens-before order over the events of the current
execution via vector clocks, detects *reversible races* the moment the
second event of the race executes, and schedules only the *source set*
of each race for backtracking — one representative per reads-from
equivalence class of executions, rather than one per
sleep-set-surviving trace.

**Processes, not threads.**  Under the windowed weak-memory semantics
a thread's commits on *different* addresses are themselves reorderable
scheduling choices (that is the store-window's whole point), so the
clock components cannot be threads: program order is only enforced
per location.  Events are therefore grouped into totally-ordered
*processes* — ``(tid, addr)`` for commits (per-location SC) and
``("v", tid)`` for a thread's visible steps (its own program order) —
and ``e`` happens-before ``f`` iff ``f.clock[e.proc] >= e.selfidx``.
Every cross-thread dependence is a *potentially reversible* conflict:
it joins clocks **and** feeds the race detector.  Over-detecting a
race costs a failed reversal (the Flanagan–Godefroid fallback);
silently ordering a reversible pair would lose whole equivalence
classes, so the asymmetry is deliberate.

**Footprinted visible steps.**  A visible action is an immediate
memory operation (SC and TSO run loads, drained stores and drained
RMWs straight against memory) followed by an invisible suffix, so
treating visible steps as conflicting with *everything* — the obvious
safe choice — makes every cross-thread pair of memory operations a
race under SC/TSO and degenerates DPOR into full enumeration.
Instead the pending instruction is peeked
(:meth:`~repro.mc.machine.Machine.visible_footprint`) and the step
conflicts only where its footprint does: with committed writes /
reads / rmw-execs on its address and with *immediate* accesses on its
address (the ``("iw", addr)`` / ``("ir", addr)`` tables, the
immediate-domain mirror of ``("w", addr)`` / ``("r", addr)``).
Same-thread visible-vs-commit pairs are ordered, not raced: an
immediate op under TSO sees its own buffered stores via store
forwarding and drain-requiring ops need the window empty, so either
order of the pair yields the same state (or only one order is
schedulable at all).  Two effects escape the footprint — spawning
(``next_tid``) and heap allocation (``heap_top``), both global
counters mutated inside invisible bursts — so any event that moved
them, and any visible step whose instruction could not be classified,
is *escalated* onto a global ``("g",)`` conflict chain that every
event consults.  Escalation and footprinting only ever err toward
extra conflicts, the sound direction.

Structure of the implementation:

- **Clock tables on the state.**  ``State.clocks`` maps small tuple
  keys to *indices into the current path's event list*: ``("ta", tid,
  addr)`` (last commit of a thread on an address — the forced
  per-process chain), ``("w", addr)`` / ``("r", addr)`` / ``("x",
  addr)`` (last committed write, read-commits-since, last rmw-exec),
  ``("iw", addr)`` / ``("ir", addr)`` (their immediate-operation
  mirror: last visible write step, visible read steps since), ``("vt",
  tid)`` / ``("tc", tid)`` (a thread's last visible step / last
  commit — the same-thread order chains), ``("wc", tid)`` (per
  window-slot, the event whose burst pushed that entry — a commit is
  forced after its entry's creation), ``("g",)`` (the escalation
  chain: spawners, allocators, unclassifiable steps), ``("np", tid)``
  (last non-pristine commit) and ``("b", tid)`` (the spawning event).
  On the in-place engine every table write is journaled through the
  ``OP_CLK`` opcode (:mod:`repro.mc.undo`) so
  :func:`~repro.mc.undo.revert` restores the table bit-identically;
  on the clone engine the table is copied by ``State.clone``.
- **Race detection.**  When an event executes, its conflict
  predecessors are read straight from the clock tables; processing
  them newest-first while accumulating their clocks over the event's
  *forced* past identifies exactly the events whose happens-before
  edge is immediate — the reversible races.
- **Backtracking with source sets.**  For a race ``(e, e')`` the
  *initials* of the segment between them (events not happens-after
  ``e``, plus ``e'`` itself) are computed; if none is already
  scheduled or explored at ``pre(e)``, one enabled initial is added
  to that node's todo list — preferring ``e'``'s own thread — and
  woken from the node's sleep set if asleep (the wakeup handling that
  stops a scheduled reversal from being re-pruned).  When no initial
  is enabled at ``pre(e)``, the classic Flanagan–Godefroid fallback
  adds every enabled action there.
- **Statelessness and cycles.**  DPOR's backtrack targets live on the
  current DFS path, so cross-branch state dedup is unsound here (a
  dedup cut would hide the races of the cut continuation).  The tree
  is explored statelessly; spin programs stay finite through the
  step bound plus two path-local prunes: *self-loops* (a transition
  whose canonical digest equals its source — the same stutter prune
  the sleep engine applies) are dropped, and longer *path cycles*
  (digest equal to an ancestor on the current path) are cut while
  conservatively re-expanding every node on the cycle, so no ordering
  the cut continuation could have revealed is lost.

Both engines (``inplace``/``clone``) drive the identical traversal;
the property suite (``tests/property/test_dpor_identity.py``) pins
verdict identity against the sleep-set backend across the litmus
gallery and random memory-order assignments.
"""

from repro.mc.encode import state_digest
from repro.mc.explorer import _action_key, _digest, _independent
from repro.mc.machine import FINISHED, LIMIT
from repro.mc.undo import revert


class _Event:
    """One executed action on the current DFS path."""

    __slots__ = ("idx", "tid", "proc", "selfidx", "akey", "clock", "node")

    def __init__(self, idx, tid, proc, selfidx, akey, clock, node):
        self.idx = idx          # position in the path event list
        self.tid = tid
        self.proc = proc        # totally-ordered chain this event is on
        self.selfidx = selfidx  # 1-based index within the process
        self.akey = akey        # explorer._action_key identity
        self.clock = clock      # {proc: selfidx}, includes itself
        self.node = node        # index of pre(e) in the node stack


def _hb(e, clock):
    """Is event ``e`` in the causal past described by ``clock``?"""
    return clock.get(e.proc, 0) >= e.selfidx


class _Node:
    """One scheduling point on the DFS path (the state before a choice).

    ``enabled`` keeps every enabled action (asleep ones included) so a
    later backtrack insertion can look its action object up by key;
    ``todo`` is the backtrack set (a LIFO of ``(action, akey)``),
    ``done`` the explored keys, ``sleep`` the keys proven covered.
    """

    __slots__ = ("mark", "state", "event_depth", "digest", "enabled",
                 "actions", "done", "todo", "sleep", "in_akey", "counted",
                 "expanded")

    def __init__(self, mark, state, event_depth, digest, enabled, sleep,
                 in_akey):
        self.mark = mark                # journal mark (in-place engine)
        self.state = state              # state snapshot (clone engine)
        self.event_depth = event_depth  # len(events) at this node
        self.digest = digest
        self.enabled = enabled          # [(action, akey)] — all enabled
        self.actions = {akey: action for action, akey in enabled}
        self.done = set()
        self.todo = []
        self.sleep = sleep
        self.in_akey = in_akey          # akey that produced this node
        self.counted = False            # counted as a decision yet?
        self.expanded = False           # full expansion already done?


def _edges(state, events, akey, fp, creation):
    """Dependence edges into the next ``akey`` event, split into
    ``(forced, candidates)`` event-index sets.

    *Forced* edges are orderings the scheduler cannot reverse (or
    whose reversal provably commutes): the per-``(tid, addr)`` commit
    chain, the spawn edge, the same-thread visible/commit order
    chains, and a commit's window-entry creation event.  *Candidates*
    are the cross-thread conflicts; each is a potential race.  The
    union is the full happens-before join set for the new event's
    clock.  ``fp`` is the visible footprint (``None`` for commits and
    for unclassifiable steps), ``creation`` the committed entry's
    creation event.
    """
    clocks = state.clocks
    tid = akey[1]
    forced = set()
    candidates = set()
    b = clocks.get(("b", tid))  # None for root-born threads
    if b is not None:
        forced.add(b)
    g = clocks.get(("g",))
    if g is not None:
        # Every event consults the escalation chain; only escalated
        # events extend it, so this is one edge, not a total order.
        candidates.add(g)
    if akey[0] == "v":
        vt = clocks.get(("vt", tid))
        if vt is not None:
            forced.add(vt)  # own program order
        tc = clocks.get(("tc", tid))
        if tc is not None:
            # Own commits either cannot be enabled alongside this step
            # (drain-requiring ops need an empty window) or commute
            # with it (TSO store forwarding): ordered, never raced.
            forced.add(tc)
        if fp is None:
            # Unclassifiable step: conflicts with every commit and
            # every immediate access of every other thread.
            for key, idx in clocks.items():
                k0 = key[0]
                if k0 == "ta" and key[1] != tid:
                    candidates.add(idx)
                elif k0 == "iw" and events[idx].tid != tid:
                    candidates.add(idx)
                elif k0 == "ir":
                    candidates.update(
                        r for r in idx if events[r].tid != tid)
            return forced, candidates
        fkind, addr = fp
        w = clocks.get(("w", addr))
        if w is not None and events[w].tid != tid:
            candidates.add(w)
        iw = clocks.get(("iw", addr))
        if iw is not None and events[iw].tid != tid:
            candidates.add(iw)
        if fkind != "load":
            x = clocks.get(("x", addr))
            if x is not None and events[x].tid != tid:
                candidates.add(x)
            candidates.update(
                r for r in clocks.get(("r", addr), ())
                if events[r].tid != tid)
            candidates.update(
                r for r in clocks.get(("ir", addr), ())
                if events[r].tid != tid)
        return forced, candidates
    addr = akey[3]
    kind = akey[2]
    ta = clocks.get(("ta", tid, addr))
    if ta is not None:
        forced.add(ta)
    vt = clocks.get(("vt", tid))
    if vt is not None:
        # Any own visible step either preceded this entry's creation
        # (drain-requiring ops empty the window first) or commutes
        # with its commit (store forwarding): ordered, never raced.
        forced.add(vt)
    if creation is not None:
        forced.add(creation)  # the entry cannot commit before it exists
    w = clocks.get(("w", addr))
    if w is not None and events[w].tid != tid:
        candidates.add(w)
    iw = clocks.get(("iw", addr))
    if iw is not None and events[iw].tid != tid:
        candidates.add(iw)
    if kind != "load":
        x = clocks.get(("x", addr))
        if x is not None and events[x].tid != tid:
            candidates.add(x)
        if kind != "rmw":
            # Write halves conflict with reads; the "rmw" exec half
            # only reads (its write lands at the rmw_store commit), so
            # read-vs-read pairs stay independent.
            candidates.update(
                r for r in clocks.get(("r", addr), ())
                if events[r].tid != tid
            )
            candidates.update(
                r for r in clocks.get(("ir", addr), ())
                if events[r].tid != tid
            )
    np = clocks.get(("np", tid))
    if np is not None:
        candidates.add(np)
    if not akey[5]:  # non-pristine: entangled with all own commits
        for key, idx in clocks.items():
            if key[0] == "ta" and key[1] == tid:
                candidates.add(idx)
    return forced, candidates


def _races(state, events, akey, fp, creation):
    """Reversible races the next ``akey`` event closes, newest first.

    A conflict predecessor ``e`` is a race iff the happens-before edge
    ``e -> e'`` is immediate: not already implied by ``e'``'s forced
    past or by a *newer* conflict predecessor.  Walking candidates
    newest-first while joining their clocks into an accumulator checks
    exactly that.
    """
    forced, candidates = _edges(state, events, akey, fp, creation)
    if not candidates:
        return ()
    acc = {}
    for i in forced:
        for proc, val in events[i].clock.items():
            if acc.get(proc, 0) < val:
                acc[proc] = val
    races = []
    for idx in sorted(candidates, reverse=True):
        e = events[idx]
        if _hb(e, acc):
            continue  # already ordered: not reversible
        races.append(e)
        for proc, val in e.clock.items():
            if acc.get(proc, 0) < val:
                acc[proc] = val
    return races


def _push_event(machine, state, events, akey, node_index, root_tids,
                fp, escalated, creation, removed):
    """Record the just-applied action as an event and update the clock
    tables (journaled on the in-place engine).

    ``removed`` is the committed entry's pre-apply window index when
    the commit deleted it (``None`` for visible steps and for the
    in-place "rmw" exec morph), used to keep the per-slot creation
    table aligned with the window.
    """
    journal = machine.journal
    clocks = state.clocks
    tid = akey[1]
    if akey[0] == "v":
        proc = ("v", tid)
        prev = clocks.get(("vt", tid))
    else:
        proc = (tid, akey[3])
        prev = clocks.get(("ta", tid, akey[3]))
    selfidx = events[prev].selfidx + 1 if prev is not None else 1
    forced, candidates = _edges(state, events, akey, fp, creation)
    clock = {}
    for i in forced | candidates:
        for p, val in events[i].clock.items():
            if clock.get(p, 0) < val:
                clock[p] = val
    clock[proc] = selfidx
    idx = len(events)
    event = _Event(idx, tid, proc, selfidx, akey, clock, node_index)
    events.append(event)

    cs = state.clock_set
    if akey[0] == "v":
        cs(("vt", tid), idx, journal)
        if fp is not None:
            fkind, addr = fp
            if fkind == "load":
                cs(("ir", addr),
                   clocks.get(("ir", addr), ()) + (idx,), journal)
            else:
                cs(("iw", addr), idx, journal)
                if clocks.get(("ir", addr)):
                    cs(("ir", addr), (), journal)
    else:
        addr = akey[3]
        kind = akey[2]
        cs(("ta", tid, addr), idx, journal)
        cs(("tc", tid), idx, journal)
        if kind == "load":
            cs(("r", addr), clocks.get(("r", addr), ()) + (idx,), journal)
        elif kind == "rmw":
            cs(("x", addr), idx, journal)
        else:
            # Write-like: it joined the reads/rmw-execs above, so the
            # write chain covers them transitively — reset the read
            # list to keep it small (stale "x" entries are filtered by
            # the race accumulator instead).
            cs(("w", addr), idx, journal)
            if clocks.get(("r", addr)):
                cs(("r", addr), (), journal)
        if not akey[5]:
            cs(("np", tid), idx, journal)
    if escalated or (akey[0] == "v" and fp is None):
        cs(("g",), idx, journal)
    # Window-slot creation table: drop the committed slot, then
    # attribute every entry this event's bursts pushed (quiescence can
    # push into *any* thread's window — a commit freeing a full window
    # slot, a finish satisfying a join) to this event.
    for t2, thread2 in state.threads.items():
        wc = clocks.get(("wc", t2), ())
        changed = False
        if removed is not None and t2 == tid and removed < len(wc):
            wc = wc[:removed] + wc[removed + 1:]
            changed = True
        n = len(thread2.window)
        if len(wc) < n:
            wc = wc + (idx,) * (n - len(wc))
            changed = True
        if changed:
            cs(("wc", t2), wc, journal)
    # Threads spawned by this action's invisible burst: their events
    # are causally after this one (spawn edge), which keeps parent
    # setup / child use pairs out of the race detector.
    for t2 in state.threads:
        if t2 not in root_tids and ("b", t2) not in clocks:
            cs(("b", t2), idx, journal)
    return event


def _expand_all(node, stats, wake=True):
    """Flanagan–Godefroid fallback: schedule every enabled action.

    ``wake=True`` (race-reversal fallback) also pulls actions out of the
    node's sleep set: a reversal targets a *different* equivalence class,
    so the sleep coverage argument (which is per-class) does not apply.
    ``wake=False`` (cycle proviso) leaves sleepers asleep: the sleep-set
    invariant — every trace from this state starting with a slept action
    is Mazurkiewicz-equivalent to one already explored or scheduled — is
    a property of the state's continuations and covers the cycle case,
    so only genuinely unscheduled actions can be "ignored".
    """
    if node.expanded and wake is False:
        return
    scheduled = node.done | {k for _, k in node.todo}
    for action, akey in node.enabled:
        if akey in scheduled:
            continue
        if akey in node.sleep:
            if not wake:
                continue
            node.sleep.discard(akey)
            stats.wakeup_reexplorations += 1
        node.todo.append((action, akey))
        stats.backtrack_points += 1
    if not wake:
        node.expanded = True


def _insert_backtrack(nodes, events, race, event, stats):
    """Schedule a reversal of ``race -> event`` at ``pre(race)``.

    Computes the initials of the segment between the two race events;
    if any is already explored or scheduled at the target node the
    reversal is covered, otherwise one enabled initial is added
    (waking it if asleep).  No enabled initial at all triggers the
    full-expansion fallback.
    """
    target = nodes[race.node]
    seg = []
    initials = []
    for f in events[race.idx + 1:event.idx]:
        if _hb(race, f.clock):
            continue  # happens-after the race head: not in the segment
        if not any(_hb(g, f.clock) for g in seg):
            initials.append(f.akey)
        seg.append(f)
    if not any(_hb(g, event.clock) for g in seg):
        initials.append(event.akey)

    scheduled = target.done | {k for _, k in target.todo}
    for akey in initials:
        if akey in scheduled:
            return  # this reversal is (or will be) explored
    ordered = ([k for k in initials if k[1] == event.tid]
               + [k for k in initials if k[1] != event.tid])
    for akey in ordered:
        action = target.actions.get(akey)
        if action is None:
            continue  # initial not enabled at the target
        target.todo.append((action, akey))
        stats.backtrack_points += 1
        if akey in target.sleep:
            target.sleep.discard(akey)
            stats.wakeup_reexplorations += 1
        return
    _expand_all(target, stats)


def explore_dpor(machine, result, stats, macro_on, max_states,
                 engine="inplace"):
    """Source-DPOR traversal; drop-in peer of the ``_explore_*`` engines.

    ``macro_on`` only affects decision-point *counting* (single-choice
    nodes count as macro steps instead of decisions), mirroring the
    sleep engine's metric; the traversal itself is identical either
    way, since DPOR needs a node per event as a backtrack target.
    """
    inplace = engine != "clone"
    interner = machine.ctx.interner
    try:
        state = machine.initial_state()
    except Exception as error:  # setup errors are violations too
        result.violation = f"initialization failed: {error}"
        return
    journal = machine.journal = [] if inplace else None
    root_tids = frozenset(state.threads)
    # Entries already sitting in windows after the initial quiescence
    # predate every event: seed their creation slots with None so the
    # per-slot reconciliation in _push_event never attributes them to
    # the first event that happens to commit.  (Pre-root, so never
    # journaled and never reverted past.)
    for tid, thread in state.threads.items():
        if thread.window:
            state.clocks[("wc", tid)] = (None,) * len(thread.window)
    if state.violation is not None:
        result.violation = state.violation
        result.trace = state.trace_list()
        return

    events = []        # _Event per applied action on the current path
    nodes = []         # _Node stack (the current path's choice points)
    path_digests = {}  # digest -> node index, for path-cycle detection

    def digest_of():
        if inplace:
            return state_digest(state, interner)
        return _digest(state.canonical())

    def open_node(in_akey, digest):
        """Turn the current state into a node, or handle a terminal.

        Returns the node (not yet pushed), or None when the state is
        terminal — finished, deadlocked, step-limited, or fully
        sleep-blocked — with the verdict bookkeeping done.
        """
        if any(t.status == LIMIT for t in state.threads.values()):
            result.truncated = True
            result.states_explored += 1
            stats.equivalence_classes += 1
            return None
        enabled = machine.enabled_actions(state)
        if not enabled:
            result.states_explored += 1
            stats.equivalence_classes += 1
            if not all(t.status == FINISHED
                       for t in state.threads.values()):
                blocked = [
                    f"T{tid}:{t.status}"
                    for tid, t in state.threads.items()
                    if t.status != FINISHED
                ]
                if not result.deadlock:
                    result.deadlock = True
                    result.deadlock_trace = state.trace_list() + [
                        f"deadlock: no enabled actions "
                        f"({', '.join(blocked)})"
                    ]
                result.notes.append(
                    f"deadlocked state ({', '.join(blocked)})"
                )
            return None
        pairs = [(action, _action_key(state, action)) for action in enabled]
        if nodes and in_akey is not None:
            sleep = {k for k in nodes[-1].sleep if _independent(k, in_akey)}
        else:
            sleep = set()
        schedulable = [p for p in pairs if p[1] not in sleep]
        if not schedulable:
            # Every enabled action is covered by a sibling subtree: a
            # redundant prefix, not a new equivalence class.
            stats.sleep_prunes += len(pairs)
            return None
        stats.sleep_prunes += len(pairs) - len(schedulable)
        node = _Node(
            mark=len(journal) if inplace else 0,
            state=None if inplace else state,
            event_depth=len(events),
            digest=digest,
            enabled=pairs,
            sleep=sleep,
            in_akey=in_akey,
        )
        if not macro_on or len(schedulable) > 1:
            node.counted = True
            result.states_explored += 1
        else:
            stats.macro_steps += 1
        # Initial exploration: keep running the incoming thread when
        # possible (deeper macro runs, fewer context switches); races
        # discovered below schedule the reversals.
        pick = None
        if in_akey is not None:
            tid = in_akey[1]
            for p in schedulable:
                if p[1][1] == tid:
                    pick = p
                    break
        if pick is None:
            pick = schedulable[0]
        node.todo.append(pick)
        return node

    root = open_node(None, digest_of())
    if root is not None:
        nodes.append(root)
        path_digests[root.digest] = 0

    while nodes:
        if len(nodes) > stats.peak_frontier:
            stats.peak_frontier = len(nodes)
        node = nodes[-1]
        entry = None
        while node.todo:
            candidate = node.todo.pop()
            if candidate[1] not in node.done:
                entry = candidate
                break
        if entry is None:
            # Subtree exhausted: the incoming action is now provably
            # covered at the parent — put it to sleep there.
            nodes.pop()
            del path_digests[node.digest]
            del events[node.event_depth:]
            if nodes:
                nodes[-1].sleep.add(node.in_akey)
            continue
        action, akey = entry
        node.done.add(akey)
        if not node.counted and len(node.done) > 1:
            # A backtrack insertion turned a macro run into a genuine
            # decision point after the fact.
            node.counted = True
            result.states_explored += 1

        # Restore the node's state (bit-identically on the in-place
        # engine, via a fresh clone on the clone engine).
        if inplace:
            if len(journal) > node.mark:
                revert(state, journal, node.mark)
        else:
            state = node.state.clone()
        del events[node.event_depth:]

        # Footprint and creation edge are read off the *pre*-apply
        # state; escalation (spawn/malloc inside the bursts) is only
        # observable after.  The clock tables are untouched by
        # apply_action, so race detection safely runs post-apply.
        creation = removed = None
        fp = None
        if akey[0] == "v":
            fp = machine.visible_footprint(state, akey[1])
        else:
            cindex = action[2]
            wc = state.clocks.get(("wc", akey[1]), ())
            if cindex < len(wc):
                creation = wc[cindex]
        pre_tid, pre_heap = state.next_tid, state.heap_top
        machine.apply_action(state, action)
        stats.transitions += 1
        if state.violation is not None:
            result.violation = state.violation
            result.trace = state.trace_list()
            return
        escalated = (state.next_tid != pre_tid
                     or state.heap_top != pre_heap)
        if akey[0] != "v":
            if akey[2] == "rmw":
                # A successful exec morphs its entry into "rmw_store"
                # in place; a failed compare-exchange deletes it.  The
                # morph is detectable post-apply: per-address FIFO
                # means no *other* rmw_store on this address can have
                # shifted into the slot.
                window = state.threads[akey[1]].window
                if not (cindex < len(window)
                        and window[cindex].kind == "rmw_store"
                        and window[cindex].addr == akey[3]):
                    removed = cindex
            else:
                removed = cindex
        races = _races(state, events, akey, fp, creation)
        stats.races_detected += len(races)
        event = _push_event(machine, state, events, akey,
                            len(nodes) - 1, root_tids, fp, escalated,
                            creation, removed)
        for race in races:
            _insert_backtrack(nodes, events, race, event, stats)

        stats.states_visited += 1
        if stats.states_visited >= max_states:
            result.truncated = True
            result.notes.append("state budget exhausted")
            return

        digest = digest_of()
        if digest == node.digest:
            # Stutter (failing CAS, re-read of an unchanged flag): the
            # state is unchanged, so every continuation through this
            # event is explored from the node itself.  A self-loop is a
            # cycle of length one, so the cycle proviso applies here
            # too: without the expansion a node whose only scheduled
            # action stutters would exhaust with the other threads
            # ignored forever (a spin loop would mask the writer that
            # ends it).
            stats.loop_prunes += 1
            stats.cycle_expansions += 1
            _expand_all(node, stats, wake=False)
            events.pop()
            node.sleep.add(akey)
            continue
        if digest in path_digests:
            # Path cycle: cut the closing transition and fully expand
            # the current node — the cycle proviso (Valmari/Peled): a
            # cut cycle is safe for reachability when at least one of
            # its states explores every enabled action, so no action
            # is ignored forever around the loop.
            stats.cycle_expansions += 1
            _expand_all(node, stats, wake=False)
            events.pop()
            node.sleep.add(akey)
            continue

        child = open_node(akey, digest)
        if child is None:
            node.sleep.add(akey)
            continue
        nodes.append(child)
        path_digests[digest] = len(nodes) - 1
