"""Architectural IR interpreter with cycle accounting.

Runs a module to completion under a deterministic round-robin scheduler
(no memory reordering — this VM measures *performance*, the model
checker in :mod:`repro.mc` measures *correctness*).  Every instruction
is charged abstract cycles from a :class:`CostModel`; a small MESI-like
line tracker adds cross-thread contention penalties.
"""

from repro.errors import AssertionFailure, VMError
from repro.ir import instructions as ins
from repro.ir.values import Argument, Constant, GlobalVar
from repro.vm.costs import CostModel
from repro.vm.stats import RunStats

GLOBAL_BASE = 1_000
HEAP_BASE = 10_000_000
STACK_BASE = 100_000_000
STACK_SIZE = 1_000_000


class RunResult:
    """Outcome of one VM run."""

    def __init__(self, exit_value, stats, output):
        self.exit_value = exit_value
        self.stats = stats
        self.output = output

    @property
    def cycles(self):
        return self.stats.cycles

    def __repr__(self):
        return f"RunResult(exit={self.exit_value}, {self.stats.summary()})"


class _Frame:
    __slots__ = ("function", "block", "index", "env", "alloca_addrs",
                 "stack_base", "call_instr")

    def __init__(self, function, call_instr=None):
        self.function = function
        self.block = function.entry
        self.index = 0
        self.env = {}
        self.alloca_addrs = {}
        self.stack_base = None
        self.call_instr = call_instr


class _Thread:
    __slots__ = ("tid", "frames", "finished", "waiting_on", "cycles",
                 "stack_top")

    def __init__(self, tid, frame):
        self.tid = tid
        self.frames = [frame]
        self.finished = False
        self.waiting_on = None
        self.cycles = 0
        self.stack_top = STACK_BASE + tid * STACK_SIZE
        frame.stack_base = self.stack_top


class Interpreter:
    """Executes one module; see :func:`run_module` for the simple API."""

    def __init__(self, module, cost_model=None, quantum=64,
                 max_instructions=200_000_000, schedule_seed=0,
                 record_counts=False):
        self.module = module
        self.costs = cost_model or CostModel()
        self.quantum = max(1, quantum + (schedule_seed % 7))
        self.max_instructions = max_instructions
        self.record_counts = record_counts
        self._counts = {}
        self.stats = RunStats()
        self.memory = {}
        self.global_addr = {}
        self.heap_top = HEAP_BASE
        self.output = []
        self.threads = {}
        self.next_tid = 0
        # MESI-lite: addr -> (owner_tid_or_None, frozenset_of_sharers)
        self.line_owner = {}
        self.line_sharers = {}
        self._layout_globals()
        # Provably thread-private accesses execute at register-like cost
        # (the paper's baselines are -O2 binaries where locals live in
        # registers) and never pay coherence penalties.
        from repro.analysis.nonlocal_ import NonLocalInfo

        self.private = set()
        for function in module.functions.values():
            info = NonLocalInfo(function)
            for instr in function.instructions():
                if instr.is_memory_access():
                    if not info.is_nonlocal_pointer(instr.accessed_pointer()):
                        self.private.add(id(instr))

    def _layout_globals(self):
        addr = GLOBAL_BASE
        for gvar in self.module.globals.values():
            self.global_addr[gvar.name] = addr
            for offset, value in enumerate(gvar.initializer):
                self.memory[addr + offset] = value
            addr += max(gvar.value_type.size, 1)

    # -- public ------------------------------------------------------------

    def run(self, entry="main"):
        entry_fn = self.module.functions.get(entry)
        if entry_fn is None:
            raise VMError(f"no entry function @{entry}")
        main = _Thread(0, _Frame(entry_fn))
        self.threads[0] = main
        self.next_tid = 1

        exit_value = 0
        runnable = [0]
        while runnable:
            progressed = False
            for tid in list(runnable):
                thread = self.threads[tid]
                if thread.finished:
                    continue
                ran = self._run_slice(thread)
                if ran:
                    progressed = True
                if thread.finished and tid == 0:
                    exit_value = thread.waiting_on  # reused as exit slot
            runnable = [
                tid for tid, thread in self.threads.items()
                if not thread.finished
            ]
            if runnable and not progressed:
                blocked = {
                    tid: thread.waiting_on
                    for tid, thread in self.threads.items()
                    if not thread.finished
                }
                raise VMError(f"deadlock: all threads blocked on {blocked}")
        self.stats.per_thread_cycles = {
            tid: thread.cycles for tid, thread in self.threads.items()
        }
        self.stats.cycles = sum(self.stats.per_thread_cycles.values())
        if self.record_counts:
            positions = {}
            for name, function in self.module.functions.items():
                for block in function.blocks:
                    for index, instr in enumerate(block.instructions):
                        positions[id(instr)] = (name, block.label, index)
            self.stats.instr_counts = {
                positions[key]: count
                for key, count in self._counts.items()
                if key in positions
            }
        return RunResult(exit_value, self.stats, self.output)

    # -- scheduling ---------------------------------------------------------

    def _run_slice(self, thread):
        """Run up to one quantum; returns True if any instruction ran."""
        executed = 0
        while executed < self.quantum and not thread.finished:
            if thread.waiting_on is not None and not thread.finished:
                target = self.threads.get(thread.waiting_on)
                if target is None or target.finished:
                    thread.waiting_on = None
                else:
                    break  # still joining
            self._step(thread)
            executed += 1
            if self.stats.instructions > self.max_instructions:
                raise VMError(
                    f"instruction budget exceeded "
                    f"({self.max_instructions})"
                )
        return executed > 0

    # -- execution -----------------------------------------------------------

    def _step(self, thread):
        frame = thread.frames[-1]
        instr = frame.block.instructions[frame.index]
        self.stats.instructions += 1
        if self.record_counts:
            key = id(instr)
            self._counts[key] = self._counts.get(key, 0) + 1
        cost = self.costs.instruction_cost(instr)

        kind = type(instr)
        if kind is ins.BinOp:
            frame.env[id(instr)] = _compute(
                instr.op,
                self._value(frame, instr.left),
                self._value(frame, instr.right),
            )
            frame.index += 1
        elif kind is ins.Load:
            addr = self._value(frame, instr.pointer)
            if id(instr) in self.private:
                cost = self.costs.private_access
            else:
                cost += self._touch_read(
                    thread.tid, addr, instr.order.is_atomic
                )
            frame.env[id(instr)] = self.memory.get(addr, 0)
            if instr.order.is_atomic:
                self.stats.atomic_loads += 1
            else:
                self.stats.plain_loads += 1
            frame.index += 1
        elif kind is ins.Store:
            addr = self._value(frame, instr.pointer)
            if id(instr) in self.private:
                cost = self.costs.private_access
            else:
                cost += self._touch_write(
                    thread.tid, addr, instr.order.is_atomic
                )
            self.memory[addr] = self._value(frame, instr.value)
            if instr.order.is_atomic:
                self.stats.atomic_stores += 1
            else:
                self.stats.plain_stores += 1
            frame.index += 1
        elif kind is ins.Gep:
            frame.env[id(instr)] = self._gep_addr(frame, instr)
            frame.index += 1
        elif kind is ins.Br:
            frame.block = instr.target
            frame.index = 0
        elif kind is ins.CondBr:
            taken = self._value(frame, instr.cond)
            frame.block = instr.true_block if taken else instr.false_block
            frame.index = 0
        elif kind is ins.Alloca:
            addr = frame.alloca_addrs.get(id(instr))
            if addr is None:
                addr = thread.stack_top
                size = max(instr.allocated_type.size, 1)
                thread.stack_top += size
                frame.alloca_addrs[id(instr)] = addr
                for offset in range(size):
                    self.memory[addr + offset] = 0
            frame.env[id(instr)] = addr
            frame.index += 1
        elif kind is ins.Cast:
            frame.env[id(instr)] = self._value(frame, instr.value)
            frame.index += 1
        elif kind is ins.Ret:
            value = self._value(frame, instr.value) if instr.has_value else 0
            for addr in range(frame.stack_base, thread.stack_top):
                self.memory.pop(addr, None)
            thread.stack_top = frame.stack_base
            thread.frames.pop()
            if not thread.frames:
                thread.finished = True
                thread.waiting_on = value  # exit-value slot for main
            else:
                caller = thread.frames[-1]
                if frame.call_instr is not None:
                    caller.env[id(frame.call_instr)] = value
                caller.index += 1
        elif kind is ins.Call:
            self.stats.calls += 1
            callee_frame = _Frame(instr.callee, call_instr=instr)
            callee_frame.stack_base = thread.stack_top
            for argument, operand in zip(instr.callee.arguments, instr.args):
                callee_frame.env[id(argument)] = self._value(frame, operand)
            if len(thread.frames) > 256:
                raise VMError(f"stack overflow in @{frame.function.name}")
            thread.frames.append(callee_frame)
        elif kind is ins.Cmpxchg:
            addr = self._value(frame, instr.pointer)
            cost += self._touch_write(thread.tid, addr, True)
            old = self.memory.get(addr, 0)
            if old == self._value(frame, instr.expected):
                self.memory[addr] = self._value(frame, instr.desired)
            frame.env[id(instr)] = old
            self.stats.rmw_ops += 1
            frame.index += 1
        elif kind is ins.AtomicRMW:
            addr = self._value(frame, instr.pointer)
            cost += self._touch_write(thread.tid, addr, True)
            old = self.memory.get(addr, 0)
            self.memory[addr] = _rmw(instr.op, old,
                                     self._value(frame, instr.value))
            frame.env[id(instr)] = old
            self.stats.rmw_ops += 1
            frame.index += 1
        elif kind is ins.Fence:
            self.stats.fences += 1
            frame.index += 1
        elif kind is ins.AssertInst:
            if not self._value(frame, instr.cond):
                raise AssertionFailure(
                    f"@{frame.function.name}: {instr.message or instr!r}",
                    thread_id=thread.tid,
                )
            frame.index += 1
        elif kind is ins.PrintInst:
            self.output.append(self._value(frame, instr.value))
            frame.index += 1
        elif kind is ins.Malloc:
            size = max(int(self._value(frame, instr.size)), 1)
            addr = self.heap_top
            self.heap_top += size
            self.stats.allocations += 1
            frame.env[id(instr)] = addr
            frame.index += 1
        elif kind is ins.Free:
            self._value(frame, instr.pointer)
            frame.index += 1
        elif kind is ins.Sleep:
            self._value(frame, instr.duration)
            frame.index += 1
        elif kind is ins.CompilerBarrier:
            frame.index += 1
        elif kind is ins.ThreadCreate:
            tid = self.next_tid
            self.next_tid += 1
            self.stats.threads_spawned += 1
            new_frame = _Frame(instr.callee)
            new_thread = _Thread(tid, new_frame)
            new_frame.stack_base = new_thread.stack_top
            if instr.callee.arguments:
                arg = (
                    self._value(frame, instr.arg)
                    if instr.arg is not None
                    else 0
                )
                new_frame.env[id(instr.callee.arguments[0])] = arg
            self.threads[tid] = new_thread
            frame.env[id(instr)] = tid
            frame.index += 1
        elif kind is ins.ThreadJoin:
            target = self._value(frame, instr.tid)
            target_thread = self.threads.get(target)
            if target_thread is None:
                raise VMError(f"join of unknown thread {target}")
            if not target_thread.finished:
                thread.waiting_on = target
                # Do not advance: re-execute the join after waking.
                thread.cycles += cost
                self.stats.instructions -= 1
                return
            frame.index += 1
        else:
            raise VMError(f"VM cannot execute {instr!r}")

        thread.cycles += cost

    # -- helpers ---------------------------------------------------------------

    def _value(self, frame, operand):
        if type(operand) is Constant:
            return operand.value
        if isinstance(operand, GlobalVar):
            return self.global_addr[operand.name]
        return frame.env[id(operand)]

    def _gep_addr(self, frame, instr):
        cached = getattr(instr, "_vm_path", None)
        if cached is None:
            const_offset = 0
            dynamic = []
            for step in instr.path:
                if step[0] == "field":
                    struct_type, field_index = step[1], step[2]
                    const_offset += sum(
                        ftype.size
                        for _, ftype in struct_type.fields[:field_index]
                    )
                else:
                    dynamic.append((step[1].size, step[2]))
            cached = (const_offset, dynamic)
            instr._vm_path = cached
        addr = self._value(frame, instr.base) + cached[0]
        for size, operand in cached[1]:
            addr += size * self._value(frame, operand)
        return addr

    def _touch_read(self, tid, addr, atomic=False):
        addr = addr >> 4  # cache-line granularity (costs.line_slots)
        owner = self.line_owner.get(addr)
        if owner is None or owner == tid:
            return 0
        sharers = self.line_sharers.get(addr)
        if sharers and tid in sharers:
            return 0
        self.stats.contended_accesses += 1
        if sharers:
            self.line_sharers[addr] = sharers | {tid}
        else:
            self.line_sharers[addr] = frozenset((owner, tid))
        return self.costs.contention_atomic if atomic else self.costs.contention

    def _touch_write(self, tid, addr, atomic=False):
        addr = addr >> 4  # cache-line granularity (costs.line_slots)
        owner = self.line_owner.get(addr)
        sharers = self.line_sharers.get(addr)
        contended = (owner is not None and owner != tid) or (
            sharers is not None and sharers - {tid}
        )
        self.line_owner[addr] = tid
        if sharers is not None:
            self.line_sharers.pop(addr, None)
        if contended:
            self.stats.contended_accesses += 1
            return (
                self.costs.contention_atomic
                if atomic
                else self.costs.contention
            )
        return 0


def run_module(module, entry="main", schedule_seed=0, cost_model=None,
               quantum=64, max_instructions=200_000_000,
               record_counts=False):
    """Execute ``module`` and return a :class:`RunResult`.

    ``record_counts=True`` additionally records per-instruction dynamic
    execution counts into ``result.stats.instr_counts`` (keyed by
    position), the weighting input of
    :func:`repro.vm.costs.estimate_cost`.
    """
    interp = Interpreter(
        module,
        cost_model=cost_model,
        quantum=quantum,
        max_instructions=max_instructions,
        schedule_seed=schedule_seed,
        record_counts=record_counts,
    )
    return interp.run(entry=entry)


def _rmw(op, old, operand):
    if op == "add":
        return old + operand
    if op == "sub":
        return old - operand
    if op == "or":
        return old | operand
    if op == "and":
        return old & operand
    if op == "xor":
        return old ^ operand
    if op == "xchg":
        return operand
    raise VMError(f"unknown rmw op {op!r}")


def _compute(op, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "/":
        if right == 0:
            raise VMError("division by zero")
        quotient = abs(left) // abs(right)
        return -quotient if (left < 0) != (right < 0) else quotient
    if op == "%":
        if right == 0:
            raise VMError("modulo by zero")
        quotient = abs(left) // abs(right)
        quotient = -quotient if (left < 0) != (right < 0) else quotient
        return left - right * quotient
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << (right & 63)
    if op == ">>":
        return left >> (right & 63)
    raise VMError(f"unknown binop {op!r}")
