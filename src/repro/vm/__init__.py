"""Performance VM: architectural interpreter with an Arm barrier cost model.

Used for the paper's performance experiments (Tables 4-6): programs run
to completion under a deterministic scheduler while the VM counts
dynamic operations per class and charges modeled cycles.  Relative
overheads between porting strategies are driven by the implicit-versus-
explicit barrier cost ratios measured by Liu et al. [48].
"""

from repro.vm.costs import CostModel
from repro.vm.interp import RunResult, run_module
from repro.vm.stats import RunStats

__all__ = ["CostModel", "RunResult", "RunStats", "run_module"]
