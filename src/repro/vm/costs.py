"""Cycle cost models calibrated to per-architecture barrier measurements.

The default (Armv8) ratios follow "No Barrier in the Road: A
Comprehensive Study and Optimization of ARM Barriers" (Liu, Zang, Chen —
PPoPP 2020), the paper AtoMig cites for its implicit-over-explicit
design decision:

- one-way (implicit) barriers — LDAR / STLR — cost a small multiple of
  plain accesses;
- full fences — DMB ISH — are an order of magnitude more expensive;
- atomic RMWs sit in between; cross-CPU cache-line transfer dominates
  contended accesses regardless of their atomicity.

Absolute values are abstract cycles; only ratios matter for the
normalized slowdowns reported by the benchmark harness.

:data:`COST_MODELS` names the per-architecture weight tables the fence
synthesizer and Table 10 state their results against: ``armv8`` (the
defaults above) and ``power``, a Power-like machine where acquire and
release map to ``lwsync`` (expensive on *both* sides, unlike Armv8's
nearly-free LDAR) and a full fence is ``hwsync`` — so the cheapest
repair differs per architecture, which is the point of carrying the
architecture name through the reports.
"""

from dataclasses import dataclass

from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


@dataclass
class CostModel:
    """Per-operation abstract cycle costs."""

    #: Architecture the weights are calibrated for (reporting only;
    #: never part of cost arithmetic).
    name: str = "armv8"
    alu: int = 1
    branch: int = 1
    plain_load: int = 2
    plain_store: int = 2
    #: Accesses to provably thread-private stack slots: the paper's
    #: baselines are -O2 binaries where these live in registers.
    private_access: int = 1
    #: LDAR-class implicit barrier: nearly free when uncontended
    #: (Liu et al. measure LDAR ~ LDR on Kunpeng 920).
    acquire_load: int = 2
    #: STLR-class implicit barrier: drains prior stores.
    release_store: int = 20
    #: Relaxed atomics translate to plain LDR/STR on Armv8.
    relaxed_load: int = 2
    relaxed_store: int = 2
    #: DMB ISH explicit fence.
    fence: int = 40
    rmw: int = 10
    #: SC RMWs (CASAL-class) cost barely more than relaxed CAS: the
    #: exclusive-access machinery dominates either way.
    rmw_sc: int = 11
    call: int = 2
    ret: int = 1
    malloc: int = 24
    free: int = 6
    thread_op: int = 200
    #: usleep / sched_yield: the syscall + reschedule overhead.
    sleep_op: int = 120
    #: Extra cycles when touching a line last written by another thread.
    contention: int = 18
    #: Contended *atomic* accesses additionally serialize on the
    #: coherence response (acquire/release cannot complete until the
    #: line settles), so they pay a higher transfer penalty.
    contention_atomic: int = 70
    #: Slots per modeled cache line (coherence granularity).
    line_slots: int = 16

    def load_cost(self, order):
        if order is MemoryOrder.NOT_ATOMIC:
            return self.plain_load
        if order.has_acquire:
            return self.acquire_load
        return self.relaxed_load

    def store_cost(self, order):
        if order is MemoryOrder.NOT_ATOMIC:
            return self.plain_store
        if order.has_release:
            return self.release_store
        return self.relaxed_store

    def rmw_cost(self, order):
        return self.rmw_sc if order is MemoryOrder.SEQ_CST else self.rmw

    def instruction_cost(self, instr):
        """Base cost of ``instr`` (contention handled by the VM)."""
        if isinstance(instr, ins.Load):
            return self.load_cost(instr.order)
        if isinstance(instr, ins.Store):
            return self.store_cost(instr.order)
        if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
            return self.rmw_cost(instr.order)
        if isinstance(instr, ins.Fence):
            return self.fence
        if isinstance(instr, (ins.Br, ins.CondBr)):
            return self.branch
        if isinstance(instr, ins.Call):
            return self.call
        if isinstance(instr, ins.Ret):
            return self.ret
        if isinstance(instr, ins.Malloc):
            return self.malloc
        if isinstance(instr, ins.Free):
            return self.free
        if isinstance(instr, (ins.ThreadCreate, ins.ThreadJoin)):
            return self.thread_op
        if isinstance(instr, ins.Sleep):
            return self.sleep_op
        if isinstance(instr, ins.CompilerBarrier):
            return 0  # compiles to nothing
        return self.alu

    def access_cost(self, instr, order=None):
        """Cost of a memory access / fence *as if* it carried ``order``.

        ``order=None`` uses the instruction's own order.  This is the
        costing path the barrier optimizer uses to rank weakening
        candidates: the savings of a candidate is
        ``access_cost(instr) - access_cost(instr, weaker_order)``.
        """
        if order is None:
            order = instr.order
        if isinstance(instr, ins.Load):
            return self.load_cost(order)
        if isinstance(instr, ins.Store):
            return self.store_cost(order)
        if isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
            return self.rmw_cost(order)
        if isinstance(instr, ins.Fence):
            return self.fence
        raise TypeError(f"not a memory access or fence: {instr!r}")


#: Named per-architecture weight tables.  ``armv8`` is the dataclass
#: default (LDAR nearly free, STLR moderate, DMB expensive).  ``power``
#: models an lwsync/hwsync machine: acquire *loads* are as expensive as
#: release stores (both lower to lwsync-class barriers), full fences
#: (hwsync) cost twice Armv8's DMB, and SC RMWs pay the surrounding
#: sync pair.  Ratios loosely follow the lwsync/hwsync measurements in
#: the literature; as everywhere in this module only ratios matter.
COST_MODELS = {
    "armv8": CostModel(),
    "power": CostModel(
        name="power",
        acquire_load=14,
        release_store=14,
        fence=80,
        rmw=16,
        rmw_sc=44,
    ),
}


def cost_model_for(arch):
    """The named :class:`CostModel`, or ``arch`` itself when it already
    is one (so every ``arch=`` knob accepts both spellings)."""
    if isinstance(arch, CostModel):
        return arch
    if arch is None:
        return COST_MODELS["armv8"]
    try:
        return COST_MODELS[arch]
    except KeyError:
        raise ValueError(
            f"unknown architecture {arch!r} "
            f"(known: {', '.join(sorted(COST_MODELS))})"
        ) from None


def is_barrier(instr):
    """True for instructions counted as barriers (explicit or implicit).

    Matches :func:`repro.core.report.count_barriers`: stand-alone
    fences are explicit barriers; atomic loads, stores and RMWs are
    implicit barriers (LDAR/STLR/CASAL-class on Arm).
    """
    if isinstance(instr, ins.Fence):
        return True
    if isinstance(instr, (ins.Load, ins.Store)):
        return instr.order.is_atomic
    return isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW))


@dataclass
class CostEstimate:
    """Module-level abstract cycle estimate (one costing path for the
    optimizer, Table 9 and the benchmark harness)."""

    #: Weighted cost of every instruction in the module.
    total: int = 0
    #: Weighted cost of barrier instructions only (fences + atomics).
    barriers: int = 0
    #: Number of barrier instructions (static count, unweighted).
    barrier_sites: int = 0
    #: Total weight applied to barrier sites (== barrier_sites when
    #: static, sum of dynamic execution counts otherwise).
    barrier_weight: int = 0
    #: True when dynamic execution counts weighted the estimate.
    dynamic: bool = False

    def to_dict(self):
        return {
            "total": self.total,
            "barriers": self.barriers,
            "barrier_sites": self.barrier_sites,
            "barrier_weight": self.barrier_weight,
            "dynamic": self.dynamic,
        }


def estimate_cost(module, cost_model=None, counts=None):
    """Estimate the abstract cycle cost of ``module``.

    Sums per-instruction costs from ``cost_model`` (default
    :class:`CostModel`), weighted by dynamic execution counts when
    ``counts`` is given — a mapping of ``(function, block_label,
    index_in_block)`` to executed count, as recorded in
    :attr:`repro.vm.stats.RunStats.instr_counts` by
    ``run_module(..., record_counts=True)``.  Without ``counts`` every
    instruction weighs 1 (static estimate).  Returns a
    :class:`CostEstimate` whose ``barriers`` field is the number
    Table 9 reports: the modeled cost of explicit + implicit barriers.
    """
    model = cost_model or CostModel()
    estimate = CostEstimate(dynamic=counts is not None)
    for function_name, function in module.functions.items():
        for block in function.blocks:
            for index, instr in enumerate(block.instructions):
                if counts is None:
                    weight = 1
                else:
                    weight = counts.get(
                        (function_name, block.label, index), 0
                    )
                cost = model.instruction_cost(instr) * weight
                estimate.total += cost
                if is_barrier(instr):
                    estimate.barriers += cost
                    estimate.barrier_sites += 1
                    estimate.barrier_weight += weight
    return estimate
