"""Dynamic execution statistics (the data behind Table 4)."""

from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Counters accumulated while a module runs on the VM."""

    instructions: int = 0
    plain_loads: int = 0
    plain_stores: int = 0
    atomic_loads: int = 0
    atomic_stores: int = 0
    rmw_ops: int = 0
    fences: int = 0
    calls: int = 0
    allocations: int = 0
    threads_spawned: int = 0
    contended_accesses: int = 0
    cycles: int = 0
    per_thread_cycles: dict = field(default_factory=dict)
    #: Per-instruction dynamic execution counts, keyed by the stable
    #: position ``(function, block_label, index_in_block)``.  Only
    #: populated when the run was started with ``record_counts=True``;
    #: :func:`repro.vm.costs.estimate_cost` accepts it as the
    #: ``counts`` weighting for dynamic cost estimates.
    instr_counts: dict = field(default_factory=dict)

    def barrier_table(self):
        """The four rows of the paper's Table 4."""
        return {
            "non-atomic loads": self.plain_loads,
            "non-atomic stores": self.plain_stores,
            "atomic loads": self.atomic_loads,
            "atomic stores": self.atomic_stores,
        }

    def summary(self):
        return (
            f"{self.instructions} instrs, {self.cycles} cycles, "
            f"loads {self.plain_loads}+{self.atomic_loads}a, "
            f"stores {self.plain_stores}+{self.atomic_stores}a, "
            f"rmw {self.rmw_ops}, fences {self.fences}, "
            f"contended {self.contended_accesses}"
        )
