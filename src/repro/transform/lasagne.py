"""A Lasagne-like porter (Rocha et al., PLDI 2022) as a baseline.

Lasagne lifts an x86 binary, makes it SC by inserting *explicit* fences
around memory operations, then removes fences that are provably
redundant.  We reproduce that strategy at the IR level:

1. insert an SC fence before every access to non-local memory;
2. run a sound intra-block redundancy elimination: a fence is dropped
   when no memory access separates it from an adjacent fence.

Accesses stay plain (explicit-barrier style), which is the root of
Lasagne's overhead versus implicit-barrier approaches (paper Table 6:
Lasagne is on average slower than even the Naive porter).
"""

from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


def lasagne_port(module):
    """Apply the fence-insertion + elimination pipeline.

    Returns ``(inserted, removed)`` fence counts.
    """
    inserted = _insert_fences(module)
    removed = eliminate_redundant_fences(module)
    return inserted, removed


def _insert_fences(module):
    inserted = 0
    for function in module.functions.values():
        info = NonLocalInfo(function)
        for block in function.blocks:
            index = 0
            while index < len(block.instructions):
                instr = block.instructions[index]
                if instr.is_memory_access() and info.is_nonlocal_pointer(
                    instr.accessed_pointer()
                ):
                    fence = ins.Fence(MemoryOrder.SEQ_CST)
                    fence.marks.add("lasagne")
                    block.insert(index, fence)
                    inserted += 1
                    index += 1  # skip over the fence we just added
                index += 1
    return inserted


def eliminate_redundant_fences(module):
    """Lasagne's verified barrier elimination, approximated soundly.

    The goal is TSO-equivalence on Arm: the load-load, load-store and
    store-store orders must be restored, while store-load reordering is
    already allowed by x86-TSO.  A fence guarding an access is therefore
    provably redundant exactly when the previous shared access in the
    same block is a *store* and the guarded access is a *load* — the one
    pair TSO never orders.  (The real Lasagne additionally removes
    fences around accesses its binary-level analyses prove unrelated to
    synchronization; see EXPERIMENTS.md for the resulting magnitude
    difference.)
    """
    removed = 0
    info_cache = {}
    for function in module.functions.values():
        info = info_cache.setdefault(function, NonLocalInfo(function))
        for block in function.blocks:
            kept = []
            previous_shared = None  # "load" | "store" | None
            pending_fence = None
            for instr in block.instructions:
                if isinstance(instr, ins.Fence) and "lasagne" in instr.marks:
                    if pending_fence is not None:
                        removed += 1  # adjacent duplicate
                    pending_fence = instr
                    continue
                if instr.is_memory_access() and info.is_nonlocal_pointer(
                    instr.accessed_pointer()
                ):
                    is_load = isinstance(instr, ins.Load)
                    if pending_fence is not None:
                        if previous_shared == "store" and is_load:
                            removed += 1  # TSO already allows store->load
                        else:
                            kept.append(pending_fence)
                        pending_fence = None
                    previous_shared = "load" if is_load else "store"
                elif pending_fence is not None:
                    kept.append(pending_fence)
                    pending_fence = None
                kept.append(instr)
            if pending_fence is not None:
                kept.append(pending_fence)
            block.instructions = kept
    return removed
