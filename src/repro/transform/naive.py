"""The Naive porter (§2.2, Table 1).

Make *every* shared memory access sequentially consistent.  Safe,
scalable and fully automatic — but each global/heap access now carries
an implicit barrier, which is where the paper's 1.27x-5.35x slowdowns
come from.
"""

from repro.analysis.nonlocal_ import NonLocalInfo
from repro.ir import instructions as ins
from repro.ir.instructions import MemoryOrder


def naive_port(module):
    """Convert all non-local accesses to SC atomics; returns #converted."""
    converted = 0
    for function in module.functions.values():
        info = NonLocalInfo(function)
        for instr in function.instructions():
            if isinstance(instr, (ins.Load, ins.Store)):
                if not info.is_nonlocal_pointer(instr.pointer):
                    continue
                if instr.order is not MemoryOrder.SEQ_CST:
                    instr.order = MemoryOrder.SEQ_CST
                    converted += 1
                instr.marks.add("naive")
            elif isinstance(instr, (ins.Cmpxchg, ins.AtomicRMW)):
                if instr.order is not MemoryOrder.SEQ_CST:
                    instr.order = MemoryOrder.SEQ_CST
                    converted += 1
                instr.marks.add("naive")
    return converted
