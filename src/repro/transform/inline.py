"""Pre-analysis function inlining (§3.5, "Loops Spanning Multiple
Functions").

Loops that call tiny helpers (``lock()``, ``load_state()``, ...) hide
their non-local accesses behind a call.  Instead of paying for
inter-procedural analysis, AtoMig inlines small, non-recursive callees
before running its detectors — the same trade-off the paper makes.
"""

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import reverse_postorder
from repro.errors import PassError
from repro.ir import instructions as ins
from repro.ir.module import BasicBlock, _clone_instruction
from repro.ir.values import Constant


def inline_module(module, size_limit=80, touched=None):
    """Inline eligible call sites module-wide; returns #sites inlined.

    When ``touched`` is a set, the names of functions whose bodies were
    rewritten (the callers) are added to it — the porting pipeline's
    incremental verifier uses this to know what to re-check.
    """
    graph = CallGraph(module)
    recursive = graph.recursive_functions()
    inlined = 0
    for name in graph.bottom_up_order():
        function = module.functions[name]
        sites = _inline_into(module, function, recursive, size_limit)
        if sites and touched is not None:
            touched.add(name)
        inlined += sites
    return inlined


def _function_size(function):
    return sum(len(block.instructions) for block in function.blocks)


def _inline_into(module, caller, recursive, size_limit):
    inlined = 0
    changed = True
    while changed:
        changed = False
        for block in list(caller.blocks):
            for instr in list(block.instructions):
                if not isinstance(instr, ins.Call):
                    continue
                callee = instr.callee
                if callee.name == caller.name or callee.name in recursive:
                    continue
                if not callee.blocks:
                    continue
                if _function_size(callee) > size_limit:
                    continue
                _inline_call_site(module, caller, instr)
                inlined += 1
                changed = True
                break
            if changed:
                break
    return inlined


def _inline_call_site(module, caller, call):
    """Inline one call: split the block, splice in a clone of the callee."""
    callee = call.callee
    block = call.block
    call_index = block.instructions.index(call)

    # Continuation block receives everything after the call.
    continuation = caller.new_block(f"inl.cont.{callee.name}")
    tail = block.instructions[call_index + 1 :]
    del block.instructions[call_index:]
    for moved in tail:
        continuation.append(moved)

    # Result slot for non-void callees (loaded in the continuation).
    result_slot = None
    if not callee.return_type.is_void():
        result_slot = ins.Alloca(callee.return_type)
        result_slot.name = f"inl.ret.{callee.name}"
        caller.entry.insert(0, result_slot)

    # Map callee arguments to the actual call operands.
    value_map = {}
    for argument, actual in zip(callee.arguments, call.args):
        value_map[argument] = actual

    block_map = {}
    for source_block in reverse_postorder(callee):
        clone = BasicBlock(f"inl.{callee.name}.{source_block.label}", caller)
        caller.blocks.append(clone)
        block_map[source_block] = clone

    for source_block in reverse_postorder(callee):
        clone_block = block_map[source_block]
        for source_instr in source_block.instructions:
            if isinstance(source_instr, ins.Ret):
                if source_instr.has_value and result_slot is not None:
                    value = _map_value(source_instr.value, value_map)
                    clone_block.append(ins.Store(result_slot, value))
                clone_block.append(ins.Br(continuation))
                continue
            cloned = _clone_instruction(
                source_instr,
                lambda value: _map_value(value, value_map),
                block_map,
                module,
            )
            cloned.source_line = source_instr.source_line
            cloned.marks = set(source_instr.marks)
            if source_instr.name is not None:
                cloned.name = f"inl.{source_instr.name}.{caller.next_value_name()}"
            clone_block.append(cloned)
            value_map[source_instr] = cloned

    # Jump into the inlined body.
    block.append(ins.Br(block_map[callee.entry]))

    # Replace uses of the call's result with a load of the result slot.
    if result_slot is not None:
        result_load = ins.Load(result_slot)
        result_load.name = f"inl.res.{caller.next_value_name()}"
        continuation.insert(0, result_load)
        replacement = result_load
    else:
        replacement = Constant(0)
    for other_block in caller.blocks:
        for other in other_block.instructions:
            other.replace_operand(call, replacement)


def _map_value(value, value_map):
    if value is None or isinstance(value, Constant):
        return value
    mapped = value_map.get(value)
    if mapped is not None:
        return mapped
    if isinstance(value, ins.Instruction) or hasattr(value, "index"):
        # Values defined in the callee must have been cloned already
        # (reverse postorder guarantees defs precede uses).
        if isinstance(value, ins.Instruction):
            raise PassError(f"inline: unmapped callee value {value!r}")
    return value  # globals are shared between caller and callee
