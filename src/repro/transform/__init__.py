"""Whole-module transformations: pre-inlining and baseline porters."""

from repro.transform.inline import inline_module
from repro.transform.lasagne import lasagne_port
from repro.transform.naive import naive_port

__all__ = ["inline_module", "lasagne_port", "naive_port"]
