"""Classic mutual-exclusion algorithms and lock-free structures.

Extended validation corpus beyond the paper's Table 2:

- **Peterson's lock** — the textbook case needing store-load ordering:
  broken even on x86-TSO without a fence; the TSO-era variant therefore
  carries an ``mfence``, which AtoMig's inline-asm frontend pass maps to
  a portable SC fence.
- **Dekker's core** (the SB kernel with turn arbitration).
- **Treiber stack** — CAS-based lock-free push/pop over heap nodes.
- **DPDK-style SPSC ring** — the library from the paper's motivating
  industry anecdote (§1): volatile head/tail indices, data slots
  published by index bump, plus an x86 compiler barrier in exactly the
  place DPDK's x86 backend puts one.
"""


def peterson_tso_source():
    """Peterson with the mandatory x86 fence (correct on TSO)."""
    return """
int interested0 = 0;
int interested1 = 0;
int turn = 0;
int counter = 0;

void lock0() {
    interested0 = 1;
    turn = 1;
    __asm__("mfence");
    while (interested1 == 1 && turn == 1) { }
}

void unlock0() {
    interested0 = 0;
}

void lock1() {
    interested1 = 1;
    turn = 0;
    __asm__("mfence");
    while (interested0 == 1 && turn == 0) { }
}

void unlock1() {
    interested1 = 0;
}

void other() {
    lock1();
    int c = counter;
    counter = c + 1;
    unlock1();
}

int main() {
    int t = thread_create(other);
    lock0();
    int c = counter;
    counter = c + 1;
    unlock0();
    thread_join(t);
    assert(counter == 2);
    return 0;
}
"""


def peterson_broken_source():
    """Peterson *without* the fence: broken on TSO already (SB)."""
    return peterson_tso_source().replace('    __asm__("mfence");\n', "")


def dekker_core_source():
    """The store-buffering kernel at the heart of Dekker's algorithm."""
    return """
int req0 = 0;
int req1 = 0;
int in_cs = 0;

void side1() {
    req1 = 1;
    __asm__("mfence");
    if (req0 == 0) {
        int c = in_cs;
        in_cs = c + 1;
    }
}

int main() {
    int t = thread_create(side1);
    req0 = 1;
    __asm__("mfence");
    if (req1 == 0) {
        int c = in_cs;
        in_cs = c + 1;
    }
    thread_join(t);
    assert(in_cs <= 1);
    return 0;
}
"""


def treiber_stack_mc_source():
    """Two concurrent pushes, then sequential pops: LIFO + no loss."""
    return """
struct cell { int value; struct cell *below; };

struct cell *top;
struct cell cells[4];
_Atomic int cell_next = 0;

void push(int value) {
    int idx = atomic_fetch_add(&cell_next, 1);
    struct cell *cell = &cells[idx];
    cell->value = value;
    while (1) {
        struct cell *old = top;
        cell->below = old;
        if (atomic_cmpxchg_explicit(&top, old, cell, memory_order_relaxed) == old) {
            return;
        }
    }
}

int pop() {
    while (1) {
        struct cell *old = top;
        if (old == NULL) {
            return -1;
        }
        struct cell *below = old->below;
        if (atomic_cmpxchg_explicit(&top, old, below, memory_order_relaxed) == old) {
            return old->value;
        }
    }
}

void pusher() {
    push(11);
}

int main() {
    int t = thread_create(pusher);
    push(22);
    int a = pop();      // races with the concurrent push(11)
    thread_join(t);
    int b = pop();
    int c = pop();
    assert(pop() == -1);
    // Exactly {11, 22} were pushed; one pop came up empty at most.
    assert(a == 11 || a == 22);
    assert(a + b + c == 32);  // 11 + 22 + (-1)
    return 0;
}
"""


def treiber_stack_perf_source(ops=150):
    return f"""
struct cell {{ int value; struct cell *below; }};

struct cell *top;
struct cell cells[{2 * ops}];
_Atomic int cell_next = 0;

void push(int value) {{
    int idx = atomic_fetch_add(&cell_next, 1);
    struct cell *cell = &cells[idx];
    cell->value = value;
    while (1) {{
        struct cell *old = top;
        cell->below = old;
        if (atomic_cmpxchg_explicit(&top, old, cell, memory_order_relaxed) == old) {{
            return;
        }}
    }}
}}

int pop() {{
    while (1) {{
        struct cell *old = top;
        if (old == NULL) {{
            return -1;
        }}
        struct cell *below = old->below;
        if (atomic_cmpxchg_explicit(&top, old, below, memory_order_relaxed) == old) {{
            return old->value;
        }}
    }}
}}

void worker() {{
    for (int i = 0; i < {ops}; i++) {{
        push(i + 1);
        if (i % 2 == 1) {{
            pop();
        }}
    }}
}}

int main() {{
    int t = thread_create(worker);
    worker();
    thread_join(t);
    int drained = 0;
    while (pop() != -1) {{
        drained = drained + 1;
    }}
    assert(drained == {ops});
    return drained;
}}
"""


def dpdk_ring_mc_source(slots=2):
    """The §1 industry anecdote: a DPDK-style SPSC ring.

    Note the compiler barrier between the slot write and the tail bump
    — sufficient on x86 (TSO keeps stores ordered; the barrier only
    stops compiler reordering), silently broken on Arm.
    """
    return f"""
int slots[{slots}];
volatile int prod_tail = 0;
volatile int cons_head = 0;

void ring_enqueue(int value) {{
    while (prod_tail - cons_head == {slots}) {{ }}
    slots[prod_tail % {slots}] = value;
    __asm__("" ::: "memory");
    prod_tail = prod_tail + 1;
}}

int ring_dequeue() {{
    while (prod_tail - cons_head == 0) {{ }}
    int value = slots[cons_head % {slots}];
    __asm__("" ::: "memory");
    cons_head = cons_head + 1;
    return value;
}}

void producer() {{
    ring_enqueue(101);
    ring_enqueue(202);
}}

int main() {{
    int t = thread_create(producer);
    int a = ring_dequeue();
    int b = ring_dequeue();
    assert(a == 101);
    assert(b == 202);
    thread_join(t);
    return 0;
}}
"""
