"""The Phoenix 2.0 map-reduce benchmarks (Table 6), ported to Mini-C.

These are trivially parallel programs whose threads synchronize only by
being joined — no shared-memory spinloops at all.  That is exactly why
they discriminate so well between porters:

- AtoMig finds (almost) nothing to transform -> ~1.0x;
- Naive converts every global-array access to an SC atomic -> overhead
  proportional to the shared-memory intensity of the kernel (histogram
  is store-heavy and suffers most, matrix_multiply and kmeans keep
  accumulators in locals/registers and barely notice);
- the Lasagne-like porter pays an explicit fence per block of shared
  accesses.

Each kernel runs several rounds so the (write-heavy, one-off) input
initialization is amortized, as in the original suite where inputs are
mmap'd files.  Data comes from a deterministic LCG written in Mini-C.
"""

_PRELUDE = """
int lcg_state = 12345;

int lcg_next() {{
    lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
    if (lcg_state < 0) {{ lcg_state = 0 - lcg_state; }}
    return lcg_state;
}}
"""


def histogram_source(pixels=2400, bins=64, rounds=4):
    """Per-thread halves of an image histogrammed into shared bins."""
    return _PRELUDE.format() + f"""
int image[{pixels}];
int bins_a[{bins}];
int bins_b[{bins}];

void fill() {{
    for (int i = 0; i < {pixels}; i++) {{
        image[i] = lcg_next() % {bins};
    }}
}}

void worker_range(int lo, int hi, int which) {{
    for (int i = lo; i < hi; i++) {{
        int b = image[i];
        if (which == 0) {{
            bins_a[b] = bins_a[b] + 1;
        }} else {{
            bins_b[b] = bins_b[b] + 1;
        }}
    }}
}}

void second_half() {{
    worker_range({pixels} / 2, {pixels}, 1);
}}

int main() {{
    fill();
    for (int r = 0; r < {rounds}; r++) {{
        int t = thread_create(second_half);
        worker_range(0, {pixels} / 2, 0);
        thread_join(t);
    }}
    int total = 0;
    for (int b = 0; b < {bins}; b++) {{
        total = total + bins_a[b] + bins_b[b];
    }}
    assert(total == {rounds} * {pixels});
    return total;
}}
"""


def kmeans_source(points=600, clusters=4, iters=4):
    """K-means: distance computation dominates; per-thread partial sums
    accumulate in locals (as -O2 register-allocates them) and are
    written back once per iteration."""
    return _PRELUDE.format() + f"""
int px[{points}];
int py[{points}];
int cx[{clusters}];
int cy[{clusters}];
int assign_a[{points}];
int sumx[{clusters * 2}];
int sumy[{clusters * 2}];
int cnt[{clusters * 2}];

void fill() {{
    for (int i = 0; i < {points}; i++) {{
        px[i] = lcg_next() % 1000;
        py[i] = lcg_next() % 1000;
    }}
    for (int c = 0; c < {clusters}; c++) {{
        cx[c] = lcg_next() % 1000;
        cy[c] = lcg_next() % 1000;
    }}
}}

void assign_range(int lo, int hi, int which) {{
    int lsx[{clusters}];
    int lsy[{clusters}];
    int lcnt[{clusters}];
    for (int c = 0; c < {clusters}; c++) {{
        lsx[c] = 0;
        lsy[c] = 0;
        lcnt[c] = 0;
    }}
    for (int i = lo; i < hi; i++) {{
        int best = 0;
        int best_d = 2000000000;
        for (int c = 0; c < {clusters}; c++) {{
            int dx = px[i] - cx[c];
            int dy = py[i] - cy[c];
            int d = dx * dx + dy * dy;
            if (d < best_d) {{
                best_d = d;
                best = c;
            }}
        }}
        assign_a[i] = best;
        lsx[best] = lsx[best] + px[i];
        lsy[best] = lsy[best] + py[i];
        lcnt[best] = lcnt[best] + 1;
    }}
    for (int c = 0; c < {clusters}; c++) {{
        int s = which * {clusters} + c;
        sumx[s] = lsx[c];
        sumy[s] = lsy[c];
        cnt[s] = lcnt[c];
    }}
}}

void second_half() {{
    assign_range({points} / 2, {points}, 1);
}}

int main() {{
    fill();
    for (int it = 0; it < {iters}; it++) {{
        int t = thread_create(second_half);
        assign_range(0, {points} / 2, 0);
        thread_join(t);
        for (int c = 0; c < {clusters}; c++) {{
            int n = cnt[c] + cnt[{clusters} + c];
            if (n > 0) {{
                cx[c] = (sumx[c] + sumx[{clusters} + c]) / n;
                cy[c] = (sumy[c] + sumy[{clusters} + c]) / n;
            }}
        }}
    }}
    return cx[0] + cy[0];
}}
"""


def linear_regression_source(points=2500, rounds=5):
    """Accumulators stay in locals: almost no shared stores."""
    return _PRELUDE.format() + f"""
int xs[{points}];
int ys[{points}];
int part_sx[2];
int part_sy[2];
int part_sxx[2];
int part_sxy[2];

void fill() {{
    for (int i = 0; i < {points}; i++) {{
        xs[i] = lcg_next() % 100;
        ys[i] = 3 * xs[i] + lcg_next() % 10;
    }}
}}

void reduce_range(int lo, int hi, int which) {{
    int sx = 0;
    int sy = 0;
    int sxx = 0;
    int sxy = 0;
    for (int i = lo; i < hi; i++) {{
        int x = xs[i];
        int y = ys[i];
        sx = sx + x;
        sy = sy + y;
        sxx = sxx + x * x;
        sxy = sxy + x * y;
    }}
    part_sx[which] = sx;
    part_sy[which] = sy;
    part_sxx[which] = sxx;
    part_sxy[which] = sxy;
}}

void second_half() {{
    reduce_range({points} / 2, {points}, 1);
}}

int main() {{
    fill();
    for (int r = 0; r < {rounds}; r++) {{
        int t = thread_create(second_half);
        reduce_range(0, {points} / 2, 0);
        thread_join(t);
    }}
    int sx = part_sx[0] + part_sx[1];
    int sxy = part_sxy[0] + part_sxy[1];
    assert(sxy != 0);
    return sx;
}}
"""


def matrix_multiply_source(n=24, rounds=2):
    """Classic triple loop; the accumulator lives in a local."""
    return _PRELUDE.format() + f"""
int a[{n * n}];
int b[{n * n}];
int c[{n * n}];

void fill() {{
    for (int i = 0; i < {n} * {n}; i++) {{
        a[i] = lcg_next() % 10;
        b[i] = lcg_next() % 10;
    }}
}}

void mul_rows(int lo, int hi) {{
    for (int i = lo; i < hi; i++) {{
        for (int j = 0; j < {n}; j++) {{
            int acc = 0;
            for (int k = 0; k < {n}; k++) {{
                acc = acc + a[i * {n} + k] * b[k * {n} + j];
            }}
            c[i * {n} + j] = acc;
        }}
    }}
}}

void second_half() {{
    mul_rows({n} / 2, {n});
}}

int main() {{
    fill();
    for (int r = 0; r < {rounds}; r++) {{
        int t = thread_create(second_half);
        mul_rows(0, {n} / 2);
        thread_join(t);
    }}
    return c[0];
}}
"""


def string_match_source(haystack=2500, needles=4, rounds=4):
    """Scan for key strings; matches are flagged into a shared array."""
    return _PRELUDE.format() + f"""
int text[{haystack}];
int needle[{needles}];
int match_pos[{haystack}];

void fill() {{
    for (int i = 0; i < {haystack}; i++) {{
        text[i] = lcg_next() % 26;
    }}
    for (int k = 0; k < {needles}; k++) {{
        needle[k] = text[37 + k];
    }}
}}

void scan_range(int lo, int hi) {{
    for (int i = lo; i < hi; i++) {{
        int ok = 1;
        for (int k = 0; k < {needles}; k++) {{
            if (text[i + k] != needle[k]) {{
                ok = 0;
                k = {needles};
            }}
        }}
        match_pos[i] = ok;
    }}
}}

void second_half() {{
    scan_range(({haystack} - {needles}) / 2, {haystack} - {needles});
}}

int main() {{
    fill();
    for (int r = 0; r < {rounds}; r++) {{
        int t = thread_create(second_half);
        scan_range(0, ({haystack} - {needles}) / 2);
        thread_join(t);
    }}
    int matches = 0;
    for (int i = 0; i < {haystack} - {needles}; i++) {{
        matches = matches + match_pos[i];
    }}
    assert(matches >= 1);
    return matches;
}}
"""


PHOENIX_BENCHMARKS = {
    "histogram": histogram_source,
    "kmeans": kmeans_source,
    "linear_regression": linear_regression_source,
    "matrix_multiply": matrix_multiply_source,
    "string_match": string_match_source,
}
