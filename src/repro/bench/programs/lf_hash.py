"""MariaDB's lock-free hash (lf-hash), ported to Mini-C.

The model-checking client abstracts the Figure 7 bug: ``l_find``'s
validation loop reads a node's ``state`` and ``key`` and retries on an
inconsistent snapshot, while ``l_delete`` invalidates the node with a
relaxed compare-exchange and then clears the key with a plain store.
Two WMM reorderings break it: the find-side ``key`` load escaping the
validation loop, and the delete-side ``key`` store overtaking the
CAS's store half (Armv8 release-store semantics).

The performance client runs a bucketed lock-free table with CAS-based
inserts, searching readers and invalidating deleters — the "parallel
searches, insertions and deletions" workload of §4.3.
"""


def mc_source():
    return """
struct node { int state; int key; };
struct node n;

enum { INVALID = 0, VALID = 1 };

void l_delete() {
    if (atomic_cmpxchg_explicit(&n.state, VALID, INVALID, memory_order_relaxed) == VALID) {
        n.key = 0;
    }
}

int main() {
    n.state = VALID;
    n.key = 77;
    int t = thread_create(l_delete);
    int state;
    int key;
    do {
        state = n.state;
        key = n.key;
    } while (state != n.state);
    assert(state == INVALID || key != 0);
    thread_join(t);
    return 0;
}
"""


def copy_mc_source():
    """The Figure 7 client, reader snapshotting into a local struct.

    MariaDB's l_find copies the node it inspects into a stack-local
    ``struct node`` before validating — the same (type, offset) pairs
    as the shared node, so type-based sticky matching atomizes the
    snapshot accesses along with the real ones.  The points-to mode
    proves the snapshot thread-local and prunes them; the validation
    loop's controls and the delete side keep their barriers, so the
    port still verifies under WMM.
    """
    return """
struct node { int state; int key; };
struct node n;

enum { INVALID = 0, VALID = 1 };

void l_delete() {
    if (atomic_cmpxchg_explicit(&n.state, VALID, INVALID, memory_order_relaxed) == VALID) {
        n.key = 0;
    }
}

int main() {
    n.state = VALID;
    n.key = 77;
    int t = thread_create(l_delete);
    struct node snap;
    do {
        snap.state = n.state;
        snap.key = n.key;
    } while (snap.state != n.state);
    assert(snap.state == INVALID || snap.key != 0);
    thread_join(t);
    return 0;
}
"""


def gate_source():
    """Bucket-parallel insert client for the exploration-perf gate.

    Two writers push fresh nodes into *disjoint* buckets of a miniature
    bucketed table (the §4.3 "parallel insertions" workload at
    model-checking scale).  Their commits target disjoint addresses, so
    a partial-order-reduced explorer should collapse the interleaving
    product to nearly one trace, while the unreduced oracle enumerates
    the full cross product — the workload behind the ≥5x state-count
    gate in ``benchmarks/test_perf_explorer.py``.
    """
    return """
struct node { int state; int key; int val; struct node *next; };

enum { INVALID = 0, VALID = 1 };

struct node *bucket_head[2];
struct node pool[4];

void l_insert(int slot, int b, int key, int val) {
    struct node *node = &pool[slot];
    node->key = key;
    node->val = val;
    node->state = VALID;
    while (1) {
        struct node *head = bucket_head[b];
        node->next = head;
        if (atomic_cmpxchg_explicit(&bucket_head[b], head, node, memory_order_relaxed) == head) {
            return;
        }
    }
}

int l_find(int b, int key) {
    struct node *cur = bucket_head[b];
    while (cur != NULL) {
        int state;
        int k;
        do {
            state = cur->state;
            k = cur->key;
        } while (state != cur->state);
        if (state == VALID && k == key) {
            return cur->val;
        }
        cur = cur->next;
    }
    return -1;
}

void writer_a() {
    l_insert(0, 0, 10, 100);
    l_insert(1, 0, 11, 110);
}

void writer_b() {
    l_insert(2, 1, 20, 200);
    l_insert(3, 1, 21, 210);
}

int main() {
    int ta = thread_create(writer_a);
    int tb = thread_create(writer_b);
    thread_join(ta);
    thread_join(tb);
    assert(l_find(0, 10) == 100);
    assert(l_find(0, 11) == 110);
    assert(l_find(1, 20) == 200);
    assert(l_find(1, 21) == 210);
    return 0;
}
"""


def perf_source(ops=80, buckets=64, nodes=None):
    # Each insert consumes a fresh pool node; reuse would create cycles
    # in the bucket lists, so the pool is sized to the total insert
    # count of both mutator threads.
    if nodes is None:
        nodes = 2 * ops
    return f"""
struct node {{ int state; int key; int val[6]; struct node *next; }};

enum {{ INVALID = 0, VALID = 1 }};

struct node *bucket_head[{buckets}];
struct node pool[{nodes}];
_Atomic int pool_next = 0;
int found_sum = 0;

int hash_key(int key) {{
    int h = key;
    for (int i = 0; i < 18; i++) {{
        int mixed = h * 31 + i * 7 + (h >> 3);
        h = mixed % 1000003;
    }}
    if (h < 0) {{ h = 0 - h; }}
    return h;
}}

struct node *alloc_node() {{
    int idx = atomic_fetch_add(&pool_next, 1);
    return &pool[idx % {nodes}];
}}

void l_insert(int key, int val) {{
    struct node *node = alloc_node();
    node->key = key;
    for (int v = 0; v < 6; v++) {{
        node->val[v] = val + v;
    }}
    node->state = VALID;
    int b = hash_key(key) % {buckets};
    while (1) {{
        struct node *head = bucket_head[b];
        node->next = head;
        if (atomic_cmpxchg_explicit(&bucket_head[b], head, node, memory_order_relaxed) == head) {{
            return;
        }}
    }}
}}

int l_find(int key) {{
    int b = hash_key(key) % {buckets};
    struct node *cur = bucket_head[b];
    while (cur != NULL) {{
        int state;
        int k;
        do {{
            state = cur->state;
            k = cur->key;
        }} while (state != cur->state);
        if (state == VALID && k == key) {{
            int sum = 0;
            for (int v = 0; v < 6; v++) {{
                sum = sum + cur->val[v];
            }}
            return sum;
        }}
        cur = cur->next;
    }}
    return -1;
}}

void l_delete(int key) {{
    int b = hash_key(key) % {buckets};
    struct node *cur = bucket_head[b];
    while (cur != NULL) {{
        if (cur->key == key) {{
            if (atomic_cmpxchg_explicit(&cur->state, VALID, INVALID, memory_order_relaxed) == VALID) {{
                return;
            }}
        }}
        cur = cur->next;
    }}
}}

void mutator(int base) {{
    for (int i = base; i < base + {ops}; i++) {{
        l_insert(i * 7 % 97, i);
        if (i % 3 == 0) {{
            l_delete((i - 6) * 7 % 97);
        }}
    }}
}}

int main() {{
    // Parallel searches, insertions and deletions (§4.3): two mutator
    // threads keep invalidating the lines the searching reader walks.
    int t1 = thread_create(mutator, 0);
    int t2 = thread_create(mutator, {ops});
    int sum = 0;
    for (int i = 0; i < {ops}; i++) {{
        int v = l_find(i * 7 % 97);
        if (v >= 0) {{
            sum = sum + v;
        }}
    }}
    thread_join(t1);
    thread_join(t2);
    found_sum = sum;
    return sum;
}}
"""
