"""Concurrency Kit's seqlock (ck_sequence), ported to Mini-C (Figure 6).

A writer bumps a sequence counter around updates of a multi-word
payload; readers retry until they observe the same even sequence value
before and after reading.  Depends on store-store and load-load program
order — both broken on WMM, and *not* fixable by SC atomics on the
counter alone: the payload reads need explicit barriers (the paper's
optimistic-control transformation).
"""

_TSO = """
volatile int seq = 0;
int payload[{width}];

void write_record(int value) {{
    seq++;
    for (int i = 0; i < {width}; i++) {{
        payload[i] = value;
    }}
    seq++;
}}

int read_record() {{
    int s;
    int sum;
    do {{
        s = seq;
        sum = 0;
        for (int i = 0; i < {width}; i++) {{
            sum = sum + payload[i];
        }}
    }} while (s % 2 != 0 || s != seq);
    assert(sum % {width} == 0);
    return sum / {width};
}}
"""

_EXPERT = """
volatile int seq = 0;
int payload[{width}];

void write_record(int value) {{
    seq++;
    atomic_thread_fence(memory_order_seq_cst);
    for (int i = 0; i < {width}; i++) {{
        payload[i] = value;
    }}
    atomic_thread_fence(memory_order_seq_cst);
    seq++;
}}

int read_record() {{
    int s;
    int sum;
    do {{
        s = seq;
        atomic_thread_fence(memory_order_seq_cst);
        sum = 0;
        for (int i = 0; i < {width}; i++) {{
            sum = sum + payload[i];
        }}
        atomic_thread_fence(memory_order_seq_cst);
    }} while (s % 2 != 0 || s != seq);
    assert(sum % {width} == 0);
    return sum / {width};
}}
"""

_MC_CLIENT = """
void writer() {{
    write_record(7);
}}

int main() {{
    int t = thread_create(writer);
    int value = read_record();
    assert(value == 0 || value == 7);
    thread_join(t);
    return value;
}}
"""

_PERF_CLIENT = """
void writer() {{
    for (int r = 1; r <= {rounds}; r++) {{
        write_record(r);
    }}
    done = 1;
}}

int main() {{
    int t = thread_create(writer);
    int total = 0;
    while (done == 0) {{
        total = total + read_record();
    }}
    thread_join(t);
    return total;
}}
"""


def mc_source(width=2):
    return _TSO.format(width=width) + _MC_CLIENT.format()


def snapshot_mc_source():
    """Seqlock over a volatile struct, reader keeps a *local* snapshot.

    Legacy CK code reads seqlock-protected records into a stack copy
    before validating.  The record struct is volatile (as the shared
    instance habitually is on TSO), so §3.2 seeds ``("field", rec, *)``
    keys — and type-based sticky matching then atomizes the accesses to
    the reader's local ``snap`` too, although it never leaves the
    reading thread.  The points-to mode proves ``snap`` thread-local
    and prunes those barriers.
    """
    return """
struct rec { int a; int b; };

volatile int seq = 0;
volatile struct rec payload;

void write_record(int value) {
    seq++;
    payload.a = value;
    payload.b = value;
    seq++;
}

int read_record() {
    struct rec snap;
    int s;
    do {
        s = seq;
        snap.a = payload.a;
        snap.b = payload.b;
    } while (s % 2 != 0 || s != seq);
    assert(snap.a == snap.b);
    return snap.a;
}

void writer() {
    write_record(7);
}

int main() {
    int t = thread_create(writer);
    int value = read_record();
    assert(value == 0 || value == 7);
    thread_join(t);
    return value;
}
"""


def perf_source(rounds=250, width=8):
    return (
        "int done = 0;\n"
        + _TSO.format(width=width)
        + _PERF_CLIENT.format(rounds=rounds)
    )


def expert_source(rounds=250, width=8):
    return (
        "int done = 0;\n"
        + _EXPERT.format(width=width)
        + _PERF_CLIENT.format(rounds=rounds)
    )
