"""CLHT (cache-line hash table, David et al.), ported to Mini-C.

CLHT was developed solely for x86 (§4.3); the paper uses it to
demonstrate *end-to-end* porting where no expert WMM version exists,
so the baseline is simply the TSO code recompiled for aarch64 (which is
bound to exhibit WMM effects — the paper's footnote "+").

- ``clht_lb``: lock-based variant — one spin lock per bucket;
- ``clht_lf``: lock-free variant — sequence-style version counter per
  bucket with optimistic readers (this is why AtoMig's overhead is
  highest here, 1.40x: optimistic controls bring explicit fences).
"""

_HASH = """
int clht_hash(int key) {{
    int h = key;
    for (int i = 0; i < 6; i++) {{
        int mixed = h * 31 + i * 7 + (h >> 3);
        h = mixed % 1000003;
    }}
    if (h < 0) {{ h = 0 - h; }}
    return h;
}}
"""

_LB = """
enum {{ BUCKETS = {buckets}, SLOTS = 4 }};

int bucket_lock[{buckets}];
int bucket_key[{slots_total}];
int bucket_val[{slots_total}];

void lb_lock(int b) {{
    while (atomic_cmpxchg_explicit(&bucket_lock[b], 0, 1, memory_order_relaxed) != 0) {{
        cpu_relax();
    }}
}}

void lb_unlock(int b) {{
    bucket_lock[b] = 0;
}}

int clht_put(int key, int val) {{
    int b = clht_hash(key) % {buckets};
    lb_lock(b);
    for (int i = 0; i < SLOTS; i++) {{
        int slot = b * SLOTS + i;
        if (bucket_key[slot] == 0 || bucket_key[slot] == key) {{
            bucket_key[slot] = key;
            bucket_val[slot] = val;
            lb_unlock(b);
            return 1;
        }}
    }}
    lb_unlock(b);
    return 0;
}}

int clht_get(int key) {{
    int b = clht_hash(key) % {buckets};
    lb_lock(b);
    for (int i = 0; i < SLOTS; i++) {{
        int slot = b * SLOTS + i;
        if (bucket_key[slot] == key) {{
            int v = bucket_val[slot];
            lb_unlock(b);
            return v;
        }}
    }}
    lb_unlock(b);
    return -1;
}}
"""

# Legacy variant faithful to the real CLHT sources, where values are
# declared ``volatile clht_val_t`` even though every access happens
# under the per-bucket spin lock.  AtoMig's annotation pass promotes
# every volatile access to an SC atomic; the lint pruning stage proves
# the lock already protects them and demotes them back to plain.
_LB_LEGACY = _LB.replace(
    "int bucket_key[{slots_total}];\nint bucket_val[{slots_total}];",
    "volatile int bucket_key[{slots_total}];\n"
    "volatile int bucket_val[{slots_total}];",
)

_LF = """
enum {{ BUCKETS = {buckets}, SLOTS = 4 }};

volatile int bucket_ver[{buckets}];
int bucket_key[{slots_total}];
int bucket_val[{slots_total}];
int put_lock = 0;

int clht_put(int key, int val) {{
    int b = clht_hash(key) % {buckets};
    while (atomic_cmpxchg_explicit(&put_lock, 0, 1, memory_order_relaxed) != 0) {{ }}
    bucket_ver[b] = bucket_ver[b] + 1;
    int done = 0;
    for (int i = 0; i < SLOTS; i++) {{
        int slot = b * SLOTS + i;
        if (done == 0 && (bucket_key[slot] == 0 || bucket_key[slot] == key)) {{
            bucket_key[slot] = key;
            bucket_val[slot] = val;
            done = 1;
        }}
    }}
    bucket_ver[b] = bucket_ver[b] + 1;
    put_lock = 0;
    return done;
}}

int clht_get(int key) {{
    int b = clht_hash(key) % {buckets};
    int v;
    int result;
    do {{
        v = bucket_ver[b];
        result = -1;
        for (int i = 0; i < SLOTS; i++) {{
            int slot = b * SLOTS + i;
            if (bucket_key[slot] == key) {{
                result = bucket_val[slot];
            }}
        }}
    }} while (v % 2 != 0 || v != bucket_ver[b]);
    return result;
}}
"""

_MC_CLIENT = """
void writer() {{
    clht_put(5, 50);
    clht_put(5, 60);
}}

int main() {{
    int t = thread_create(writer);
    int v = clht_get(5);
    assert(v == -1 || v == 50 || v == 60);
    thread_join(t);
    return 0;
}}
"""

_PERF_CLIENT = """
void writer() {{
    for (int i = 1; i <= {ops}; i++) {{
        clht_put(i % 61 + 1, i);
    }}
}}

int main() {{
    int t = thread_create(writer);
    int hits = 0;
    for (int i = 1; i <= {ops}; i++) {{
        if (clht_get(i % 61 + 1) >= 0) {{
            hits = hits + 1;
        }}
    }}
    thread_join(t);
    return hits;
}}
"""


def lb_mc_source(buckets=2):
    table = _HASH.format() + _LB.format(buckets=buckets, slots_total=buckets * 4)
    return table + _MC_CLIENT.format()


def lb_perf_source(ops=200, buckets=16):
    table = _HASH.format() + _LB.format(buckets=buckets, slots_total=buckets * 4)
    return table + _PERF_CLIENT.format(ops=ops)


def lb_legacy_mc_source(buckets=2):
    table = _HASH.format() + _LB_LEGACY.format(
        buckets=buckets, slots_total=buckets * 4
    )
    return table + _MC_CLIENT.format()


def lb_legacy_perf_source(ops=200, buckets=16):
    table = _HASH.format() + _LB_LEGACY.format(
        buckets=buckets, slots_total=buckets * 4
    )
    return table + _PERF_CLIENT.format(ops=ops)


def lf_mc_source(buckets=2):
    table = _HASH.format() + _LF.format(buckets=buckets, slots_total=buckets * 4)
    return table + _MC_CLIENT.format()


def lf_perf_source(ops=200, buckets=16):
    table = _HASH.format() + _LF.format(buckets=buckets, slots_total=buckets * 4)
    return table + _PERF_CLIENT.format(ops=ops)
