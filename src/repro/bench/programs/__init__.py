"""Mini-C sources for every benchmark in the paper's evaluation.

Each module exports source builders:

- ``mc_source()``    — a litmus-scale client for the model checker;
- ``perf_source()``  — a larger client for the performance VM;
- ``expert_source()`` (CK benchmarks) — the hand-ported weak-memory
  variant with explicit barriers, used as the paper's "original"
  baseline in Table 5.
"""
