"""Concurrency Kit's CAS spinlock (ck_spinlock_cas), ported to Mini-C.

The TSO variant is Figure 4's test-and-set lock: a relaxed
compare-exchange acquire loop and a *plain store* release — correct on
x86, broken on WMM (critical-section accesses may float past the
unlock).  The expert variant is CK's aarch64 port, which brackets the
release with explicit full fences.
"""

_BODY = """
void cs_update(int r) {{
    int c = counter;
    for (int i = 0; i < {payload}; i++) {{
        shared_data[i] = shared_data[i] + r;
    }}
    counter = c + 1;
}}

void worker(int rounds) {{
    for (int r = 0; r < rounds; r++) {{
        lock();
        cs_update(r);
        unlock();
    }}
}}

void thread_fn(int rounds) {{
    worker(rounds);
}}

int main() {{
    int t = thread_create(thread_fn, {rounds});
    worker({rounds});
    thread_join(t);
    assert(counter == 2 * {rounds});
    return counter;
}}
"""


def _tso_lock():
    return """
int lock_word = 0;
int counter = 0;
int shared_data[64];

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}
"""


def _expert_lock():
    # CK's aarch64 port: explicit barriers around acquire and release.
    return """
int lock_word = 0;
int counter = 0;
int shared_data[64];

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
    atomic_thread_fence(memory_order_seq_cst);
}

void unlock() {
    atomic_thread_fence(memory_order_seq_cst);
    lock_word = 0;
}
"""


def mc_source():
    return _tso_lock() + _BODY.format(rounds=1, payload=1)


def perf_source(rounds=150, payload=24):
    return _tso_lock() + _BODY.format(rounds=rounds, payload=payload)


def expert_source(rounds=150, payload=24):
    return _expert_lock() + _BODY.format(rounds=rounds, payload=payload)
