"""Concurrency Kit's CAS spinlock (ck_spinlock_cas), ported to Mini-C.

The TSO variant is Figure 4's test-and-set lock: a relaxed
compare-exchange acquire loop and a *plain store* release — correct on
x86, broken on WMM (critical-section accesses may float past the
unlock).  The expert variant is CK's aarch64 port, which brackets the
release with explicit full fences.
"""

_BODY = """
void cs_update(int r) {{
    int c = counter;
    for (int i = 0; i < {payload}; i++) {{
        shared_data[i] = shared_data[i] + r;
    }}
    counter = c + 1;
}}

void worker(int rounds) {{
    for (int r = 0; r < rounds; r++) {{
        lock();
        cs_update(r);
        unlock();
    }}
}}

void thread_fn(int rounds) {{
    worker(rounds);
}}

int main() {{
    int t = thread_create(thread_fn, {rounds});
    worker({rounds});
    thread_join(t);
    assert(counter == 2 * {rounds});
    return counter;
}}
"""


def _tso_lock():
    return """
int lock_word = 0;
int counter = 0;
int shared_data[64];

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}
"""


def _tso_lock_legacy():
    # Legacy-TSO variant: the critical-section data itself is declared
    # volatile (CK habitually accesses shared fields through volatile
    # casts).  AtoMig's §3.2 annotation pass promotes every volatile
    # access to an SC atomic even though the lock already protects them
    # — the over-atomization the lint pruning stage removes.
    return """
int lock_word = 0;
volatile int counter = 0;
volatile int shared_data[64];

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}
"""


def _expert_lock():
    # CK's aarch64 port: explicit barriers around acquire and release.
    return """
int lock_word = 0;
int counter = 0;
int shared_data[64];

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
    atomic_thread_fence(memory_order_seq_cst);
}

void unlock() {
    atomic_thread_fence(memory_order_seq_cst);
    lock_word = 0;
}
"""


def mc_source():
    return _tso_lock() + _BODY.format(rounds=1, payload=1)


def perf_source(rounds=150, payload=24):
    return _tso_lock() + _BODY.format(rounds=rounds, payload=payload)


def expert_source(rounds=150, payload=24):
    return _expert_lock() + _BODY.format(rounds=rounds, payload=payload)


def private_mc_source():
    """TAS lock + volatile shared accumulator + per-thread local copy.

    Each worker batches its contribution in a stack-allocated
    ``struct acc`` and merges it into the volatile shared accumulator
    under the lock — the classic reduce pattern.  The shared instance's
    volatile fields seed ``("field", acc, *)`` keys, so type-based
    sticky matching atomizes the private batch accesses as well; the
    points-to mode proves ``mine`` thread-local and leaves them plain.
    """
    return """
struct acc { int lo; int hi; };

int lock_word = 0;
volatile struct acc shared_acc;

void lock() {
    while (atomic_cmpxchg_explicit(&lock_word, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void unlock() {
    lock_word = 0;
}

void worker(int base) {
    struct acc mine;
    mine.lo = base;
    mine.hi = base + 1;
    mine.lo = mine.lo + 1;
    lock();
    shared_acc.lo = shared_acc.lo + mine.lo;
    shared_acc.hi = shared_acc.hi + mine.hi;
    unlock();
}

void thread_fn(int base) {
    worker(base);
}

int main() {
    int t = thread_create(thread_fn, 10);
    worker(20);
    thread_join(t);
    assert(shared_acc.lo == 32);
    assert(shared_acc.hi == 32);
    return 0;
}
"""


def legacy_mc_source():
    return _tso_lock_legacy() + _BODY.format(rounds=1, payload=1)


def legacy_perf_source(rounds=150, payload=24):
    return _tso_lock_legacy() + _BODY.format(rounds=rounds, payload=payload)
