"""Runtime workload models of the five large applications (§4.2-4.3).

The paper measures MariaDB/PostgreSQL/LevelDB/Memcached/SQLite with
their own benchmark drivers (mtr, pgbench, db_bench, memtier).  We model
each application as a request-processing loop whose *shared-memory
intensity* — the fraction of work touching shared globals versus private
computation — matches the relative Naive-porting overheads of Table 5:

==============  ==================  ========================================
application     paper Naive / AtoMig  workload model
==============  ==================  ========================================
MariaDB         1.27 / 1.01          row cache + latch, moderate shared use
PostgreSQL      1.35 / 1.04          buffer pool + WAL insert spinlock
LevelDB         1.66 / 1.01          memtable array + version publication
Memcached       1.01 / 1.00          hash of private request data dominates
SQLite          2.49 / 1.03          B-tree page array walked in shared mem
==============  ==================  ========================================

Each workload has a client thread and a worker thread synchronizing via
spinlock/flag patterns that AtoMig must detect, plus the bulk of the
request work, whose private/shared split drives the Naive overhead.
"""

_LOCK = """
int latch = 0;

void latch_lock() {
    while (atomic_cmpxchg_explicit(&latch, 0, 1, memory_order_relaxed) != 0) {
        cpu_relax();
    }
}

void latch_unlock() {
    latch = 0;
}
"""


def mariadb_like_source(requests=150):
    """Row lookups through a shared row cache guarded by a latch, with
    moderate per-request private parsing work."""
    return _LOCK + f"""
int row_cache[256];
int rows_hit = 0;

int parse_query(int q) {{
    int h = q;
    for (int i = 0; i < 40; i++) {{
        int local = h * 31 + i;
        h = local % 65536;
    }}
    return h;
}}

int lookup(int key) {{
    latch_lock();
    int slot = key % 256;
    int v = row_cache[slot];
    if (v == 0) {{
        row_cache[slot] = key + 1;
        v = key + 1;
    }}
    rows_hit = rows_hit + 1;
    latch_unlock();
    return v;
}}

void client() {{
    for (int q = 0; q < {requests}; q++) {{
        int h = parse_query(q * 13 + 7);
        int v = lookup(h);
        assert(v != 0);
    }}
}}

int main() {{
    int t = thread_create(client);
    client();
    thread_join(t);
    assert(rows_hit == 2 * {requests});
    return rows_hit;
}}
"""


def postgresql_like_source(requests=150):
    """Buffer-pool pins under a spinlock plus WAL record assembly."""
    return _LOCK + f"""
int buffer_pool[128];
int buffer_pins[128];
int wal_pos = 0;
int wal[4096];

int plan_query(int q) {{
    int cost = q;
    for (int i = 0; i < 25; i++) {{
        int c = cost * 7 + i * 3;
        cost = c % 10007;
    }}
    return cost;
}}

void wal_insert(int rec) {{
    latch_lock();
    int pos = wal_pos;
    wal[pos % 4096] = rec;
    wal_pos = pos + 1;
    latch_unlock();
}}

void touch_buffer(int page) {{
    latch_lock();
    int slot = page % 128;
    buffer_pins[slot] = buffer_pins[slot] + 1;
    buffer_pool[slot] = page;
    latch_unlock();
}}

void client() {{
    for (int q = 0; q < {requests}; q++) {{
        int cost = plan_query(q);
        touch_buffer(cost);
        wal_insert(cost * 2 + 1);
    }}
}}

int main() {{
    int t = thread_create(client);
    client();
    thread_join(t);
    assert(wal_pos == 2 * {requests});
    return wal_pos;
}}
"""


def leveldb_like_source(requests=500):
    """Memtable inserts published through a version counter; readers
    walk the shared memtable array (heavier shared traffic)."""
    return f"""
volatile int version = 0;
int memtable_key[512];
int memtable_val[512];
int count = 0;
int done = 0;

void writer() {{
    for (int q = 0; q < {requests}; q++) {{
        int n = count;
        memtable_key[n % 512] = q + 1;
        memtable_val[n % 512] = q * 2 + 1;
        count = n + 1;
        if (q % 8 == 0) {{
            version = version + 1;
        }}
    }}
    done = 1;
}}

int read_scan() {{
    int v = version;
    int sum = 0;
    int n = count;
    for (int i = 0; i < n % 512; i++) {{
        sum = sum + memtable_val[i];
    }}
    if (v != version) {{
        return 0 - 1;
    }}
    return sum;
}}

int main() {{
    int t = thread_create(writer);
    int good = 0;
    while (done == 0) {{
        if (read_scan() >= 0) {{
            good = good + 1;
        }}
    }}
    thread_join(t);
    assert(count == {requests});
    if (good < 0) {{
        return 0 - 1;  // unreachable: scans validate or retry
    }}
    return count;
}}
"""


def memcached_like_source(requests=200):
    """Hashing of private request buffers dominates; shared state is a
    tiny stats block and an item table touched once per request."""
    return _LOCK + f"""
int item_table[64];
volatile int stats_gets = 0;

int hash_request(int q) {{
    int buffer[16];
    for (int i = 0; i < 16; i++) {{
        buffer[i] = q * 31 + i * 7;
    }}
    int h = 5381;
    for (int r = 0; r < 4; r++) {{
        for (int i = 0; i < 16; i++) {{
            h = (h * 33 + buffer[i]) % 1000003;
        }}
    }}
    return h;
}}

void handle(int q) {{
    int h = hash_request(q);
    latch_lock();
    item_table[h % 64] = h;
    stats_gets = stats_gets + 1;
    latch_unlock();
}}

void client() {{
    for (int q = 0; q < {requests}; q++) {{
        handle(q);
        if (stats_gets > 4 * {requests}) {{
            return;  // overload guard: reads the volatile stats
        }}
    }}
}}

int main() {{
    int t = thread_create(client);
    client();
    thread_join(t);
    assert(stats_gets == 2 * {requests});
    return stats_gets;
}}
"""


def sqlite_like_source(requests=60):
    """B-tree style page walks directly over shared page memory: the
    most shared-memory-intensive of the five (Naive hurts most here)."""
    return _LOCK + f"""
int pages[1024];
int page_count = 0;

void btree_insert(int key) {{
    latch_lock();
    int n = page_count;
    int pos = 0;
    while (pos < n && pages[pos] < key) {{
        pos = pos + 1;
    }}
    int i = n;
    while (i > pos) {{
        pages[i] = pages[i - 1];
        i = i - 1;
    }}
    pages[pos] = key;
    page_count = n + 1;
    latch_unlock();
}}

int btree_sum() {{
    latch_lock();
    int sum = 0;
    for (int i = 0; i < page_count; i++) {{
        sum = sum + pages[i];
    }}
    latch_unlock();
    return sum;
}}

void client(int base, int count) {{
    for (int q = 0; q < count; q++) {{
        btree_insert(base + q * 2);
        if (q % 8 == 0) {{
            btree_sum();
        }}
    }}
}}

void helper(int base) {{
    client(base, {requests} / 8);
}}

int main() {{
    // SQLite serializes access: the bulk of the work is one writer;
    // the background thread only issues a few requests, so the latch
    // is mostly uncontended (as in the paper's benchmark runs).
    int t = thread_create(helper, 1);
    client(0, {requests});
    thread_join(t);
    assert(page_count == {requests} + {requests} / 8);
    return page_count;
}}
"""


APP_BENCHMARKS = {
    "mariadb": mariadb_like_source,
    "postgresql": postgresql_like_source,
    "leveldb": leveldb_like_source,
    "memcached": memcached_like_source,
    "sqlite": sqlite_like_source,
}
