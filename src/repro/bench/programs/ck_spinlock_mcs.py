"""Concurrency Kit's MCS queue lock (ck_spinlock_mcs), ported to Mini-C.

Each thread enqueues a private node by atomically swapping the tail
pointer, then spins on its own node's flag — the "message passing using
a spinloop" pattern the paper cites for MCS (§3.3).  The handoff
(``next->locked = 0``) is a plain store on TSO; on WMM both the handoff
and the critical-section stores can leak, so barriers are required.
"""

_MCS_TSO = """
struct mcs_node { int locked; struct mcs_node *next; };

struct mcs_node *mcs_tail;
struct mcs_node nodes[2];
int counter = 0;
int shared_data[64];

void mcs_lock(int me) {
    struct mcs_node *node = &nodes[me];
    node->locked = 1;
    node->next = NULL;
    struct mcs_node *prev = atomic_exchange_explicit(&mcs_tail, node, memory_order_relaxed);
    if (prev != NULL) {
        prev->next = node;
        while (node->locked != 0) { cpu_relax(); }
    }
}

void mcs_unlock(int me) {
    struct mcs_node *node = &nodes[me];
    if (node->next == NULL) {
        if (atomic_cmpxchg_explicit(&mcs_tail, node, NULL, memory_order_relaxed) == node) {
            return;
        }
        while (node->next == NULL) { cpu_relax(); }
    }
    struct mcs_node *succ = node->next;
    succ->locked = 0;
}
"""

_MCS_EXPERT = """
struct mcs_node { int locked; struct mcs_node *next; };

struct mcs_node *mcs_tail;
struct mcs_node nodes[2];
int counter = 0;
int shared_data[64];

void mcs_lock(int me) {
    struct mcs_node *node = &nodes[me];
    node->locked = 1;
    node->next = NULL;
    atomic_thread_fence(memory_order_seq_cst);
    struct mcs_node *prev = atomic_exchange_explicit(&mcs_tail, node, memory_order_relaxed);
    if (prev != NULL) {
        prev->next = node;
        atomic_thread_fence(memory_order_seq_cst);
        while (node->locked != 0) { cpu_relax(); }
    }
    atomic_thread_fence(memory_order_seq_cst);
}

void mcs_unlock(int me) {
    struct mcs_node *node = &nodes[me];
    atomic_thread_fence(memory_order_seq_cst);
    if (node->next == NULL) {
        if (atomic_cmpxchg_explicit(&mcs_tail, node, NULL, memory_order_relaxed) == node) {
            return;
        }
        while (node->next == NULL) { cpu_relax(); }
    }
    struct mcs_node *succ = node->next;
    succ->locked = 0;
    atomic_thread_fence(memory_order_seq_cst);
}
"""

_CLIENT = """
void worker(int me) {{
    for (int r = 0; r < {rounds}; r++) {{
        mcs_lock(me);
        int c = counter;
        for (int i = 0; i < {payload}; i++) {{
            shared_data[i] = shared_data[i] + me;
        }}
        counter = c + 1;
        mcs_unlock(me);
    }}
}}

void thread_fn(int me) {{
    worker(me);
}}

int main() {{
    int t = thread_create(thread_fn, 1);
    worker(0);
    thread_join(t);
    assert(counter == 2 * {rounds});
    return counter;
}}
"""


def mc_source():
    return _MCS_TSO + _CLIENT.format(rounds=1, payload=1)


def gate_source():
    """Per-CPU MCS client for the exploration-perf gate.

    Two threads each take their *own* MCS lock guarding their own
    counter — the per-CPU data idiom CK itself relies on.  The lock
    handoff machinery is identical to :func:`mc_source`, but the two
    threads' commits never touch a common address, so the reduced
    explorer should keep the state count near one thread-local chain
    per thread while the unreduced oracle interleaves both enqueue
    sequences (the ≥5x gate in ``benchmarks/test_perf_explorer.py``).
    """
    return """
struct mcs_node { int locked; struct mcs_node *next; };

struct mcs_node *mcs_tail[2];
struct mcs_node nodes[2];
int counter[2];

void mcs_lock(int me) {
    struct mcs_node *node = &nodes[me];
    node->locked = 1;
    node->next = NULL;
    struct mcs_node *prev = atomic_exchange_explicit(&mcs_tail[me], node, memory_order_relaxed);
    if (prev != NULL) {
        prev->next = node;
        while (node->locked != 0) { cpu_relax(); }
    }
}

void mcs_unlock(int me) {
    struct mcs_node *node = &nodes[me];
    if (node->next == NULL) {
        if (atomic_cmpxchg_explicit(&mcs_tail[me], node, NULL, memory_order_relaxed) == node) {
            return;
        }
        while (node->next == NULL) { cpu_relax(); }
    }
    struct mcs_node *succ = node->next;
    succ->locked = 0;
}

void worker(int me) {
    for (int r = 0; r < 2; r++) {
        mcs_lock(me);
        counter[me] = counter[me] + 1;
        mcs_unlock(me);
    }
}

void thread_fn(int me) {
    worker(me);
}

int main() {
    int t = thread_create(thread_fn, 1);
    worker(0);
    thread_join(t);
    assert(counter[0] == 2);
    assert(counter[1] == 2);
    return 0;
}
"""


def perf_source(rounds=150, payload=24):
    return _MCS_TSO + _CLIENT.format(rounds=rounds, payload=payload)


def expert_source(rounds=150, payload=24):
    return _MCS_EXPERT + _CLIENT.format(rounds=rounds, payload=payload)
