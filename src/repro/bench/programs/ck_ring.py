"""Concurrency Kit's SPSC ring buffer (ck_ring), ported to Mini-C.

Producer writes the entry then publishes by bumping ``tail``; consumer
reads ``tail``, consumes the entry, then bumps ``head``.  TSO's store
order makes the plain version safe on x86; on WMM the entry store can
pass the tail publication (and the consumer's entry load can float),
corrupting dequeued values.  The expert aarch64 port brackets the
publication points with explicit fences.
"""

_RING_TSO = """
int ring[{slots}];
volatile int head = 0;
volatile int tail = 0;

void enqueue(int value) {{
    while (tail - head == {slots}) {{ }}
    ring[tail % {slots}] = value;
    tail = tail + 1;
}}

int dequeue() {{
    while (tail - head == 0) {{ }}
    int value = ring[head % {slots}];
    head = head + 1;
    return value;
}}
"""

_RING_EXPERT = """
int ring[{slots}];
volatile int head = 0;
volatile int tail = 0;

void enqueue(int value) {{
    while (tail - head == {slots}) {{ }}
    ring[tail % {slots}] = value;
    atomic_thread_fence(memory_order_seq_cst);
    tail = tail + 1;
}}

int dequeue() {{
    while (tail - head == 0) {{ }}
    atomic_thread_fence(memory_order_seq_cst);
    int value = ring[head % {slots}];
    atomic_thread_fence(memory_order_seq_cst);
    head = head + 1;
    return value;
}}
"""

_MC_CLIENT = """
void producer() {{
    enqueue(11);
    enqueue(22);
}}

int main() {{
    int t = thread_create(producer);
    int a = dequeue();
    int b = dequeue();
    assert(a == 11);
    assert(b == 22);
    thread_join(t);
    return 0;
}}
"""

_PERF_CLIENT = """
void producer() {{
    for (int i = 1; i <= {items}; i++) {{
        enqueue(i);
    }}
}}

int main() {{
    int t = thread_create(producer);
    int sum = 0;
    for (int i = 1; i <= {items}; i++) {{
        sum = sum + dequeue();
    }}
    thread_join(t);
    assert(sum == {items} * ({items} + 1) / 2);
    return sum;
}}
"""


def mc_source(slots=2):
    return _RING_TSO.format(slots=slots) + _MC_CLIENT.format()


def perf_source(items=600, slots=8):
    return _RING_TSO.format(slots=slots) + _PERF_CLIENT.format(items=items)


def expert_source(items=600, slots=8):
    return _RING_EXPERT.format(slots=slots) + _PERF_CLIENT.format(items=items)
